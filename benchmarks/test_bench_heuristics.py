"""Extension bench: join-heuristic quality and its effect on APCBI.

APCBI's advancement 2 only requires *a* heuristic; the paper picked GOO.
This bench measures (a) how far each heuristic's plan is from optimal
(the upper-bound quality) and (b) how the choice affects TDMcC_APCBI's
runtime — an ablation of a design choice DESIGN.md calls out.
"""

import pytest

from repro.baselines.dpccp import DPccp
from repro.core.optimizer import Optimizer, run_dpccp
from repro.cost.haas import HaasCostModel
from repro.cost.statistics import StatisticsProvider
from repro.heuristics import available_heuristics, get_heuristic
from repro.plans.builder import PlanBuilder
from repro.workload.generator import QueryGenerator


@pytest.fixture(scope="module")
def heuristic_workload():
    generator = QueryGenerator(seed=777)
    queries = []
    for index in range(8):
        family = ("cyclic", "acyclic")[index % 2]
        scheme = ("fk", "random")[index % 2]
        queries.append(generator.generate(family, 10, scheme))
    return queries


def test_bench_heuristic_quality(benchmark, heuristic_workload, capsys):
    """Average plan-cost ratio (heuristic / optimal) per heuristic."""

    def measure():
        table = {}
        for name in available_heuristics():
            ratios = []
            for query in heuristic_workload:
                optimal = DPccp(query, HaasCostModel()).run()
                builder = PlanBuilder(
                    StatisticsProvider(query), HaasCostModel()
                )
                result = get_heuristic(name).build(query, builder)
                ratios.append(result.cost / optimal.cost)
            table[name] = ratios
        return table

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [f"{'heuristic':<18}{'avg cost ratio':>16}{'worst ratio':>14}"]
    for name, ratios in table.items():
        average = sum(ratios) / len(ratios)
        lines.append(f"{name:<18}{average:>15.3f}x{max(ratios):>13.3f}x")
        # Sound upper bounds: never below optimal.
        assert min(ratios) >= 1.0 - 1e-9
    with capsys.disabled():
        print("\n" + "\n".join(lines))


@pytest.mark.parametrize("heuristic", ["goo", "quickpick", "min_selectivity", "ikkbz"])
def test_bench_apcbi_with_heuristic(
    benchmark, heuristic_workload, heuristic, capsys
):
    """TDMcC_APCBI runtime under each upper-bound heuristic."""
    optimizer = Optimizer(pruning="apcbi", heuristic=heuristic)
    query = heuristic_workload[0]
    baseline = run_dpccp(query)

    def run():
        return optimizer.optimize(query)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.cost == pytest.approx(baseline.cost, rel=1e-6)
