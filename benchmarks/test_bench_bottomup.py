"""Extension bench: the bottom-up DP family (DPccp vs DPsize vs DPsub).

Not a paper table — DESIGN.md lists DPsize/DPsub as extension baselines.
Moerkotte & Neumann's analysis predicts DPccp <= DPsize and DPccp <= DPsub
in enumerated work; this bench confirms the considered-pair counts and
records the runtimes.
"""

import pytest

from repro.baselines.dpccp import DPccp
from repro.baselines.dpsize import DPsize
from repro.baselines.dpsub import DPsub
from repro.cost.haas import HaasCostModel

ALGORITHMS = {"dpccp": DPccp, "dpsize": DPsize, "dpsub": DPsub}


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
@pytest.mark.parametrize("family", ["chain", "clique", "cyclic"])
def test_bench_bottom_up(benchmark, representative_queries, name, family):
    query = representative_queries[family]
    algorithm_cls = ALGORITHMS[name]
    plan = benchmark.pedantic(
        lambda: algorithm_cls(query, HaasCostModel()).run(),
        rounds=3,
        iterations=1,
    )
    assert plan.vertex_set == query.graph.all_vertices


def test_bench_bottom_up_work_comparison(benchmark, representative_queries, capsys):
    """DPccp's enumeration does the least work of the DP family."""

    def measure():
        rows = []
        for family in ("chain", "star", "cycle", "clique", "acyclic", "cyclic"):
            query = representative_queries[family]
            counts = {}
            reference_cost = None
            for name, algorithm_cls in ALGORITHMS.items():
                algorithm = algorithm_cls(query, HaasCostModel())
                plan = algorithm.run()
                counts[name] = (
                    algorithm.stats.ccps_enumerated
                    or algorithm.stats.ccps_considered
                )
                if reference_cost is None:
                    reference_cost = plan.cost
                else:
                    assert plan.cost == pytest.approx(reference_cost, rel=1e-9)
            rows.append((family, counts))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"{'family':<10}{'DPccp pairs':>14}{'DPsize pairs':>14}{'DPsub pairs':>14}"
    ]
    for family, counts in rows:
        assert counts["dpccp"] <= counts["dpsize"]
        assert counts["dpccp"] <= counts["dpsub"]
        lines.append(
            f"{family:<10}{counts['dpccp']:>14}{counts['dpsize']:>14}"
            f"{counts['dpsub']:>14}"
        )
    with capsys.disabled():
        print("\n" + "\n".join(lines))
