"""Shared fixtures for the benchmark suite.

The expensive full-matrix measurement (Tables II and III) runs once per
session and is shared by both table benchmarks.  Every benchmark prints the
paper-style rendering of its experiment and persists text + JSON under
``results/`` so a benchmark run regenerates the complete evaluation.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.experiments import EvaluationRun
from repro.workload.generator import QueryGenerator
from repro.workload.suite import FamilySpec, WorkloadSuite

#: Where experiment text/JSON renderings are written.
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Benchmark-sized evaluation suite: same six families and mixed join
#: schemes as the paper's workload, scaled for pure Python (DESIGN.md §3).
#: Pruning gains grow with query size (§V-D.3), so the sweeps lean toward
#: the largest sizes pure Python can evaluate in a few minutes.
BENCH_FAMILY_SPECS = (
    FamilySpec("chain", sizes=(8, 10, 12, 14, 16), queries_per_size=2),
    FamilySpec("star", sizes=(6, 7, 8, 9, 10), queries_per_size=2),
    FamilySpec("cycle", sizes=(8, 10, 12, 14), queries_per_size=2),
    FamilySpec("clique", sizes=(6, 7, 8, 9, 10), queries_per_size=2),
    FamilySpec("acyclic", sizes=(8, 10, 12, 14), queries_per_size=2),
    FamilySpec("cyclic", sizes=(8, 10, 11, 12), queries_per_size=2),
)


@pytest.fixture(scope="session")
def evaluation_run() -> EvaluationRun:
    """The shared Table II / Table III measurement."""
    suite = WorkloadSuite(BENCH_FAMILY_SPECS, seed=20120401)
    run = EvaluationRun(suite)
    run.families()  # materialize once, up front
    return run


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def representative_queries():
    """Median-size queries per family for the micro-benchmarks."""
    generator = QueryGenerator(seed=424242)
    return {
        "chain": generator.generate("chain", 12),
        "star": generator.generate("star", 8),
        "cycle": generator.generate("cycle", 10),
        "clique": generator.generate("clique", 8),
        "acyclic": generator.generate("acyclic", 10),
        "cyclic": generator.generate("cyclic", 9),
    }
