"""Extension bench: pure enumeration overhead across partitioners.

Reproduces the §III-C motivation for conservative partitioning: the
generate-and-test approach (AGaT, [5]) pays an exponential candidate
space on star queries while the MinCut strategies stay polynomial.
"""

from repro.bench.experiments import enumerator_overhead
from repro.core.optimizer import Optimizer


def test_bench_enumerator_overhead(benchmark, results_dir, capsys):
    result = benchmark.pedantic(
        lambda: enumerator_overhead(
            star_sizes=tuple(range(6, 14)),
            chain_sizes=tuple(range(6, 14)),
            queries_per_size=2,
        ),
        rounds=1,
        iterations=1,
    )
    result.save(results_dir)
    with capsys.disabled():
        print("\n" + result.text)

    star = result.data["star"]
    chain = result.data["chain"]
    largest_star = max(star["TDMcA"])
    # §III-C: AGaT's exponential candidate space separates it from the
    # conservative strategy by a wide margin on large stars...
    assert star["TDMcA"][largest_star] > 2.5 * star["TDMcC"][largest_star]
    # ...while on chains every enumerator stays within a small factor.
    largest_chain = max(chain["TDMcA"])
    assert chain["TDMcA"][largest_chain] < 3 * chain["TDMcC"][largest_chain]


def test_bench_agat_enumerator(benchmark, representative_queries):
    """AGaT is perfectly usable on non-star shapes."""
    query = representative_queries["chain"]
    optimizer = Optimizer(enumerator="mincut_agat", pruning="apcbi")
    result = benchmark.pedantic(
        lambda: optimizer.optimize(query), rounds=3, iterations=1
    )
    assert result.plan.vertex_set == query.graph.all_vertices
