"""Table I sanity benchmarks: every named algorithm runs and is optimal.

Table I of the paper is the name matrix; the benchmark equivalent is a
micro-benchmark of each (enumerator, pruning) combination on one
representative query, verifying optimality against DPccp on the side.
"""

import pytest

from repro.core.optimizer import Optimizer, run_dpccp

ENUMERATORS = ("mincut_lazy", "mincut_branch", "mincut_conservative")
PRUNINGS = ("none", "pcb", "apcb", "apcbi", "apcbi_opt")


@pytest.mark.parametrize("enumerator", ENUMERATORS)
@pytest.mark.parametrize("pruning", PRUNINGS)
def test_bench_algorithm(benchmark, representative_queries, enumerator, pruning):
    query = representative_queries["acyclic"]
    baseline = run_dpccp(query)
    optimizer = Optimizer(enumerator=enumerator, pruning=pruning)
    result = benchmark.pedantic(
        lambda: optimizer.optimize(query), rounds=3, iterations=1
    )
    assert result.cost == pytest.approx(baseline.cost, rel=1e-6)


def test_bench_dpccp_baseline(benchmark, representative_queries):
    query = representative_queries["acyclic"]
    result = benchmark.pedantic(lambda: run_dpccp(query), rounds=3, iterations=1)
    assert result.plan.vertex_set == query.graph.all_vertices
