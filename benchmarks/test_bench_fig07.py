"""Fig. 7 benchmark: random acyclic queries, runtime vs relation count."""

import pytest

from repro.bench.experiments import figure7
from repro.core.optimizer import Optimizer


def test_bench_figure7(benchmark, results_dir, capsys):
    result = benchmark.pedantic(
        lambda: figure7(sizes=tuple(range(6, 13)), queries_per_size=2),
        rounds=1, iterations=1,
    )
    result.save(results_dir)
    with capsys.disabled():
        print("\n" + result.text)
    series = result.data["normed_time_by_size"]
    # Relative order of the algorithms is size-independent (§V-D.1): the
    # best pruned algorithm beats unpruned MinCutLazy at every size.
    for size, value in series["TDMcC_APCBI"].items():
        assert value < series["TDMcL"][size]


def test_bench_figure7_headline(benchmark, representative_queries):
    query = representative_queries["acyclic"]
    optimizer = Optimizer(pruning="apcbi")
    benchmark.pedantic(lambda: optimizer.optimize(query), rounds=3, iterations=1)
