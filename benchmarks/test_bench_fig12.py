"""Fig. 12 benchmark: clique queries, runtime vs relation count.

Cliques have the maximal number of edges and ccps, so the pruning
potential is highest here (§V-D.2).
"""

from repro.bench.experiments import figure12
from repro.core.optimizer import Optimizer


def test_bench_figure12(benchmark, results_dir, capsys):
    result = benchmark.pedantic(
        lambda: figure12(sizes=tuple(range(5, 10)), queries_per_size=2),
        rounds=1, iterations=1,
    )
    result.save(results_dir)
    with capsys.disabled():
        print("\n" + result.text)
    series = result.data["normed_time_by_size"]
    largest = max(series["TDMcC_APCBI"])
    # At the largest size the pruned algorithm clearly beats unpruned lazy.
    assert series["TDMcC_APCBI"][largest] < series["TDMcL"][largest]


def test_bench_figure12_headline(benchmark, representative_queries):
    query = representative_queries["clique"]
    optimizer = Optimizer(pruning="apcbi")
    benchmark.pedantic(lambda: optimizer.optimize(query), rounds=3, iterations=1)
