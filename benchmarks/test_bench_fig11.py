"""Fig. 11 benchmark: cycle queries, runtime vs relation count."""

from repro.bench.experiments import figure11
from repro.core.optimizer import Optimizer


def test_bench_figure11(benchmark, results_dir, capsys):
    result = benchmark.pedantic(
        lambda: figure11(sizes=tuple(range(6, 14)), queries_per_size=2),
        rounds=1, iterations=1,
    )
    result.save(results_dir)
    with capsys.disabled():
        print("\n" + result.text)
    series = result.data["normed_time_by_size"]
    largest = max(series["TDMcC_APCBI"])
    assert series["TDMcC_APCBI"][largest] < series["TDMcL"][largest]


def test_bench_figure11_headline(benchmark, representative_queries):
    query = representative_queries["cycle"]
    optimizer = Optimizer(pruning="apcbi")
    benchmark.pedantic(lambda: optimizer.optimize(query), rounds=3, iterations=1)
