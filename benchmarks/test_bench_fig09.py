"""Fig. 9 benchmark: chain queries, runtime vs relation count."""

from repro.bench.experiments import figure9
from repro.core.optimizer import Optimizer


def test_bench_figure9(benchmark, results_dir, capsys):
    result = benchmark.pedantic(
        lambda: figure9(sizes=tuple(range(6, 16)), queries_per_size=2),
        rounds=1, iterations=1,
    )
    result.save(results_dir)
    with capsys.disabled():
        print("\n" + result.text)
    series = result.data["normed_time_by_size"]
    # Chains prune well: APCBI beats the unpruned enumerators throughout
    # the upper size range.
    for size in list(series["TDMcC_APCBI"])[-3:]:
        assert series["TDMcC_APCBI"][size] < 1.0


def test_bench_figure9_headline(benchmark, representative_queries):
    query = representative_queries["chain"]
    optimizer = Optimizer(pruning="apcbi")
    benchmark.pedantic(lambda: optimizer.optimize(query), rounds=3, iterations=1)
