"""Fig. 8 benchmark: density of normed runtimes over acyclic queries."""

from repro.bench.experiments import figure8
from repro.bench.harness import AlgorithmSpec, run_query_matrix
from repro.workload.generator import QueryGenerator


def test_bench_figure8(benchmark, results_dir, capsys):
    result = benchmark.pedantic(
        lambda: figure8(sizes=tuple(range(6, 13)), queries_per_size=3),
        rounds=1, iterations=1,
    )
    result.save(results_dir)
    with capsys.disabled():
        print("\n" + result.text)
    # The APCBI distributions sit "farther to the right" of the density
    # plot than the APCB and unpruned ones; between the two APCBI variants
    # the medians are noise-level close, so assert dominance, not rank.
    medians = {
        label: payload["quartiles"][1] for label, payload in result.data.items()
    }
    assert medians["TDMcC_APCBI"] < medians["TDMcL"]
    assert medians["TDMcC_APCBI"] <= 1.5 * min(medians.values())


def test_bench_density_measurement(benchmark):
    """Micro-benchmark of the per-query measurement underlying Fig. 8."""
    query = QueryGenerator(seed=88).generate("acyclic", 9, "random")
    specs = (AlgorithmSpec("mincut_conservative", "apcbi"),)
    benchmark.pedantic(
        lambda: run_query_matrix(query, specs), rounds=3, iterations=1
    )
