"""Fig. 13 benchmark: cyclic queries at a fixed relation count.

The paper uses 16 relations; we default to 12 (DESIGN.md §3 scale note) —
pass a larger ``n_relations`` through the driver to match exactly.
"""

from repro.bench.experiments import figure13
from repro.core.optimizer import Optimizer


def test_bench_figure13(benchmark, results_dir, capsys):
    result = benchmark.pedantic(
        lambda: figure13(n_relations=12, n_queries=8), rounds=1, iterations=1
    )
    result.save(results_dir)
    with capsys.disabled():
        print("\n" + result.text)
    rows = result.data["avg_normed_time"]
    # TDMcC_APCBI dominates the chart algorithms (§V-D.2, Fig. 13) and
    # improves on TDMcL_APCB by a large factor (paper: more than 6).
    assert rows["TDMcC_APCBI"] == min(rows.values())
    assert rows["TDMcL_APCB"] / rows["TDMcC_APCBI"] > 2.0


def test_bench_figure13_headline(benchmark, representative_queries):
    query = representative_queries["cyclic"]
    optimizer = Optimizer(pruning="apcbi")
    benchmark.pedantic(lambda: optimizer.optimize(query), rounds=3, iterations=1)
