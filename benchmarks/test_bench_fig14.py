"""Fig. 14 benchmark: density of normed runtimes, fixed-size cyclic queries."""

from repro.bench.experiments import figure14
from repro.core.optimizer import Optimizer


def test_bench_figure14(benchmark, results_dir, capsys):
    result = benchmark.pedantic(
        lambda: figure14(n_relations=12, n_queries=10), rounds=1, iterations=1
    )
    result.save(results_dir)
    with capsys.disabled():
        print("\n" + result.text)
    medians = {
        label: payload["quartiles"][1] for label, payload in result.data.items()
    }
    # "Much steeper and farther to the right": the APCBI medians dominate
    # the unpruned and APCB ones (variant-vs-variant rank is noise-level).
    assert medians["TDMcC_APCBI"] < medians["TDMcL"]
    assert medians["TDMcC_APCBI"] < medians["TDMcL_APCB"]
    assert medians["TDMcC_APCBI"] <= 1.5 * min(medians.values())


def test_bench_figure14_headline(benchmark, representative_queries):
    query = representative_queries["cyclic"]
    optimizer = Optimizer(enumerator="mincut_branch", pruning="apcbi")
    benchmark.pedantic(lambda: optimizer.optimize(query), rounds=3, iterations=1)
