"""Table III benchmark: normed success/failure counters.

Shares the session-scoped full-matrix run with the Table II benchmark,
prints the counter table, and asserts the paper's qualitative claims:
APCBI builds fewer classes than APCB, fails less in the worst case, and
its counters vary less across enumerators (robustness).
"""

import pytest

from repro.bench.experiments import table3


def test_bench_table3_counters(benchmark, evaluation_run, results_dir, capsys):
    result = benchmark.pedantic(
        lambda: table3(evaluation_run), rounds=1, iterations=1
    )
    result.save(results_dir)
    with capsys.disabled():
        print("\n" + result.text)

    data = result.data
    for family in ("cycle", "clique", "acyclic", "cyclic"):
        rows = data[family]["algorithms"]
        # APCBI's memotable footprint is at most APCB's (§V-D.1).
        assert rows["TDMcC_APCBI"]["avg_s"] <= rows["TDMcC_APCB"]["avg_s"] + 1e-9
        # Worst-case failed-build blowup is an APCB phenomenon; APCBI's
        # max_f stays small (§V-D: "decrease the worst-case behavior").
        assert rows["TDMcC_APCBI"]["max_f"] <= max(
            rows["TDMcC_APCB"]["max_f"], 2.0
        )

    # Star queries: pruning fully disabled -> every class built, none fail.
    star = data["star"]["algorithms"]
    for label in ("TDMcL_APCBI", "TDMcB_APCBI", "TDMcC_APCBI"):
        assert star[label]["avg_s"] == pytest.approx(1.0)
        assert star[label]["avg_f"] == pytest.approx(0.0)


def test_bench_robustness_across_enumerators(benchmark, evaluation_run):
    """APCBI's pruning behaviour depends less on the enumeration order
    than APCB's: the spread of avg_s across the three enumerators must be
    no larger (the paper's robustness claim)."""
    data = benchmark.pedantic(evaluation_run.data, rounds=1, iterations=1)

    def spread(pruning_suffix, family):
        values = [
            data[family]["algorithms"][f"{label}{pruning_suffix}"]["avg_f"]
            for label in ("TDMcL", "TDMcB", "TDMcC")
        ]
        return max(values) - min(values)

    families = ("cyclic", "acyclic", "clique")
    apcb_spread = sum(spread("_APCB", f) for f in families)
    apcbi_spread = sum(spread("_APCBI", f) for f in families)
    assert apcbi_spread <= apcb_spread + 0.05
