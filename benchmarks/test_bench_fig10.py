"""Fig. 10 benchmark: star queries measure pure pruning overhead."""

from repro.bench.experiments import figure10
from repro.core.optimizer import Optimizer


def test_bench_figure10(benchmark, results_dir, capsys):
    result = benchmark.pedantic(
        lambda: figure10(sizes=tuple(range(5, 11)), queries_per_size=2),
        rounds=1, iterations=1,
    )
    result.save(results_dir)
    with capsys.disabled():
        print("\n" + result.text)
    series = result.data["normed_time_by_size"]
    # Pruning cannot help on these stars, so the bounding algorithms pay
    # overhead relative to their unpruned counterparts on average.
    apcb = sum(series["TDMcL_APCB"].values()) / len(series["TDMcL_APCB"])
    unpruned = sum(series["TDMcL"].values()) / len(series["TDMcL"])
    assert apcb > 0.8 * unpruned


def test_bench_figure10_headline(benchmark, representative_queries):
    query = representative_queries["star"]
    optimizer = Optimizer(pruning="apcbi")
    benchmark.pedantic(lambda: optimizer.optimize(query), rounds=3, iterations=1)
