"""Fig. 15 benchmark: the six-advancement ablation on top of APCB."""

from repro.bench.experiments import figure15
from repro.core.advancements import AdvancementConfig
from repro.core.optimizer import Optimizer


def test_bench_figure15(benchmark, results_dir, capsys):
    result = benchmark.pedantic(
        lambda: figure15(
            acyclic_sizes=(8, 10, 12),
            cyclic_sizes=(8, 9, 10),
            queries_per_size=2,
        ),
        rounds=1, iterations=1,
    )
    result.save(results_dir)
    with capsys.disabled():
        print("\n" + result.text)
    for family in ("acyclic", "cyclic"):
        bars = result.data[family]
        # The full combination beats plain APCB clearly.
        assert bars["APCBI"] < bars["APCB"]
        # APCBI_Opt is only a bounded improvement over APCBI (§V-D.3:
        # "not much potential for improving accumulated cost bounding").
        assert bars["APCBI_Opt"] > 0.5 * bars["APCBI"]


def test_bench_single_advancement(benchmark, representative_queries):
    """Micro-benchmark of APCB plus the rising budget (the paper's most
    significant single advancement for acyclic graphs)."""
    query = representative_queries["acyclic"]
    optimizer = Optimizer(
        pruning="apcbi", config=AdvancementConfig.only("rising_budget")
    )
    benchmark.pedantic(lambda: optimizer.optimize(query), rounds=3, iterations=1)
