"""Table II benchmark: normed runtimes of all 15 algorithms x 6 families.

Prints the full paper-style table (also saved to ``results/table2.txt``)
and micro-benchmarks the headline algorithm, TDMcC_APCBI, per family.
"""

import pytest

from repro.bench.experiments import table2
from repro.core.optimizer import Optimizer, run_dpccp


def test_bench_table2_full_matrix(benchmark, evaluation_run, results_dir, capsys):
    result = benchmark.pedantic(
        lambda: table2(evaluation_run), rounds=1, iterations=1
    )
    result.save(results_dir)
    with capsys.disabled():
        print("\n" + result.text)
    # Shape assertions from the paper's Table II.
    data = result.data
    for family in ("chain", "cycle", "clique", "acyclic", "cyclic"):
        rows = data[family]["algorithms"]
        # APCBI strictly improves on APCB on average for the conservative
        # enumerator on every prunable family.
        assert (
            rows["TDMcC_APCBI"]["normed_time"]["avg"]
            < rows["TDMcC_APCB"]["normed_time"]["avg"]
        )
    # Star queries are pruning-disabled: no bounding algorithm should gain.
    star = data["star"]["algorithms"]
    assert star["TDMcC_APCBI"]["avg_s"] == pytest.approx(1.0)


@pytest.mark.parametrize(
    "family", ["chain", "star", "cycle", "clique", "acyclic", "cyclic"]
)
def test_bench_tdmcc_apcbi(benchmark, representative_queries, family):
    """Per-family micro-benchmark of the paper's best combination."""
    query = representative_queries[family]
    optimizer = Optimizer(enumerator="mincut_conservative", pruning="apcbi")
    baseline = run_dpccp(query)
    result = benchmark.pedantic(
        lambda: optimizer.optimize(query), rounds=3, iterations=1
    )
    assert result.cost == pytest.approx(baseline.cost, rel=1e-6)
