"""Query generation: graph shapes + Steinbrunn statistics (paper §V-B).

Three selectivity schemes are implemented, exactly following the paper:

* **random joins** — each edge's selectivity is ``1 / max(dom(A1), dom(A2))``
  for two randomly drawn attribute domains, the original Steinbrunn et al.
  proposal;
* **foreign-key joins** — with probability 90% an edge behaves like a
  foreign-key/key join (the join result has the cardinality of the
  foreign-key side, i.e. selectivity ``1 / |key side|``), otherwise the
  random scheme is used.  The paper argues this avoids the unrealistic
  sub-1 intermediate cardinalities of the pure random scheme;
* **pruning-disabled stars** — every hub-leaf edge gets selectivity
  ``1 / |dimension|`` so that every join preserves the fact-table
  cardinality, which drives the chance of pruning to zero (§V-B last
  paragraph).  These queries measure pure pruning *overhead*.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.catalog.catalog import Catalog
from repro.catalog.relation import DEFAULT_TUPLE_WIDTH, RelationStats
from repro.graph import bitset, generators
from repro.graph.query_graph import QueryGraph
from repro.query import Query
from repro.workload import steinbrunn

__all__ = [
    "QueryGenerator",
    "generate_query",
    "random_acyclic_query",
    "random_cyclic_query",
    "chain_query",
    "star_query",
    "cycle_query",
    "clique_query",
]

#: Probability that an edge of a foreign-key workload is a true fk/key join.
FK_EDGE_PROBABILITY = 0.90


class QueryGenerator:
    """Reproducible generator of complete queries (graph + catalog).

    Parameters
    ----------
    seed:
        Seed for the internal RNG; every generated query also records the
        per-query seed so single queries can be regenerated.
    join_scheme:
        ``"fk"`` (default, the paper's preferred foreign-key scheme) or
        ``"random"`` (pure Steinbrunn selectivities).
    tuple_width:
        Bytes per tuple handed to the cost model.
    """

    def __init__(
        self,
        seed: Optional[int] = None,
        join_scheme: str = "fk",
        tuple_width: int = DEFAULT_TUPLE_WIDTH,
    ):
        if join_scheme not in ("fk", "random"):
            raise ValueError(f"unknown join scheme {join_scheme!r}")
        self._rng = random.Random(seed)
        self._seed = seed
        self._join_scheme = join_scheme
        self._tuple_width = tuple_width

    # ------------------------------------------------------------------

    def generate(
        self, family: str, n: int, join_scheme: Optional[str] = None
    ) -> Query:
        """Generate one query of the given family with ``n`` relations.

        ``join_scheme`` overrides the generator-wide scheme for this one
        query; workload suites use this to mix foreign-key and random join
        queries as the paper's workload does.
        """
        scheme = join_scheme if join_scheme is not None else self._join_scheme
        if scheme not in ("fk", "random"):
            raise ValueError(f"unknown join scheme {scheme!r}")
        query_seed = self._rng.randrange(2**31)
        rng = random.Random(query_seed)
        try:
            make_graph = generators.GRAPH_FAMILIES[family]
        except KeyError:
            raise ValueError(f"unknown graph family {family!r}") from None
        graph = make_graph(n, rng)
        if family == "star":
            catalog = self._star_catalog(graph, rng)
        else:
            catalog = self._catalog(graph, rng, scheme)
        return Query(graph=graph, catalog=catalog, family=family, seed=query_seed)

    # ------------------------------------------------------------------
    # Catalog construction
    # ------------------------------------------------------------------

    def _sample_relations(self, graph: QueryGraph, rng: random.Random):
        relations = []
        for index in range(graph.n_vertices):
            cardinality = steinbrunn.sample_relation_size(rng)
            degree = bitset.bit_count(graph.adjacency(index))
            domains = tuple(
                min(steinbrunn.sample_domain_size(rng), cardinality)
                for _ in range(max(1, degree))
            )
            relations.append(
                RelationStats(
                    cardinality=float(cardinality),
                    tuple_width=self._tuple_width,
                    domain_sizes=domains,
                    name=f"R{index}",
                )
            )
        return relations

    def _random_selectivity(
        self, left: RelationStats, right: RelationStats, rng: random.Random
    ) -> float:
        """Steinbrunn: ``1 / max(dom(A1), dom(A2))`` for random attributes."""
        dom_left = rng.choice(left.domain_sizes)
        dom_right = rng.choice(right.domain_sizes)
        return 1.0 / max(dom_left, dom_right)

    def _fk_selectivity(
        self, left: RelationStats, right: RelationStats, rng: random.Random
    ) -> float:
        """Foreign-key join: result cardinality equals the fk side's.

        ``|L >< R| = |L| * |R| * sel``; forcing the result to ``|fk side|``
        means ``sel = 1 / |key side|``.  The key side is drawn uniformly.
        """
        key_side = left if rng.random() < 0.5 else right
        return 1.0 / key_side.cardinality

    def _catalog(
        self, graph: QueryGraph, rng: random.Random, scheme: str
    ) -> Catalog:
        relations = self._sample_relations(graph, rng)
        selectivities: Dict[Tuple[int, int], float] = {}
        for u, v in sorted(graph.edges):
            if scheme == "fk" and rng.random() < FK_EDGE_PROBABILITY:
                selectivity = self._fk_selectivity(relations[u], relations[v], rng)
            else:
                selectivity = self._random_selectivity(relations[u], relations[v], rng)
            selectivities[(u, v)] = min(1.0, selectivity)
        return Catalog(relations, selectivities)

    def _star_catalog(self, graph: QueryGraph, rng: random.Random) -> Catalog:
        """Pruning-disabled star statistics (§V-B, last paragraph).

        Vertex 0 is the hub (fact table).  Every edge ``(0, leaf)`` gets
        selectivity ``1 / |leaf|`` so any join order yields the hub's
        cardinality at every intermediate step, and all dimensions share
        one sampled cardinality so every join order has *identical* cost —
        no plan ever dominates, bounding never fires, and the runs measure
        pure pruning overhead (the paper confirms this via avg_s = 1).
        """
        hub = RelationStats(
            cardinality=float(steinbrunn.sample_relation_size(rng)),
            tuple_width=self._tuple_width,
            domain_sizes=(steinbrunn.sample_domain_size(rng),),
            name="R0",
        )
        dimension_cardinality = float(steinbrunn.sample_relation_size(rng))
        relations = [hub] + [
            RelationStats(
                cardinality=dimension_cardinality,
                tuple_width=self._tuple_width,
                domain_sizes=(steinbrunn.sample_domain_size(rng),),
                name=f"R{index}",
            )
            for index in range(1, graph.n_vertices)
        ]
        selectivities = {
            (u, v): 1.0 / relations[max(u, v)].cardinality
            for u, v in sorted(graph.edges)
        }
        return Catalog(relations, selectivities)


# ----------------------------------------------------------------------
# Convenience one-shot constructors (the quickstart API)
# ----------------------------------------------------------------------


def generate_query(
    family: str,
    n: int,
    seed: Optional[int] = None,
    join_scheme: str = "fk",
) -> Query:
    """Generate a single query of ``family`` with ``n`` relations."""
    return QueryGenerator(seed=seed, join_scheme=join_scheme).generate(family, n)


def chain_query(n: int, seed: Optional[int] = None) -> Query:
    return generate_query("chain", n, seed)


def star_query(n: int, seed: Optional[int] = None) -> Query:
    return generate_query("star", n, seed)


def cycle_query(n: int, seed: Optional[int] = None) -> Query:
    return generate_query("cycle", n, seed)


def clique_query(n: int, seed: Optional[int] = None) -> Query:
    return generate_query("clique", n, seed)


def random_acyclic_query(n: int, seed: Optional[int] = None) -> Query:
    return generate_query("acyclic", n, seed)


def random_cyclic_query(n: int, seed: Optional[int] = None) -> Query:
    return generate_query("cyclic", n, seed)
