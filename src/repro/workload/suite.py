"""Workload suites: reproducible batches of queries per graph family.

The paper evaluates >20 000 queries across six families.  A
:class:`WorkloadSuite` scales that design down to something a pure-Python
reproduction can run in minutes while keeping the same structure: per family
a sweep over relation counts with several random queries per size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.query import Query
from repro.workload.generator import QueryGenerator

__all__ = ["FamilySpec", "WorkloadSuite", "default_suite", "DEFAULT_FAMILY_SPECS"]


@dataclass(frozen=True)
class FamilySpec:
    """How many queries of which sizes to generate for one family."""

    family: str
    sizes: Tuple[int, ...]
    queries_per_size: int = 3

    def total(self) -> int:
        return len(self.sizes) * self.queries_per_size


#: Defaults chosen so the full evaluation matrix finishes in minutes of
#: pure-Python CPU time.  Cliques and stars are the expensive families
#: (|ccp| grows as 3^n and n*2^n), hence the smaller caps.
DEFAULT_FAMILY_SPECS: Tuple[FamilySpec, ...] = (
    FamilySpec("chain", sizes=tuple(range(4, 15)), queries_per_size=3),
    FamilySpec("star", sizes=tuple(range(4, 11)), queries_per_size=3),
    FamilySpec("cycle", sizes=tuple(range(4, 13)), queries_per_size=3),
    FamilySpec("clique", sizes=tuple(range(4, 10)), queries_per_size=3),
    FamilySpec("acyclic", sizes=tuple(range(4, 13)), queries_per_size=3),
    FamilySpec("cyclic", sizes=tuple(range(4, 12)), queries_per_size=3),
)


class WorkloadSuite:
    """A reproducible collection of queries grouped by family.

    Queries are generated lazily on first access and cached, so building a
    suite object is free and harness runs that only touch one family do not
    pay for the rest.
    """

    def __init__(
        self,
        specs: Sequence[FamilySpec] = DEFAULT_FAMILY_SPECS,
        seed: int = 20120401,
        join_scheme: str = "mixed",
    ):
        """``join_scheme``: ``"fk"``, ``"random"`` or ``"mixed"`` (default).

        The paper's workload contains both foreign-key and random join
        queries (§V-B); ``"mixed"`` alternates the two per query, which is
        essential for reproducing the pruning factors — foreign-key joins
        keep intermediate results flat, so bounding has little to bite on,
        while random joins produce the explosive intermediates where
        branch-and-bound shines.
        """
        if join_scheme not in ("fk", "random", "mixed"):
            raise ValueError(f"unknown join scheme {join_scheme!r}")
        self._specs = {spec.family: spec for spec in specs}
        self._seed = seed
        self._join_scheme = join_scheme
        self._cache: Dict[str, List[Query]] = {}

    @property
    def families(self) -> List[str]:
        return list(self._specs)

    def spec(self, family: str) -> FamilySpec:
        return self._specs[family]

    def queries(self, family: str) -> List[Query]:
        """All queries of one family, generated on demand."""
        if family not in self._cache:
            spec = self._specs[family]
            # Derive a per-family seed so families are independent of each
            # other and of the order in which they are materialized.  The
            # seed must be stable across processes, so avoid hash().
            family_seed = (self._seed * 1000003 + sum(map(ord, family))) & 0x7FFFFFFF
            generator = QueryGenerator(seed=family_seed)
            batch: List[Query] = []
            index = 0
            for size in spec.sizes:
                for _ in range(spec.queries_per_size):
                    if self._join_scheme == "mixed":
                        scheme = "fk" if index % 2 == 0 else "random"
                    else:
                        scheme = self._join_scheme
                    batch.append(generator.generate(spec.family, size, scheme))
                    index += 1
            self._cache[family] = batch
        return self._cache[family]

    def __iter__(self) -> Iterator[Tuple[str, List[Query]]]:
        for family in self._specs:
            yield family, self.queries(family)

    def total_queries(self) -> int:
        return sum(spec.total() for spec in self._specs.values())


def default_suite(
    seed: int = 20120401,
    scale: float = 1.0,
    join_scheme: str = "mixed",
) -> WorkloadSuite:
    """Build the default suite, optionally scaled.

    ``scale`` multiplies the number of queries per size (rounded up to at
    least one); it does not change the size ranges, which are bounded by
    what pure Python can enumerate.
    """
    specs = [
        FamilySpec(
            spec.family,
            spec.sizes,
            max(1, round(spec.queries_per_size * scale)),
        )
        for spec in DEFAULT_FAMILY_SPECS
    ]
    return WorkloadSuite(specs, seed=seed, join_scheme=join_scheme)
