"""Workload substrate: Steinbrunn statistics, query generation, suites."""

from repro.workload.generator import (
    QueryGenerator,
    chain_query,
    clique_query,
    cycle_query,
    generate_query,
    random_acyclic_query,
    random_cyclic_query,
    star_query,
)
from repro.workload.suite import (
    DEFAULT_FAMILY_SPECS,
    FamilySpec,
    WorkloadSuite,
    default_suite,
)

__all__ = [
    "QueryGenerator",
    "generate_query",
    "chain_query",
    "star_query",
    "cycle_query",
    "clique_query",
    "random_acyclic_query",
    "random_cyclic_query",
    "FamilySpec",
    "WorkloadSuite",
    "default_suite",
    "DEFAULT_FAMILY_SPECS",
]
