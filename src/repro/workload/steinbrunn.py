"""Steinbrunn-style sampling of relation and domain sizes (paper Fig. 6).

The paper reproduces the size distributions proposed by Steinbrunn,
Moerkotte and Kemper (VLDB Journal 1997).  Fig. 6 of the paper prints four
relation-size buckets summing to 90% and four domain-size buckets summing to
105%; these are truncation/typo artifacts of the original table, which has a
fifth relation bucket (100 000 - 1 000 000 at 10%) and a 10% last domain
bucket.  We use the corrected distributions and note this in DESIGN.md.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

__all__ = [
    "RELATION_SIZE_BUCKETS",
    "DOMAIN_SIZE_BUCKETS",
    "sample_relation_size",
    "sample_domain_size",
    "sample_domain_sizes",
    "sample_bucketed",
]

#: ``(low, high, probability)`` triples; sizes are drawn uniformly in
#: ``[low, high)``.
RELATION_SIZE_BUCKETS: Sequence[Tuple[int, int, float]] = (
    (10, 100, 0.15),
    (100, 1_000, 0.30),
    (1_000, 10_000, 0.25),
    (10_000, 100_000, 0.20),
    (100_000, 1_000_000, 0.10),
)

DOMAIN_SIZE_BUCKETS: Sequence[Tuple[int, int, float]] = (
    (2, 10, 0.05),
    (10, 100, 0.50),
    (100, 500, 0.35),
    (500, 1_000, 0.10),
)


def sample_bucketed(
    buckets: Sequence[Tuple[int, int, float]], rng: random.Random
) -> int:
    """Draw a bucket by its probability, then a uniform size inside it."""
    roll = rng.random()
    cumulative = 0.0
    low, high = buckets[-1][0], buckets[-1][1]
    for bucket_low, bucket_high, probability in buckets:
        cumulative += probability
        if roll < cumulative:
            low, high = bucket_low, bucket_high
            break
    return rng.randrange(low, high)


def sample_relation_size(rng: random.Random) -> int:
    """Sample one relation cardinality per Fig. 6 (corrected)."""
    return sample_bucketed(RELATION_SIZE_BUCKETS, rng)


def sample_domain_size(rng: random.Random) -> int:
    """Sample one join-attribute domain size per Fig. 6 (corrected)."""
    return sample_bucketed(DOMAIN_SIZE_BUCKETS, rng)


def sample_domain_sizes(count: int, rng: random.Random) -> List[int]:
    """Sample ``count`` independent domain sizes."""
    return [sample_domain_size(rng) for _ in range(count)]
