"""Epsilon-aware cost comparison.

Accumulated plan costs are floating-point sums whose last ulp depends on
association order, so ``==`` between two costs is a latent portability bug
(and the ``no-float-cost-eq`` lint rule rejects it).  These two helpers are
the sanctioned vocabulary; they are shared across plan validation, the
benchmark harness and application code (re-exported from :mod:`repro.core`).
"""

from __future__ import annotations

__all__ = ["COST_REL_TOLERANCE", "COST_ABS_TOLERANCE", "costs_close", "cost_is_zero"]

#: Default relative tolerance.  Costs are sums of integer-valued page
#: counts, so a relative 1e-9 is generous while still catching real
#: recomputation mismatches.
COST_REL_TOLERANCE = 1e-9

#: Default absolute tolerance for comparisons against zero.
COST_ABS_TOLERANCE = 1e-12


def costs_close(
    left: float,
    right: float,
    rel: float = COST_REL_TOLERANCE,
    abs_tol: float = COST_ABS_TOLERANCE,
) -> bool:
    """True when two accumulated costs agree up to rounding.

    Symmetric mixed relative/absolute test:
    ``|left - right| <= max(abs_tol, rel * max(1, |left|, |right|))``.
    The ``max(1, ...)`` keeps the relative term meaningful for sub-unit
    costs, matching the repo's historical comparisons.
    """
    tolerance = max(abs_tol, rel * max(1.0, abs(left), abs(right)))
    return abs(left - right) <= tolerance


def cost_is_zero(cost: float, abs_tol: float = COST_ABS_TOLERANCE) -> bool:
    """True when a cost is zero up to rounding (e.g. leaf nodes)."""
    return abs(cost) <= abs_tol
