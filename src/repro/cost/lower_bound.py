"""Lower bound estimation (LBE) for predicted-cost bounding (§IV-B).

``LBE(S1, S2)`` must lower-bound the total cost of *any* join tree for
``S = S1 u S2`` whose final join combines ``S1`` with ``S2``.  The total
cost decomposes into

    cost(tree(S1)) + cost(tree(S2)) + cost(S1 join S2)

so any admissible bound on each summand yields an admissible LBE.  The
baseline estimator (as in DeHaan & Tompa) bounds the two subtree terms by
zero and the operator term by the cost model's ``lower_bound`` — "based on
the intermediate relations that are the input for the next join".

Advancement 1 of §IV-D sharpens the subtree terms with information the
optimizer already has: the exact cost when ``BestTree`` is known, otherwise
the proven lower bound ``lB``.  LBE runs once per enumerated ccp — the
hottest path of every pruned plan generator — so the improved estimator
talks to the memotable and bounds table directly instead of through
callbacks.
"""

from __future__ import annotations

from repro.cost.model import CostModel
from repro.cost.statistics import StatisticsProvider

__all__ = ["LowerBoundEstimator", "ImprovedLowerBoundEstimator"]


class LowerBoundEstimator:
    """The baseline LBE of [3]: operator lower bound only."""

    def __init__(self, provider: StatisticsProvider, cost_model: CostModel):
        self._provider = provider
        self._cost_model = cost_model

    def estimate(self, left_set: int, right_set: int) -> float:
        """Admissible lower bound for any tree joining these two sets."""
        stats = self._provider.stats
        return self._cost_model.lower_bound(stats(left_set), stats(right_set))


class ImprovedLowerBoundEstimator(LowerBoundEstimator):
    """Advancement 1: add known subtree costs / proven lower bounds.

    Parameters
    ----------
    memo:
        The plan generator's memotable (anything with a ``best(S)`` method
        returning a tree with a ``cost`` or ``None``).  When a subtree's
        optimal plan is registered, its exact cost enters the estimate.
    bounds:
        The bounds table (anything with ``lower(S) -> float``); consulted
        only when no tree is registered yet (§IV-D, first advancement).
    """

    def __init__(
        self,
        provider: StatisticsProvider,
        cost_model: CostModel,
        memo,
        bounds,
    ):
        super().__init__(provider, cost_model)
        self._memo = memo
        self._bounds = bounds

    def estimate(self, left_set: int, right_set: int) -> float:
        stats = self._provider.stats
        total = self._cost_model.lower_bound(stats(left_set), stats(right_set))
        left_tree = self._memo.best(left_set)
        total += (
            left_tree.cost if left_tree is not None
            else self._bounds.lower(left_set)
        )
        right_tree = self._memo.best(right_set)
        total += (
            right_tree.cost if right_tree is not None
            else self._bounds.lower(right_set)
        )
        return total
