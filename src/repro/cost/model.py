"""Cost model interface.

A cost model prices a single two-way join given the
:class:`~repro.cost.statistics.IntermediateStats` of its two inputs.  The
cost of a join *tree* is the sum of its operators' costs; base-relation
scans are charged inside the join that consumes them (the Haas et al. ad hoc
join formulas include reading both inputs), so leaves have cost zero.

Two properties of a model matter to the algorithms in this library and are
covered by property tests:

* **commute rule** (Appendix A): if ``card(x) <= card(y)`` then
  ``join_cost(x, y) <= join_cost(y, x)``.  BUILDTREE relies on this when it
  prices both orders of a ccp together.
* **LBE admissibility** (§IV-B): :meth:`lower_bound` must never exceed the
  true minimal operator cost, otherwise predicted-cost bounding would prune
  optimal plans.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.cost.statistics import IntermediateStats, StatisticsProvider

__all__ = ["CostModel"]


class CostModel(ABC):
    """Prices one join operator; see the module docstring for contracts."""

    #: Registry/display name, overridden by subclasses.
    name = "abstract"

    #: True when the operator cost is a function of the *union* set alone:
    #: ``join_cost(outer, inner)`` must equal the provider's estimated
    #: cardinality of ``outer.vertex_set | inner.vertex_set`` for every
    #: split and both argument orders (the ``C_out`` shape).  This is the
    #: eligibility contract of the DPconv subset-convolution fast path
    #: (:class:`repro.baselines.dpconv.DPconv`): with a union-shaped cost
    #: the join-order DP is a true subset convolution in the (min, +)
    #: semiring, so per-layer sweeps replace per-pair tree construction.
    #: Models whose cost depends on the *pair* of inputs (Haas I/O costs,
    #: fault-injection wrappers) must leave this False.
    cout_shaped = False

    def bind(self, provider: StatisticsProvider) -> "CostModel":
        """Return the model to use with ``provider``'s query.

        Stateless models (the default) return ``self``.  Models that
        consult per-query statistics (:class:`~repro.cost.cout.CoutCostModel`)
        override this to return a **bound copy**, leaving the receiver
        untouched — one model instance may parameterize many
        :class:`~repro.context.OptimizationContext`\\ s, and a mutating
        bind would silently keep the *first* query's provider.
        """
        return self

    @abstractmethod
    def join_cost(self, outer: IntermediateStats, inner: IntermediateStats) -> float:
        """Cost of joining ``outer`` (left) with ``inner`` (right).

        Implementations should return the cheapest cost over the join
        algorithms they model for this fixed argument order.
        """

    def min_join_cost(
        self, left: IntermediateStats, right: IntermediateStats
    ) -> float:
        """Cheapest cost over both argument orders.

        This is the ``c_join`` of TDPG_ACB line 3 / TDPG_APCBI line 17: it
        can be computed from the two input sets alone, before any subtree is
        built.
        """
        return min(self.join_cost(left, right), self.join_cost(right, left))

    def lower_bound(
        self, left: IntermediateStats, right: IntermediateStats
    ) -> float:
        """Admissible lower bound on the operator cost (defaults to exact).

        The default is the exact minimal operator cost, which is trivially
        admissible; models whose ``join_cost`` is expensive may override
        this with a cheaper bound.
        """
        return self.min_join_cost(left, right)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
