"""The ``C_out`` cost model (extension; not used by the paper's evaluation).

``C_out`` charges every join the cardinality of its output and nothing
else.  It is the standard model for analysing join-ordering algorithms in
isolation because it is symmetric, cheap to evaluate and order-sensitive.
We ship it for unit tests and for users who want a faster, simpler model;
the paper's experiments use :class:`~repro.cost.haas.HaasCostModel`.
"""

from __future__ import annotations

from typing import Callable

from repro.cost.model import CostModel
from repro.cost.statistics import IntermediateStats, StatisticsProvider

__all__ = ["CoutCostModel"]


class CoutCostModel(CostModel):
    """``cost(S1 join S2) = |S1 join S2|`` under the independence model.

    The output cardinality depends on the joined *set*, so this model needs
    a :class:`StatisticsProvider` to look it up; :meth:`bind` returns a
    copy attached to one (:class:`~repro.context.OptimizationContext` does
    this automatically when building a context).
    """

    name = "cout"

    #: ``join_cost`` is exactly the union set's output cardinality, which
    #: makes this model eligible for the DPconv subset-convolution fast
    #: path (see :attr:`repro.cost.model.CostModel.cout_shaped`).
    cout_shaped = True

    def __init__(self) -> None:
        self._provider: StatisticsProvider | None = None

    def bind(self, provider: StatisticsProvider) -> "CoutCostModel":
        """Return a copy bound to ``provider``; the receiver is untouched.

        Binding used to mutate ``self``, which meant a single model
        instance reused across two generators or queries silently kept the
        *first* query's statistics — wrong cardinalities, wrong costs, no
        error.  A bound copy per context makes sharing an unbound model
        safe by construction.
        """
        bound = CoutCostModel()
        bound._provider = provider
        return bound

    def _output_cardinality(
        self, left: IntermediateStats, right: IntermediateStats
    ) -> float:
        if self._provider is None:
            raise RuntimeError(
                "CoutCostModel must be bound to a StatisticsProvider "
                "before pricing joins"
            )
        return self._provider.cardinality(left.vertex_set | right.vertex_set)

    def join_cost(self, outer: IntermediateStats, inner: IntermediateStats) -> float:
        return self._output_cardinality(outer, inner)

    def lower_bound(
        self, left: IntermediateStats, right: IntermediateStats
    ) -> float:
        # The operator cost *is* the output cardinality, which is fixed for
        # the pair, so the exact value is also the tightest bound.
        return self._output_cardinality(left, right)
