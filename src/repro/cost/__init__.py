"""Cost estimation: intermediate statistics, join cost models, LBE."""

from repro.cost.compare import (
    COST_ABS_TOLERANCE,
    COST_REL_TOLERANCE,
    cost_is_zero,
    costs_close,
)
from repro.cost.cout import CoutCostModel
from repro.cost.haas import DEFAULT_BUFFER_PAGES, HaasCostModel
from repro.cost.lower_bound import ImprovedLowerBoundEstimator, LowerBoundEstimator
from repro.cost.model import CostModel
from repro.cost.statistics import IntermediateStats, StatisticsProvider

__all__ = [
    "CostModel",
    "HaasCostModel",
    "CoutCostModel",
    "IntermediateStats",
    "StatisticsProvider",
    "LowerBoundEstimator",
    "ImprovedLowerBoundEstimator",
    "DEFAULT_BUFFER_PAGES",
    "costs_close",
    "cost_is_zero",
    "COST_REL_TOLERANCE",
    "COST_ABS_TOLERANCE",
]
