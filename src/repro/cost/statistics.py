"""Derived statistics for intermediate results (plan classes).

The cost model consumes :class:`IntermediateStats` — cardinality, tuple
width and page count of the (possibly intermediate) relation produced by a
plan class.  :class:`StatisticsProvider` computes and memoizes them per
vertex set; this is the shared infrastructure mentioned in §V-A ("estimate
cardinalities ... common functions").

Cardinality estimation follows the classic System-R independence model: the
cardinality of a set ``S`` is the product of the base cardinalities times
the product of the selectivities of all join edges inside ``S``.  With this
model the cardinality of a plan class is a function of the *set* only, never
of the join order — which is exactly what the paper's bounding machinery
(e.g. computing the operator cost ``c_join`` before requesting subtrees)
relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.catalog.relation import DEFAULT_PAGE_SIZE
from repro.graph import bitset
from repro.query import Query

__all__ = ["IntermediateStats", "StatisticsProvider"]


@dataclass(frozen=True)
class IntermediateStats:
    """Size facts about one (intermediate) relation.

    One instance exists per memoized plan class, and large enumerations
    memoize hundreds of thousands — ``__slots__`` drops the per-instance
    ``__dict__`` (64 bytes/instance vs. 352 with a dict on CPython 3.11;
    see docs/architecture.md).  Legal on a frozen dataclass here because
    no field has a default.
    """

    __slots__ = ("vertex_set", "cardinality", "tuple_width", "pages")

    vertex_set: int
    cardinality: float
    tuple_width: int
    pages: float

    def __post_init__(self) -> None:
        if self.cardinality < 0:
            raise ValueError("cardinality cannot be negative")


class StatisticsProvider:
    """Memoized cardinality / width / page estimation for one query.

    Parameters
    ----------
    query:
        The query whose catalog backs the estimates.
    page_size:
        Page size in bytes used to convert widths to page counts.
    """

    __slots__ = ("_query", "_graph", "_catalog", "_page_size", "_cache")

    def __init__(self, query: Query, page_size: int = DEFAULT_PAGE_SIZE):
        self._query = query
        self._graph = query.graph
        self._catalog = query.catalog
        self._page_size = page_size
        self._cache: Dict[int, IntermediateStats] = {}
        for index in range(query.n_relations):
            relation = query.catalog.relation(index)
            self._cache[bitset.singleton(index)] = IntermediateStats(
                vertex_set=bitset.singleton(index),
                cardinality=relation.cardinality,
                tuple_width=relation.tuple_width,
                pages=relation.pages(page_size),
            )

    @property
    def page_size(self) -> int:
        return self._page_size

    def stats(self, vertex_set: int) -> IntermediateStats:
        """Statistics of the intermediate result for ``vertex_set``."""
        cached = self._cache.get(vertex_set)
        if cached is None:
            cached = self._compute(vertex_set)
            self._cache[vertex_set] = cached
        return cached

    def join_stats(self, left: int, right: int) -> IntermediateStats:
        """Statistics of ``left JOIN right`` (their disjoint union)."""
        return self.stats(left | right)

    def cardinality(self, vertex_set: int) -> float:
        return self.stats(vertex_set).cardinality

    def _compute(self, vertex_set: int) -> IntermediateStats:
        # Multiply factors in value order so the result is bit-identical
        # under vertex renumbering (advancement 6 relabels the query; a
        # label-dependent multiplication order can drift an ulp, which the
        # page ceiling below amplifies into a whole page of cost).
        factors = []
        width = 0
        for index in bitset.iter_bits(vertex_set):
            relation = self._catalog.relation(index)
            factors.append(relation.cardinality)
            width += relation.tuple_width
        for u, v in self._graph.edges_within(vertex_set):
            factors.append(self._catalog.selectivity(u, v))
        cardinality = 1.0
        for factor in sorted(factors):
            cardinality *= factor
        tuples_per_page = max(1, self._page_size // max(1, width))
        pages = max(1.0, math.ceil(cardinality / tuples_per_page))
        return IntermediateStats(
            vertex_set=vertex_set,
            cardinality=cardinality,
            tuple_width=width,
            pages=pages,
        )

    def cache_size(self) -> int:
        """Number of memoized plan classes (diagnostics)."""
        return len(self._cache)
