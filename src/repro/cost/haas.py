"""I/O cost model after Haas, Carey, Livny and Shukla (paper §V-A, [10]).

"Seeking the truth about ad hoc join costs" develops disk-based cost
formulas for the classic ad hoc join algorithms.  We implement the three
representative algorithms — blocked nested-loop join, sort-merge join and
(hybrid) hash join — over a page/buffer model and price a join as the
cheapest of the three for the given argument order.  This gives the paper's
two key properties:

* the formulas are *realistic* and notably more expensive to evaluate than a
  toy ``C_out`` model (the paper attributes its weaker APCB gains vs. [3] to
  exactly this);
* the commute rule of Appendix A holds: for inputs of equal tuple width,
  putting the smaller input on the outer/build side never costs more.

Costs are expressed in page I/Os.  Both inputs are read at least once by
every algorithm, so ``outer.pages + inner.pages`` is an admissible lower
bound — that is what :meth:`HaasCostModel.lower_bound` returns and what the
LBE of §IV-B builds on ("bases its estimate on the intermediate relations
that are the input for the next join").
"""

from __future__ import annotations

import math

from repro.cost.model import CostModel
from repro.cost.statistics import IntermediateStats

__all__ = ["HaasCostModel", "DEFAULT_BUFFER_PAGES"]

#: Buffer pool pages available to one join operator.
DEFAULT_BUFFER_PAGES = 128


class HaasCostModel(CostModel):
    """Min-over-algorithms ad hoc join I/O cost.

    Parameters
    ----------
    buffer_pages:
        Pages of main memory available to the operator; must be >= 3 (one
        input page, one output page, and at least one page of working
        memory, the minimum for all three algorithms).
    """

    name = "haas"

    def __init__(self, buffer_pages: int = DEFAULT_BUFFER_PAGES):
        if buffer_pages < 3:
            raise ValueError(f"need >= 3 buffer pages, got {buffer_pages}")
        self._buffer = buffer_pages

    @property
    def buffer_pages(self) -> int:
        return self._buffer

    # ------------------------------------------------------------------
    # Individual algorithms (public so tests and docs can exercise them)
    # ------------------------------------------------------------------

    def blocked_nested_loop(self, outer: float, inner: float) -> float:
        """Blocked NL join: read outer once, inner once per outer chunk.

        The outer is consumed in chunks of ``B - 2`` pages (one page is
        reserved for streaming the inner, one for output).
        """
        chunk = self._buffer - 2
        return outer + math.ceil(outer / chunk) * inner

    def _sort_pages(self, pages: float) -> float:
        """I/O to fully sort ``pages`` with ``B`` buffer pages.

        In-memory sorts cost one read; external sorts pay one read+write for
        run formation plus one read+write per (B-1)-way merge pass, with the
        final pass pipelined into the merge join (hence the ``- 1``).
        """
        if pages <= self._buffer:
            return pages
        runs = math.ceil(pages / self._buffer)
        merge_passes = math.ceil(math.log(runs, self._buffer - 1))
        # Run formation: read + write.  Each merge pass but the last:
        # read + write.  The last pass only reads (pipelined into the join).
        return 2 * pages + max(0, merge_passes - 1) * 2 * pages + pages

    def sort_merge(self, outer: float, inner: float) -> float:
        """Sort-merge join: sort both inputs, merge while joining."""
        return self._sort_pages(outer) + self._sort_pages(inner)

    def hybrid_hash(self, build: float, probe: float) -> float:
        """Hybrid hash join with the build input on the left.

        When the build input fits in memory, both inputs are read exactly
        once.  Otherwise a fraction ``q`` of the build input is kept
        memory-resident and the remaining ``1 - q`` of *both* inputs is
        written to partitions and read back (GRACE behaviour as ``q -> 0``).
        """
        if build <= self._buffer:
            return build + probe
        resident = max(0.0, min(1.0, self._buffer / build))
        spilled = 1.0 - resident
        # Round the spill traffic up to whole pages: I/O happens in page
        # units, and integer-valued costs keep the branch-and-bound budget
        # arithmetic exact (fractional costs drift by ulps through the
        # chained subtractions of TDPG_ACB/TDPG_APCBI, which shows up as
        # spurious budget failures at exact-budget boundaries).
        return (build + probe) + math.ceil(2.0 * spilled * (build + probe))

    # ------------------------------------------------------------------
    # CostModel interface
    # ------------------------------------------------------------------

    def join_cost(self, outer: IntermediateStats, inner: IntermediateStats) -> float:
        left = outer.pages
        right = inner.pages
        return min(
            self.blocked_nested_loop(left, right),
            self.sort_merge(left, right),
            self.hybrid_hash(left, right),
        )

    def lower_bound(
        self, left: IntermediateStats, right: IntermediateStats
    ) -> float:
        """Both inputs must be read at least once by any algorithm."""
        return left.pages + right.pages

    def __repr__(self) -> str:
        return f"HaasCostModel(buffer_pages={self._buffer})"
