"""Service health reporting (the ``healthz()`` envelope).

A :class:`ServiceHealth` snapshot aggregates everything an operator (or
the chaos soak's assertions) needs to judge the service at a glance:
lifecycle state, queue depth against capacity, worker liveness, request
counters, the degradation-rung histogram, breaker states, and the plan
cache's hit accounting.  It is a plain dataclass with an
:meth:`as_dict` so ``healthz`` output serializes straight to JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["ServiceHealth"]


@dataclass
class ServiceHealth:
    """One observation of the service's state."""

    #: ``"ok"`` — running, every breaker closed; ``"degraded"`` — running
    #: and serving, but at least one breaker is open/half-open (requests
    #: ride retries and the fail-open backstop); ``"draining"`` /
    #: ``"stopped"`` — lifecycle states.
    status: str  # "ok" | "degraded" | "draining" | "stopped"
    queue: Dict[str, object] = field(default_factory=dict)
    workers_alive: int = 0
    workers_total: int = 0
    accepted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    timeouts: int = 0
    #: Accepted requests whose callers cancelled them while still queued.
    cancelled: int = 0
    retries: int = 0
    breaker_trips: int = 0
    unhandled_worker_errors: int = 0
    #: Degradation rung -> number of completed requests that landed there
    #: ("exact" means no degradation).
    rung_histogram: Dict[str, int] = field(default_factory=dict)
    breakers: Dict[str, Dict[str, object]] = field(default_factory=dict)
    plan_cache: Optional[Dict[str, object]] = None
    #: Telemetry registry snapshot (metric name -> value) when the service
    #: runs with a :class:`~repro.telemetry.Telemetry` bundle attached.
    metrics: Optional[Dict[str, object]] = None

    @property
    def healthy(self) -> bool:
        """Serving normally: running, fully staffed, no open breakers."""
        return (
            self.status == "ok"
            and self.workers_alive == self.workers_total
            and self.unhandled_worker_errors == 0
            and all(
                snapshot.get("state") == "closed"
                for snapshot in self.breakers.values()
            )
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "status": self.status,
            "healthy": self.healthy,
            "queue": dict(self.queue),
            "workers": {
                "alive": self.workers_alive,
                "total": self.workers_total,
            },
            "requests": {
                "accepted": self.accepted,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
                "timeouts": self.timeouts,
                "cancelled": self.cancelled,
                "retries": self.retries,
            },
            "breaker_trips": self.breaker_trips,
            "unhandled_worker_errors": self.unhandled_worker_errors,
            "rung_histogram": dict(self.rung_histogram),
            "breakers": {
                name: dict(snapshot) for name, snapshot in self.breakers.items()
            },
            "plan_cache": dict(self.plan_cache) if self.plan_cache else None,
            "metrics": dict(self.metrics) if self.metrics else None,
        }

    def describe(self) -> str:
        """Terse one-per-line rendering for CLI output."""
        if self.healthy:
            verdict = "healthy"
        elif self.status == "degraded":
            verdict = "serving degraded"
        else:
            verdict = "unhealthy"
        lines = [
            f"status     : {self.status} ({verdict})",
            f"queue      : {self.queue.get('depth', 0)}/"
            f"{self.queue.get('capacity', 0)} "
            f"(high water {self.queue.get('high_water', 0)}, "
            f"rejected {self.rejected})",
            f"workers    : {self.workers_alive}/{self.workers_total} alive, "
            f"{self.unhandled_worker_errors} unhandled error(s)",
            f"requests   : {self.completed} completed, {self.failed} failed, "
            f"{self.timeouts} timeouts, {self.cancelled} cancelled, "
            f"{self.retries} retries",
            f"breakers   : {self.breaker_trips} trips",
        ]
        for name, snapshot in sorted(self.breakers.items()):
            lines.append(f"  {name}: {snapshot.get('state')}")
        if self.rung_histogram:
            rungs = ", ".join(
                f"{rung}={count}"
                for rung, count in sorted(self.rung_histogram.items())
            )
            lines.append(f"rungs      : {rungs}")
        return "\n".join(lines)
