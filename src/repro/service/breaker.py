"""Per-component circuit breakers (closed / open / half-open).

A :class:`CircuitBreaker` guards one flaky component — in this service the
cost model and the catalog — and implements the classic three-state
machine:

* **closed** — calls flow; ``failure_threshold`` *consecutive* failures
  trip the breaker open;
* **open** — calls fast-fail (:meth:`allow` returns ``False``) for
  ``cooldown_seconds``, taking load off the sick component;
* **half-open** — after the cooldown, up to ``half_open_probes`` probe
  calls are admitted; ``close_threshold`` consecutive probe successes
  close the breaker, any probe failure re-opens it.

Two design points make breakers testable and their behaviour replayable:

* the **clock is injectable** (any ``() -> float`` monotonic source), so
  tests drive open→half-open transitions with a
  :class:`ManualClock` instead of sleeping;
* every state change is appended to :attr:`transitions` as
  ``(event_index, old_state, new_state)`` where ``event_index`` counts
  the outcomes this breaker has observed — virtual time, not wall time —
  so a serialized replay of the same outcome sequence produces an
  identical trace.

All methods are thread-safe; a :class:`BreakerBoard` keys one breaker per
component name and aggregates their snapshots for ``healthz``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "CircuitBreaker",
    "BreakerBoard",
    "ManualClock",
]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class ManualClock:
    """A deterministic monotonic clock advanced explicitly (or by sleeps).

    Doubles as the service's ``sleep`` substitute in virtual-time tests:
    ``clock.sleep(d)`` advances the clock by ``d`` without blocking, so
    backoff delays and breaker cooldowns elapse instantly but in order.
    """

    def __init__(self, start: float = 0.0):
        self._now = start
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds}")
        with self._lock:
            self._now += seconds

    def sleep(self, seconds: float) -> None:
        """Sleep by advancing virtual time (never blocks)."""
        self.advance(max(0.0, seconds))


class CircuitBreaker:
    """One component's three-state breaker with an injectable clock."""

    def __init__(
        self,
        component: str,
        failure_threshold: int = 3,
        cooldown_seconds: float = 0.25,
        half_open_probes: int = 1,
        close_threshold: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_seconds < 0:
            raise ValueError(
                f"cooldown_seconds must be >= 0, got {cooldown_seconds}"
            )
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        if close_threshold < 1:
            raise ValueError(
                f"close_threshold must be >= 1, got {close_threshold}"
            )
        self.component = component
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.half_open_probes = half_open_probes
        self.close_threshold = close_threshold
        self._clock = clock
        self._lock = threading.RLock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._consecutive_successes = 0
        self._opened_at: Optional[float] = None
        self._probes_in_flight = 0
        self._events = 0
        self.trips = 0
        #: ``(event_index, old_state, new_state)`` per transition.
        self.transitions: List[Tuple[int, str, str]] = []

    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _transition(self, new_state: str) -> None:
        if new_state != self._state:
            self.transitions.append((self._events, self._state, new_state))
            self._state = new_state

    def _maybe_half_open(self) -> None:
        """Open → half-open once the cooldown has elapsed."""
        if self._state == OPEN and self._opened_at is not None:
            if self._clock() - self._opened_at >= self.cooldown_seconds:
                self._transition(HALF_OPEN)
                self._probes_in_flight = 0
                self._consecutive_successes = 0

    # ------------------------------------------------------------------

    def allow(self) -> bool:
        """May a call proceed right now?  Half-open admits limited probes."""
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                return False
            if self._probes_in_flight >= self.half_open_probes:
                return False
            self._probes_in_flight += 1
            return True

    def retry_after(self) -> float:
        """Seconds until an open breaker will admit a probe (0 otherwise)."""
        with self._lock:
            self._maybe_half_open()
            if self._state != OPEN or self._opened_at is None:
                return 0.0
            remaining = self.cooldown_seconds - (self._clock() - self._opened_at)
            return max(0.0, remaining)

    def record_success(self) -> None:
        """A guarded call completed cleanly."""
        with self._lock:
            self._maybe_half_open()
            self._events += 1
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._consecutive_successes += 1
                if self._consecutive_successes >= self.close_threshold:
                    self._transition(CLOSED)
                    self._consecutive_successes = 0
            # Success in CLOSED is the steady state; in OPEN it cannot
            # happen (allow() refused the call).

    def release_probe(self) -> None:
        """Hand back a half-open probe slot whose call never ran.

        Not an outcome: no event is counted and no state changes — the
        slot simply becomes available to the next prober.  Callers that
        were admitted by :meth:`allow` but then abort before the guarded
        call (e.g. another component's breaker refused) must release, or
        the bounded probe budget leaks and the breaker refuses forever.
        """
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)

    def record_failure(self) -> None:
        """A guarded call failed with this component implicated."""
        with self._lock:
            self._maybe_half_open()
            self._events += 1
            self._consecutive_successes = 0
            if self._state == HALF_OPEN:
                # A failed probe re-opens immediately.
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._trip()
                return
            if self._state == OPEN:
                return
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._trip()

    def _trip(self) -> None:
        self._transition(OPEN)
        self.trips += 1
        self._opened_at = self._clock()
        self._consecutive_failures = 0

    # ------------------------------------------------------------------

    def trace(self) -> List[str]:
        """Human/JSON-friendly transition trace."""
        with self._lock:
            return [
                f"{self.component}@{event}: {old} -> {new}"
                for event, old, new in self.transitions
            ]

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            self._maybe_half_open()
            return {
                "component": self.component,
                "state": self._state,
                "trips": self.trips,
                "events": self._events,
                "consecutive_failures": self._consecutive_failures,
                "transitions": self.trace(),
            }

    def __repr__(self) -> str:
        with self._lock:  # RLock: nesting under self.state is fine
            return (
                f"CircuitBreaker({self.component!r}, state={self.state}, "
                f"trips={self.trips})"
            )


class BreakerBoard:
    """Lazily-created breakers keyed by component name, shared settings."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_seconds: float = 0.25,
        half_open_probes: int = 1,
        close_threshold: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._settings = dict(
            failure_threshold=failure_threshold,
            cooldown_seconds=cooldown_seconds,
            half_open_probes=half_open_probes,
            close_threshold=close_threshold,
        )
        self._clock = clock
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def breaker(self, component: str) -> CircuitBreaker:
        with self._lock:
            found = self._breakers.get(component)
            if found is None:
                found = CircuitBreaker(
                    component, clock=self._clock, **self._settings
                )
                self._breakers[component] = found
            return found

    def components(self) -> List[str]:
        with self._lock:
            return sorted(self._breakers)

    @property
    def total_trips(self) -> int:
        with self._lock:
            return sum(breaker.trips for breaker in self._breakers.values())

    def trace(self) -> List[str]:
        """All breakers' transition traces, merged per component."""
        return [
            line
            for component in self.components()
            for line in self.breaker(component).trace()
        ]

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {
            component: self.breaker(component).snapshot()
            for component in self.components()
        }

    def __repr__(self) -> str:
        return f"BreakerBoard({self.components()}, trips={self.total_trips})"
