"""repro.service: a fault-tolerant concurrent optimization service.

The service wraps the existing optimization substrate
(:class:`~repro.context.OptimizationContext` →
:class:`~repro.resilience.ResilientOptimizer` →
:class:`~repro.context.PlanCache`) behind a thread pool with the
operational machinery a long-running deployment needs:

* **admission control** — a bounded priority queue
  (:class:`AdmissionQueue`) that sheds load deterministically with
  :class:`~repro.errors.ServiceOverloadError` instead of building an
  unbounded backlog;
* **retries** — :class:`RetryPolicy` retries transient failures
  (injected faults, catalog loss, open circuits) with exponential
  backoff and seeded jitter; permanent failures go straight down the
  degradation ladder;
* **circuit breakers** — per-component :class:`CircuitBreaker`
  (cost model, catalog) with the classic closed/open/half-open state
  machine, injectable clocks, and reproducible transition traces;
* **observability** — :meth:`OptimizationService.healthz` returns a
  :class:`ServiceHealth` snapshot (breaker states, queue depth,
  degradation-rung histogram); shutdown drains gracefully;
* **chaos soak** — ``python -m repro.service.soak`` runs the service
  under seeded fault injection and asserts every accepted request
  returned a validated plan bit-identical to a fault-free replay;
* **sharding** — :class:`~repro.service.sharded.ShardedService` runs N
  supervised copies of this service as child processes behind a
  consistent-hash router (warm-cache affinity on the WL fingerprint),
  with crash fail-over, seeded-backoff respawn, graceful drains, and a
  ``--kill-shards`` chaos mode (``python -m repro.service.soak
  --shards N --kill-shards``).

See ``docs/service.md`` for the architecture and tuning guide.
"""

from repro.service.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    CircuitBreaker,
    ManualClock,
)
from repro.service.health import ServiceHealth
from repro.service.queue import DEFAULT_QUEUE_CAPACITY, AdmissionQueue
from repro.service.retry import TRANSIENT_ERRORS, RetryPolicy
from repro.service.server import (
    BREAKER_COMPONENTS,
    OptimizationService,
    OptimizeRequest,
    OptimizeResponse,
)
from repro.service.sharded import (
    ClusterHealth,
    ConsistentHashRouter,
    ShardConfig,
    ShardedService,
)

__all__ = [
    "AdmissionQueue",
    "BREAKER_COMPONENTS",
    "BreakerBoard",
    "CLOSED",
    "CircuitBreaker",
    "ClusterHealth",
    "ConsistentHashRouter",
    "DEFAULT_QUEUE_CAPACITY",
    "HALF_OPEN",
    "ManualClock",
    "OPEN",
    "OptimizationService",
    "OptimizeRequest",
    "OptimizeResponse",
    "RetryPolicy",
    "ServiceHealth",
    "ShardConfig",
    "ShardedService",
    "TRANSIENT_ERRORS",
]
