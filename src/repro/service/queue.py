"""Bounded, priority-aware admission queue (load shedding at the door).

The service's first line of defence against overload is *deterministic
rejection*: a :class:`AdmissionQueue` holds at most ``capacity`` pending
requests, and a ``put`` against a full queue raises
:class:`~repro.errors.ServiceOverloadError` immediately — it never blocks
the submitting thread and never grows without bound.  The error carries
the queue depth at rejection time, so callers (and the chaos soak) can
assert the shedding decision followed from observable state.

Ordering is priority-first: higher ``priority`` values dequeue before
lower ones, FIFO within a priority level (a monotonically increasing
sequence number breaks ties, so two equal-priority requests never
compare their payloads).

The queue is also the shutdown rendezvous: :meth:`close` stops admission,
and workers blocked in :meth:`get` wake up and drain the backlog
(``drain=True`` semantics) or see it cleared (:meth:`drain_pending`).
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Callable, Generic, List, Optional, Tuple, TypeVar

from repro.errors import ServiceOverloadError, ServiceShutdownError

__all__ = ["AdmissionQueue", "DEFAULT_QUEUE_CAPACITY"]

#: Default admission-queue bound; deep enough to absorb bursts, shallow
#: enough that a stuck worker pool sheds load within one queue's worth.
DEFAULT_QUEUE_CAPACITY = 64

T = TypeVar("T")


class AdmissionQueue(Generic[T]):
    """A bounded priority queue with non-blocking, deterministic admission.

    Parameters
    ----------
    capacity:
        Maximum number of queued items; ``put`` beyond it sheds load by
        raising :class:`ServiceOverloadError`.  Must be positive.
    clock:
        Monotonic clock used for :meth:`get` timeout accounting
        (injectable for tests).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_QUEUE_CAPACITY,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self._capacity = capacity
        self._clock = clock
        self._heap: List[Tuple[int, int, T]] = []
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._sequence = 0
        self._closed = False
        self.high_water = 0
        self.rejected = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    @property
    def depth(self) -> int:
        """Current number of queued items."""
        return len(self)

    # ------------------------------------------------------------------

    def put(self, item: T, priority: int = 0) -> None:
        """Admit ``item`` or shed it; never blocks.

        Raises :class:`ServiceOverloadError` when the queue is full and
        :class:`ServiceShutdownError` when it has been closed.
        """
        with self._lock:
            if self._closed:
                raise ServiceShutdownError(
                    "admission queue is closed; the service is shutting down"
                )
            if len(self._heap) >= self._capacity:
                self.rejected += 1
                raise ServiceOverloadError(len(self._heap), self._capacity)
            # heapq is a min-heap: negate so higher priority pops first;
            # the sequence number keeps FIFO order within a priority.
            heapq.heappush(self._heap, (-priority, self._sequence, item))
            self._sequence += 1
            if len(self._heap) > self.high_water:
                self.high_water = len(self._heap)
            self._not_empty.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[T]:
        """Pop the highest-priority item, blocking while the queue is empty.

        Returns ``None`` when the queue is closed and drained (the worker
        shutdown signal) or when ``timeout`` elapses with nothing queued.
        The timeout is one monotonic deadline for the whole call: spurious
        condition wakeups (or losing a race for a just-added item) re-wait
        only the *remaining* time, never the full timeout again.
        """
        deadline = None if timeout is None else self._clock() + timeout
        with self._not_empty:
            while not self._heap:
                if self._closed:
                    return None
                if deadline is None:
                    self._not_empty.wait()
                    continue
                remaining = deadline - self._clock()
                if remaining <= 0:
                    return None
                self._not_empty.wait(timeout=remaining)
            return heapq.heappop(self._heap)[2]

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop admission; blocked getters drain the backlog then wake to
        ``None``."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    def drain_pending(self) -> List[T]:
        """Remove and return every queued item (non-draining shutdown)."""
        with self._lock:
            pending = [entry[2] for entry in sorted(self._heap)]
            self._heap.clear()
            return pending

    def snapshot(self) -> dict:
        """Queue state for health reports."""
        with self._lock:
            return {
                "depth": len(self._heap),
                "capacity": self._capacity,
                "high_water": self.high_water,
                "rejected": self.rejected,
                "closed": self._closed,
            }

    def __repr__(self) -> str:
        with self._lock:
            state = "closed" if self._closed else "open"
            return (
                f"AdmissionQueue(depth={len(self._heap)}/{self._capacity}, "
                f"high_water={self.high_water}, {state})"
            )
