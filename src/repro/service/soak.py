"""Chaos soak driver: ``python -m repro.service.soak``.

Runs an :class:`~repro.service.OptimizationService` for N seconds under a
mixed chain/star/clique workload with a seeded :class:`ChaosPlant`
poisoning a fraction of optimization attempts (cost-model raise/NaN/Inf,
catalog statistics loss, injected latency), then asserts the service's
whole-run contract:

* every accepted request returned a plan that passes
  :func:`repro.plans.validation.validate_plan` (and finiteness checks) —
  zero failed responses, zero invalid plans;
* no worker thread died or leaked an unhandled exception;
* **replay determinism** — each returned exact plan is bit-identical
  (same s-expression, same cost ``repr``) to the plan a single-threaded,
  chaos-disarmed run produces for the same query: concurrency, retries
  and fault handling changed latency and degradation metadata only,
  never plan choice.

The chaos schedule is a pure function of ``(service seed, request id,
attempt)``, so a given seed poisons the same attempts the same way on
every run regardless of thread interleaving.  Exit status is 0 iff every
assertion holds, which is what the CI ``soak-smoke`` job keys on.

``--shards N`` moves the same soak onto a
:class:`~repro.service.sharded.ShardedService` (N supervised shard
processes), and ``--kill-shards K`` arms **process-kill chaos**: K times
over the run a seeded schedule SIGKILLs a random live shard mid-flight.
The contract hardens accordingly: every accepted request must *still*
resolve — failed over to a surviving shard, or served by the front-end
fallback ladder — to a validated plan bit-identical to the
single-process disarmed replay, and the respawns/fail-overs must be
visible in the cluster ``healthz()``.  A future that never resolves is
counted as *lost* and fails the run.  That is what the CI
``shard-chaos-smoke`` job keys on.

``--store-dir DIR`` arms the durable L2 plan store under the shards
(single-writer ``shard-<id>.rpl`` segments), and ``--kill-during-write``
hardens the kill-shards contract into the crash-safe cache contract:
SIGKILLs now land while shards are appending cache records, and after
the run every segment is re-opened through recovery and the report
asserts (a) **zero corrupt replays** — torn tails truncated, CRC
mismatches quarantined, every surviving record decodes; (b) **warm hits
bit-identical to cold** — a cache warmed from the recovered segments
serves exactly the plans a cache-less optimizer computes; and (c)
**fail-open certification** — for every store fault kind, armed vs
disarmed injection produces bit-identical plans.  That is what the CI
``cache-durability-smoke`` job keys on.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import random
import sys
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.service import service_failure_counts
from repro.context.store import atomic_write_text
from repro.cost.model import CostModel
from repro.errors import ReproError, ServiceOverloadError
from repro.plans.validation import check_finite, validate_plan
from repro.query import Query
from repro.resilience.faults import FaultInjector
from repro.resilience.optimizer import ResilientOptimizer
from repro.service.breaker import BreakerBoard
from repro.service.retry import RetryPolicy
from repro.service.server import OptimizationService, OptimizeRequest
from repro.telemetry import Telemetry, Tracer, TraceSink
from repro.telemetry.summary import summarize_spans
from repro.workload.generator import QueryGenerator

__all__ = [
    "ChaosPlant",
    "ChaosAttempt",
    "SoakRecord",
    "SoakReport",
    "ShardedSoakReport",
    "build_query_pool",
    "run_soak",
    "run_sharded_soak",
    "main",
]

#: Fault kinds the plant draws from: the three cost-model corruption
#: modes, catalog statistics loss, and injected latency.
CHAOS_KINDS = ("raise", "nan", "inf", "catalog", "latency")


class ChaosAttempt:
    """One poisoned attempt: a seeded injector plus the chosen fault kind.

    Implements the :class:`~repro.service.server.AttemptChaos` protocol.
    """

    def __init__(self, injector: FaultInjector, kind: str):
        self._injector = injector
        self.kind = kind

    @property
    def injected(self) -> Dict[str, int]:
        return self._injector.injected

    def cost_model_factory(
        self, base: Callable[[], CostModel]
    ) -> Callable[[], CostModel]:
        if self.kind == "catalog":
            return base
        return self._injector.cost_model_factory(base, self.kind)

    def wrap_query(self, query: Query) -> Query:
        if self.kind == "catalog":
            return self._injector.query(query)
        return query

    def __enter__(self) -> "ChaosAttempt":
        self._injector.arm()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._injector.disarm()
        return False

    def __repr__(self) -> str:
        return f"ChaosAttempt(kind={self.kind!r}, {self._injector!r})"


class ChaosPlant:
    """Seeded per-attempt fault scheduler (the service's ``chaos`` hook).

    For every ``(request, attempt)`` pair one seeded draw decides whether
    the attempt is poisoned (probability ``rate``) and with which fault
    kind.  The decision depends only on the request's seed and the attempt
    number — never on wall time or thread identity — so a fixed service
    seed yields an identical fault schedule on every run.

    ``latency`` attempts fire sparsely (``latency_rate`` per call site)
    and delay rather than corrupt; the other kinds fire on every eligible
    call after a seeded warm-up, guaranteeing the attempt actually
    exercises the failure path.
    """

    def __init__(
        self,
        seed: int = 0,
        rate: float = 0.3,
        kinds: Sequence[str] = CHAOS_KINDS,
        latency_seconds: float = 0.002,
        latency_rate: float = 0.05,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        unknown = set(kinds) - set(CHAOS_KINDS)
        if unknown:
            raise ValueError(f"unknown chaos kinds: {sorted(unknown)}")
        self.seed = seed
        self.rate = rate
        self.kinds = tuple(kinds)
        self.latency_seconds = latency_seconds
        self.latency_rate = latency_rate
        self._sleep = sleep
        #: kind -> number of poisoned attempts scheduled (diagnostics).
        #: Updated from every worker thread, hence the lock.
        self.scheduled: Dict[str, int] = {}
        self._scheduled_lock = threading.Lock()

    def __call__(
        self, request: OptimizeRequest, attempt: int
    ) -> Optional[ChaosAttempt]:
        rng = random.Random(
            request.seed * 2_654_435_761 + attempt * 40_503 + self.seed
        )
        if rng.random() >= self.rate:
            return None
        kind = self.kinds[rng.randrange(len(self.kinds))]
        with self._scheduled_lock:
            self.scheduled[kind] = self.scheduled.get(kind, 0) + 1
        injector = FaultInjector(
            seed=rng.randrange(2**31),
            rate=self.latency_rate if kind == "latency" else 1.0,
            after=rng.randrange(16),
            latency_seconds=self.latency_seconds,
            sleep=self._sleep,
        )
        return ChaosAttempt(injector, kind)

    def __repr__(self) -> str:
        with self._scheduled_lock:
            scheduled = dict(self.scheduled)
        return (
            f"ChaosPlant(seed={self.seed}, rate={self.rate}, "
            f"kinds={self.kinds}, scheduled={scheduled})"
        )


# ---------------------------------------------------------------------------


def build_query_pool(
    seed: int,
    pool_size: int = 12,
    families: Sequence[str] = ("chain", "star", "clique"),
    min_relations: int = 5,
    max_relations: int = 9,
) -> List[Tuple[str, Query]]:
    """A deterministic mixed-family pool of queries, cycled by the soak."""
    if pool_size < 1:
        raise ValueError(f"pool_size must be >= 1, got {pool_size}")
    if min_relations > max_relations:
        raise ValueError("min_relations must be <= max_relations")
    rng = random.Random(seed)
    pool = []
    for index in range(pool_size):
        family = families[index % len(families)]
        n = rng.randint(min_relations, max_relations)
        qseed = rng.randrange(2**31)
        query = QueryGenerator(seed=qseed).generate(family, n)
        pool.append((f"{family}-{n}@{qseed}", query))
    return pool


@dataclass
class SoakRecord:
    """The compact per-request outcome the soak keeps (plans are validated
    and compared eagerly, then dropped, so memory stays flat)."""

    request_id: int
    pool_key: str
    status: str
    rung: str = ""
    degraded: bool = False
    attempts: int = 0
    retries: int = 0
    breaker_waits: int = 0
    injected: int = 0
    plan_sexpr: str = ""
    cost_repr: str = ""
    valid: bool = False
    error: Optional[str] = None


@dataclass
class SoakReport:
    """Everything one soak run observed, JSON-ready."""

    seconds: float
    seed: int
    rate: float
    workers: int
    submitted: int = 0
    accepted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    timeouts: int = 0
    invalid_plans: int = 0
    replay_checked: int = 0
    replay_mismatches: int = 0
    degraded_responses: int = 0
    unhandled_worker_errors: int = 0
    retries: int = 0
    breaker_trips: int = 0
    injected_faults: int = 0
    scheduled_chaos: Dict[str, int] = field(default_factory=dict)
    rung_histogram: Dict[str, int] = field(default_factory=dict)
    breaker_trace: List[str] = field(default_factory=list)
    breakers: Dict[str, Dict[str, object]] = field(default_factory=dict)
    plan_cache: Optional[Dict[str, object]] = None
    violations: List[str] = field(default_factory=list)
    #: Per-phase span duration summaries, populated when the soak ran with
    #: a tracing-armed :class:`~repro.telemetry.Telemetry` bundle.
    span_summary: Dict[str, Dict[str, Dict[str, float]]] = field(
        default_factory=dict
    )

    @property
    def passed(self) -> bool:
        return not self.violations

    def as_dict(self) -> Dict[str, object]:
        failures = service_failure_counts(
            timeouts=self.timeouts,
            errors=self.failed,
            degraded=self.degraded_responses,
            retries=self.retries,
            breaker_trips=self.breaker_trips,
        )
        return {
            "passed": self.passed,
            "config": {
                "seconds": self.seconds,
                "seed": self.seed,
                "rate": self.rate,
                "workers": self.workers,
            },
            "requests": {
                "submitted": self.submitted,
                "accepted": self.accepted,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
                "timeouts": self.timeouts,
            },
            "failures": failures.as_dict(),
            "validation": {
                "invalid_plans": self.invalid_plans,
                "replay_checked": self.replay_checked,
                "replay_mismatches": self.replay_mismatches,
                "degraded_responses": self.degraded_responses,
                "unhandled_worker_errors": self.unhandled_worker_errors,
            },
            "chaos": {
                "scheduled": dict(self.scheduled_chaos),
                "injected_faults": self.injected_faults,
            },
            "rung_histogram": dict(self.rung_histogram),
            "breaker_trace": list(self.breaker_trace),
            "breakers": dict(self.breakers),
            "plan_cache": self.plan_cache,
            "violations": list(self.violations),
            "span_summary": dict(self.span_summary),
        }

    def describe(self) -> str:
        lines = [
            f"soak {'PASSED' if self.passed else 'FAILED'}: "
            f"{self.seconds:.0f}s, seed={self.seed}, rate={self.rate}, "
            f"workers={self.workers}",
            f"requests   : {self.submitted} submitted, {self.accepted} "
            f"accepted, {self.rejected} shed, {self.completed} completed, "
            f"{self.failed} failed, {self.timeouts} timeouts",
            f"chaos      : {self.injected_faults} faults injected "
            f"({self.scheduled_chaos}), {self.retries} retries, "
            f"{self.breaker_trips} breaker trips",
            f"validation : {self.invalid_plans} invalid plans, "
            f"{self.replay_mismatches}/{self.replay_checked} replay "
            f"mismatches, {self.degraded_responses} degraded, "
            f"{self.unhandled_worker_errors} unhandled worker errors",
            f"rungs      : {self.rung_histogram}",
        ]
        if self.breaker_trace:
            lines.append("breaker trace:")
            lines.extend(f"  {line}" for line in self.breaker_trace)
        if self.violations:
            lines.append("violations:")
            lines.extend(f"  {violation}" for violation in self.violations)
        return "\n".join(lines)


# ---------------------------------------------------------------------------


def _validate_response(record: SoakRecord, response, query: Query) -> None:
    """Eagerly validate one response's plan against its clean query."""
    record.status = response.status
    record.rung = response.rung
    record.degraded = response.degraded
    record.attempts = response.attempts
    record.retries = response.retries
    record.breaker_waits = response.breaker_waits
    record.injected = sum(response.injected.values())
    record.error = response.error
    if not response.ok:
        return
    try:
        check_finite(response.plan)
        validate_plan(response.plan, query)
    except Exception as error:  # record, never crash the soak
        record.valid = False
        record.error = f"invalid plan: {type(error).__name__}: {error}"
        return
    record.valid = True
    record.plan_sexpr = response.plan.sexpr()
    record.cost_repr = repr(response.cost)


def run_soak(
    seconds: float = 30.0,
    seed: int = 7,
    rate: float = 0.3,
    workers: int = 4,
    queue_capacity: int = 64,
    pool_size: int = 12,
    families: Sequence[str] = ("chain", "star", "clique"),
    min_relations: int = 5,
    max_relations: int = 9,
    replay: bool = True,
    max_requests: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    telemetry: Optional[Telemetry] = None,
) -> SoakReport:
    """Run the chaos soak and return its :class:`SoakReport`.

    ``max_requests`` additionally bounds the number of submissions (for
    fast tests); the wall-clock bound always applies.  ``telemetry`` arms
    the service's spans and metrics for the chaos run — the replay stays
    disarmed on purpose, so a passing soak also certifies that armed and
    disarmed optimization choose bit-identical plans.
    """
    from repro.context.plancache import PlanCache

    pool = build_query_pool(
        seed,
        pool_size=pool_size,
        families=families,
        min_relations=min_relations,
        max_relations=max_relations,
    )
    plant = ChaosPlant(seed=seed, rate=rate)
    service = OptimizationService(
        workers=workers,
        queue_capacity=queue_capacity,
        retry_policy=RetryPolicy(
            max_attempts=8, base_delay=0.005, max_delay=0.1
        ),
        breakers=BreakerBoard(failure_threshold=2, cooldown_seconds=0.1),
        plan_cache=PlanCache(256),
        chaos=plant,
        seed=seed,
        telemetry=telemetry,
    )
    report = SoakReport(seconds=seconds, seed=seed, rate=rate, workers=workers)
    records: List[SoakRecord] = []
    pending: "deque[Tuple[SoakRecord, object]]" = deque()

    def drain(block: bool) -> None:
        while pending:
            record, future = pending[0]
            if not block and not future.done():
                return
            pending.popleft()
            response = future.result()
            key = record.pool_key
            query = next(q for k, q in pool if k == key)
            _validate_response(record, response, query)
            records.append(record)

    started = time.perf_counter()
    index = 0
    with service:
        while time.perf_counter() - started < seconds:
            if max_requests is not None and index >= max_requests:
                break
            key, query = pool[index % len(pool)]
            report.submitted += 1
            try:
                future = service.submit(query, priority=index % 3)
            except ServiceOverloadError:
                report.rejected += 1
                drain(block=False)
                time.sleep(0.001)
            else:
                report.accepted += 1
                pending.append(
                    (SoakRecord(request_id=index, pool_key=key, status=""), future)
                )
            index += 1
            if len(pending) >= queue_capacity:
                drain(block=False)
            if progress is not None and index % 200 == 0:
                progress(
                    f"{time.perf_counter() - started:.0f}s: {index} submitted, "
                    f"{len(records)} completed"
                )
        drain(block=True)

    # -- aggregate ------------------------------------------------------
    health = service.healthz()
    report.completed = sum(1 for r in records if r.status == "ok")
    report.failed = sum(1 for r in records if r.status == "failed")
    report.timeouts = sum(1 for r in records if r.status == "timeout")
    report.invalid_plans = sum(
        1 for r in records if r.status == "ok" and not r.valid
    )
    report.degraded_responses = sum(1 for r in records if r.degraded)
    report.unhandled_worker_errors = health.unhandled_worker_errors
    report.retries = sum(r.retries for r in records)
    report.breaker_trips = health.breaker_trips
    report.injected_faults = sum(r.injected for r in records)
    report.scheduled_chaos = dict(plant.scheduled)
    report.rung_histogram = dict(health.rung_histogram)
    report.breaker_trace = service.breakers.trace()
    report.breakers = service.breakers.snapshot()
    report.plan_cache = health.plan_cache
    if telemetry is not None and telemetry.tracer is not None:
        report.span_summary = summarize_spans(
            telemetry.tracer.finished_spans()
        )

    # -- replay: single-threaded, chaos disarmed, bit-identical ---------
    if replay:
        clean: Dict[str, Tuple[str, str]] = {}
        for key, query in pool:
            result = ResilientOptimizer().optimize(query)
            clean[key] = (result.plan.sexpr(), repr(result.cost))
        for record in records:
            if record.status != "ok" or record.degraded or not record.valid:
                continue
            report.replay_checked += 1
            want_sexpr, want_cost = clean[record.pool_key]
            # Bit-exact by design: replay compares repr strings, not
            # floats — any epsilon would hide a determinism regression.
            if (
                record.plan_sexpr != want_sexpr
                or record.cost_repr != want_cost  # repro: disable=no-float-cost-eq
            ):
                report.replay_mismatches += 1
                if len(report.violations) < 20:
                    report.violations.append(
                        f"replay mismatch for request#{record.request_id} "
                        f"({record.pool_key}): got {record.plan_sexpr} "
                        f"@ {record.cost_repr}, want {want_sexpr} "
                        f"@ {want_cost}"
                    )

    # -- verdicts -------------------------------------------------------
    if report.failed:
        report.violations.append(
            f"{report.failed} accepted request(s) failed without a plan"
        )
        for record in records:
            if record.status == "failed" and len(report.violations) < 20:
                report.violations.append(
                    f"  request#{record.request_id} ({record.pool_key}): "
                    f"{record.error} after {record.attempts} attempt(s), "
                    f"{record.breaker_waits} breaker wait(s)"
                )
    if report.timeouts:
        report.violations.append(
            f"{report.timeouts} accepted request(s) timed out"
        )
    if report.invalid_plans:
        report.violations.append(
            f"{report.invalid_plans} returned plan(s) failed validation"
        )
    if report.unhandled_worker_errors:
        report.violations.append(
            f"{report.unhandled_worker_errors} unhandled worker exception(s)"
        )
    if health.workers_alive not in (0, workers):
        report.violations.append(
            f"only {health.workers_alive}/{workers} workers survived"
        )
    return report


# ---------------------------------------------------------------------------


@dataclass
class ShardedSoakReport:
    """Everything one sharded (``--shards``) soak run observed."""

    seconds: float
    seed: int
    rate: float
    shards: int
    workers_per_shard: int
    kills_requested: int = 0
    #: One entry per SIGKILL actually delivered: elapsed seconds, shard
    #: id, pid at kill time.
    kills: List[Dict[str, object]] = field(default_factory=list)
    submitted: int = 0
    accepted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    timeouts: int = 0
    #: Accepted requests whose future never resolved (the hard loss the
    #: kill-shards contract forbids).
    lost: int = 0
    invalid_plans: int = 0
    replay_checked: int = 0
    replay_mismatches: int = 0
    degraded_responses: int = 0
    injected_faults: int = 0
    failovers: int = 0
    respawns: int = 0
    fallback_served: int = 0
    wire_errors: int = 0
    rung_histogram: Dict[str, int] = field(default_factory=dict)
    #: Responses per serving shard (``None`` key = front-end fallback).
    shard_histogram: Dict[str, int] = field(default_factory=dict)
    cluster: Optional[Dict[str, object]] = None
    #: Durable-store verification section (``--store-dir`` runs only):
    #: per-segment recovery reports, corrupt-replay count, warm-vs-cold
    #: bit-identity and the per-fault-kind fail-open certification.
    store: Optional[Dict[str, object]] = None
    violations: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def as_dict(self) -> Dict[str, object]:
        return {
            "passed": self.passed,
            "config": {
                "seconds": self.seconds,
                "seed": self.seed,
                "rate": self.rate,
                "shards": self.shards,
                "workers_per_shard": self.workers_per_shard,
                "kills_requested": self.kills_requested,
            },
            "kills": list(self.kills),
            "requests": {
                "submitted": self.submitted,
                "accepted": self.accepted,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
                "timeouts": self.timeouts,
                "lost": self.lost,
            },
            "validation": {
                "invalid_plans": self.invalid_plans,
                "replay_checked": self.replay_checked,
                "replay_mismatches": self.replay_mismatches,
                "degraded_responses": self.degraded_responses,
            },
            "chaos": {"injected_faults": self.injected_faults},
            "resilience": {
                "failovers": self.failovers,
                "respawns": self.respawns,
                "fallback_served": self.fallback_served,
                "wire_errors": self.wire_errors,
            },
            "rung_histogram": dict(self.rung_histogram),
            "shard_histogram": dict(self.shard_histogram),
            "cluster": self.cluster,
            "store": self.store,
            "violations": list(self.violations),
        }

    def describe(self) -> str:
        lines = [
            f"sharded soak {'PASSED' if self.passed else 'FAILED'}: "
            f"{self.seconds:.0f}s, seed={self.seed}, rate={self.rate}, "
            f"{self.shards} shards x {self.workers_per_shard} workers, "
            f"{len(self.kills)}/{self.kills_requested} kills delivered",
            f"requests   : {self.submitted} submitted, {self.accepted} "
            f"accepted, {self.rejected} shed, {self.completed} completed, "
            f"{self.failed} failed, {self.timeouts} timeouts, "
            f"{self.lost} lost",
            f"resilience : {self.failovers} fail-overs, {self.respawns} "
            f"respawns, {self.fallback_served} fallback-served, "
            f"{self.wire_errors} wire errors",
            f"validation : {self.invalid_plans} invalid plans, "
            f"{self.replay_mismatches}/{self.replay_checked} replay "
            f"mismatches, {self.degraded_responses} degraded",
            f"rungs      : {self.rung_histogram}",
            f"shards     : {self.shard_histogram}",
        ]
        if self.store is not None:
            lines.append(
                f"store      : {self.store.get('entries', 0)} entries "
                f"recovered from {len(self.store.get('segments', ()))} "
                f"file(s), {self.store.get('corrupt_replays', 0)} corrupt "
                f"replays, {self.store.get('quarantined_records', 0)} "
                f"quarantined, {self.store.get('warm_l2_hits', 0)}/"
                f"{self.store.get('warm_checked', 0)} warm L2 hits "
                f"({self.store.get('warm_mismatches', 0)} mismatches), "
                f"fail-open certified for "
                f"{len(self.store.get('fail_open', ()))} fault kind(s)"
            )
        for kill in self.kills:
            lines.append(
                f"  kill @{kill['elapsed']:.1f}s: shard {kill['shard']} "
                f"(pid {kill['pid']})"
            )
        if self.violations:
            lines.append("violations:")
            lines.extend(f"  {violation}" for violation in self.violations)
        return "\n".join(lines)


def _store_has_a_complete_record(store_dir: str) -> bool:
    """True once any shard segment holds at least one decodeable entry.

    Kill-during-write holds its SIGKILLs behind this gate: killing a
    shard before anything reached disk would make the zero-corruption
    assertion vacuous (there would be nothing for recovery to protect).
    """
    from repro.context.store import DurableStore

    for path in sorted(glob.glob(os.path.join(store_dir, "shard-*.rpl"))):
        try:
            segment = DurableStore(path, writable=False, fsync=False)
        except (ReproError, OSError):  # repro: disable=no-silent-fallback
            continue  # mid-write segment poll; the next tick retries
        try:
            if segment.report.entries_replayed:
                return True
        finally:
            segment.close()
    return False


def run_sharded_soak(
    seconds: float = 30.0,
    seed: int = 7,
    rate: float = 0.3,
    shards: int = 3,
    workers_per_shard: int = 2,
    queue_capacity: int = 64,
    pool_size: int = 12,
    families: Sequence[str] = ("chain", "star", "clique"),
    min_relations: int = 5,
    max_relations: int = 9,
    kill_shards: int = 0,
    replay: bool = True,
    max_requests: Optional[int] = None,
    resolve_timeout: float = 120.0,
    store_dir: Optional[str] = None,
    kill_during_write: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    telemetry: Optional[Telemetry] = None,
) -> ShardedSoakReport:
    """Run the chaos soak against a :class:`ShardedService`.

    ``kill_shards`` schedules that many SIGKILLs of random live shards,
    evenly spaced over the run (seeded choice of victim).  The loss
    contract is absolute: every accepted request's future must resolve
    within ``resolve_timeout`` — to a validated plan or an honest typed
    failure — no matter how many shards died under it; anything else is
    recorded as *lost* and fails the run.

    ``store_dir`` gives every shard a durable L2 plan-store segment under
    that directory; after the run :func:`_verify_store` re-opens the
    segments through recovery and appends its verdicts to the report.
    ``kill_during_write`` additionally *requires* the crash path to have
    been productive: the recovered store must be non-empty and must
    produce warm L2 hits for the query pool (a vacuous pass is a fail).
    """
    from repro.service.sharded import ShardedService

    if kill_during_write and store_dir is None:
        raise ValueError("kill_during_write requires store_dir")
    if kill_during_write and kill_shards <= 0:
        raise ValueError("kill_during_write requires kill_shards > 0")

    pool = build_query_pool(
        seed,
        pool_size=pool_size,
        families=families,
        min_relations=min_relations,
        max_relations=max_relations,
    )
    report = ShardedSoakReport(
        seconds=seconds,
        seed=seed,
        rate=rate,
        shards=shards,
        workers_per_shard=workers_per_shard,
        kills_requested=kill_shards,
    )
    service = ShardedService(
        shards=shards,
        workers_per_shard=workers_per_shard,
        shard_queue_capacity=queue_capacity,
        seed=seed,
        chaos_rate=rate,
        store_dir=store_dir,
        telemetry=telemetry,
    )
    records: List[SoakRecord] = []
    shard_counts: Dict[str, int] = {}
    pending: "deque[Tuple[SoakRecord, object]]" = deque()

    def drain(block: bool) -> None:
        while pending:
            record, future = pending[0]
            if not block and not future.done():
                return
            pending.popleft()
            try:
                response = future.result(timeout=resolve_timeout)
            except FuturesTimeoutError:
                # The hard failure mode kill-shards exists to catch: an
                # accepted request nobody will ever answer.
                report.lost += 1
                record.status = "lost"
                record.error = (
                    f"future unresolved after {resolve_timeout:.0f}s"
                )
                records.append(record)
                continue
            except Exception as error:
                # Honest typed failure (e.g. shutdown strands): resolved,
                # not lost — but still counted against the run.
                record.status = "failed"
                record.error = f"{type(error).__name__}: {error}"
                records.append(record)
                continue
            query = next(q for k, q in pool if k == record.pool_key)
            _validate_response(record, response, query)
            shard_key = (
                "fallback" if response.shard is None else str(response.shard)
            )
            shard_counts[shard_key] = shard_counts.get(shard_key, 0) + 1
            records.append(record)

    # Evenly spaced kill times; the victim draw is seeded, so a given
    # seed produces one fixed kill schedule (modulo which shards are
    # alive when each timer fires).
    kill_rng = random.Random(seed * 9_176 + 4_242)
    kill_times = [
        (index + 1) * seconds / (kill_shards + 1)
        for index in range(kill_shards)
    ]

    started = time.perf_counter()
    index = 0
    with service:
        while time.perf_counter() - started < seconds:
            if max_requests is not None and index >= max_requests:
                break
            elapsed = time.perf_counter() - started
            while kill_times and elapsed >= kill_times[0]:
                if kill_during_write and not _store_has_a_complete_record(
                    store_dir
                ):
                    break  # hold the kill until a shard has appended
                kill_times.pop(0)
                victims = [
                    status.shard_id
                    for status in service.healthz().shards
                    if status.alive
                ]
                if not victims:
                    continue  # everything already dead; nothing to kill
                victim = victims[kill_rng.randrange(len(victims))]
                pid = service.kill_shard(victim)
                report.kills.append(
                    {"elapsed": elapsed, "shard": victim, "pid": pid}
                )
                if progress is not None:
                    progress(
                        f"{elapsed:.1f}s: SIGKILL shard {victim} (pid {pid})"
                    )
            key, query = pool[index % len(pool)]
            report.submitted += 1
            try:
                future = service.submit(query, priority=index % 3)
            except ServiceOverloadError:
                report.rejected += 1
                drain(block=False)
                time.sleep(0.001)
            else:
                report.accepted += 1
                pending.append(
                    (
                        SoakRecord(request_id=index, pool_key=key, status=""),
                        future,
                    )
                )
            index += 1
            if len(pending) >= queue_capacity:
                drain(block=False)
            if progress is not None and index % 200 == 0:
                progress(
                    f"{time.perf_counter() - started:.0f}s: {index} "
                    f"submitted, {len(records)} completed"
                )
        # Deliver any kills the submission loop didn't reach (short
        # --max-requests runs), so smoke runs still exercise the crash
        # path the number of times they asked for.
        for _ in list(kill_times):
            kill_times.pop(0)
            if kill_during_write:
                # Give in-flight appends a moment to land so the kill
                # has something on disk to threaten.
                gate_deadline = time.perf_counter() + 5.0
                while (
                    not _store_has_a_complete_record(store_dir)
                    and time.perf_counter() < gate_deadline
                ):
                    time.sleep(0.05)
            victims = [
                status.shard_id
                for status in service.healthz().shards
                if status.alive
            ]
            if not victims:
                continue
            victim = victims[kill_rng.randrange(len(victims))]
            pid = service.kill_shard(victim)
            report.kills.append(
                {
                    "elapsed": time.perf_counter() - started,
                    "shard": victim,
                    "pid": pid,
                }
            )
        drain(block=True)
        health = service.healthz()
        # Kills delivered after the last request race the supervisor's
        # monitor tick; give it a moment to notice the deaths before
        # the snapshot, or the respawn count reads as a (false) miss.
        if (
            report.kills
            and health.respawns == 0
            and health.fallback_served == 0
        ):
            settle_deadline = time.perf_counter() + 5.0
            while time.perf_counter() < settle_deadline:
                time.sleep(0.05)
                health = service.healthz()
                if health.respawns or health.fallback_served:
                    break

    # -- aggregate ------------------------------------------------------
    report.completed = sum(1 for r in records if r.status == "ok")
    report.failed = sum(1 for r in records if r.status == "failed")
    report.timeouts = sum(1 for r in records if r.status == "timeout")
    report.invalid_plans = sum(
        1 for r in records if r.status == "ok" and not r.valid
    )
    report.degraded_responses = sum(1 for r in records if r.degraded)
    report.injected_faults = sum(r.injected for r in records)
    report.failovers = health.failovers
    report.respawns = health.respawns
    report.fallback_served = health.fallback_served
    report.wire_errors = health.wire_errors
    for record in records:
        if record.rung:
            report.rung_histogram[record.rung] = (
                report.rung_histogram.get(record.rung, 0) + 1
            )
    report.shard_histogram = dict(sorted(shard_counts.items()))
    report.cluster = health.as_dict()

    # -- replay: single-process, chaos disarmed, bit-identical ----------
    if replay:
        clean: Dict[str, Tuple[str, str]] = {}
        for key, query in pool:
            result = ResilientOptimizer().optimize(query)
            clean[key] = (result.plan.sexpr(), repr(result.cost))
        for record in records:
            if record.status != "ok" or record.degraded or not record.valid:
                continue
            report.replay_checked += 1
            want_sexpr, want_cost = clean[record.pool_key]
            # Bit-exact on purpose (see run_soak): any epsilon would hide
            # a routing- or fail-over-dependent determinism regression.
            if (
                record.plan_sexpr != want_sexpr
                or record.cost_repr != want_cost  # repro: disable=no-float-cost-eq
            ):
                report.replay_mismatches += 1
                if len(report.violations) < 20:
                    report.violations.append(
                        f"replay mismatch for request#{record.request_id} "
                        f"({record.pool_key}): got {record.plan_sexpr} "
                        f"@ {record.cost_repr}, want {want_sexpr} "
                        f"@ {want_cost}"
                    )

    # -- verdicts -------------------------------------------------------
    if report.lost:
        report.violations.append(
            f"{report.lost} accepted request(s) never resolved (lost)"
        )
    if report.failed:
        report.violations.append(
            f"{report.failed} accepted request(s) failed without a plan"
        )
        for record in records:
            if record.status == "failed" and len(report.violations) < 20:
                report.violations.append(
                    f"  request#{record.request_id} ({record.pool_key}): "
                    f"{record.error}"
                )
    if report.timeouts:
        report.violations.append(
            f"{report.timeouts} accepted request(s) timed out"
        )
    if report.invalid_plans:
        report.violations.append(
            f"{report.invalid_plans} returned plan(s) failed validation"
        )
    if len(report.kills) < kill_shards:
        report.violations.append(
            f"only {len(report.kills)}/{kill_shards} scheduled shard kills "
            "were delivered"
        )
    if report.kills and report.respawns == 0 and report.fallback_served == 0:
        report.violations.append(
            "shards were killed but neither a respawn nor a fallback serve "
            "is visible in cluster healthz"
        )

    # -- durable store: recovery, warm bit-identity, fail-open ----------
    if store_dir is not None:
        _verify_store(report, store_dir, pool, kill_during_write, progress)
    return report


def _verify_store(
    report: ShardedSoakReport,
    store_dir: str,
    pool: Sequence[Tuple[str, Query]],
    kill_during_write: bool,
    progress: Optional[Callable[[str], None]] = None,
) -> None:
    """Post-run durable-store contract checks (``--store-dir`` runs).

    Three assertions, matching the crash-safe cache contract:

    * **zero corrupt replays** — every segment (and the snapshot, if
      present) re-opens through :class:`DurableStore` recovery, which
      truncates torn tails and quarantines CRC mismatches; every record
      that recovery *did* replay must then decode cleanly.  A record
      that passes the CRC but fails decode is corruption that escaped
      the frame check and fails the run.
    * **warm hits bit-identical to cold** — a fresh
      :class:`TieredPlanCache` warmed from the merged recovered records
      must serve every pool query with exactly the plan (same
      s-expression, same cost ``repr``) a cache-less optimizer computes.
    * **fail-open certification** — for every store fault kind, an
      optimizer over a fault-armed store produces plans bit-identical to
      the same setup with the injector disarmed: store faults degrade
      durability, never plan choice.
    """
    from repro.context.store import DurableStore, TieredPlanCache, decode_entry
    from repro.resilience.faults import STORE_FAULT_KINDS, StoreFaultInjector

    summary: Dict[str, object] = {
        "store_dir": store_dir,
        "kill_during_write": kill_during_write,
        "segments": [],
    }
    snapshot_path = os.path.join(store_dir, "snapshot.rpl")
    paths = sorted(glob.glob(os.path.join(store_dir, "shard-*.rpl")))
    if os.path.exists(snapshot_path):
        paths.insert(0, snapshot_path)
    merged: Dict[str, Dict[str, object]] = {}
    corrupt_replays = 0
    quarantined = 0
    torn_tails = 0
    for path in paths:
        store = DurableStore(path, writable=False)
        undecodable = 0
        for key, record in store.records.items():
            try:
                decode_entry(record)
            except ReproError as error:
                undecodable += 1
                corrupt_replays += 1
                if len(report.violations) < 40:
                    report.violations.append(
                        f"store segment {os.path.basename(path)} replayed "
                        f"a corrupt record for {key!r}: {error}"
                    )
                continue
            merged[key] = record
        quarantined += store.report.quarantined_records
        torn_tails += 1 if store.report.torn_tail else 0
        summary["segments"].append(
            {
                "path": os.path.basename(path),
                "entries": len(store.records),
                "undecodable": undecodable,
                "recovery": store.report.as_dict(),
            }
        )
        store.close()
    summary["entries"] = len(merged)
    summary["corrupt_replays"] = corrupt_replays
    summary["quarantined_records"] = quarantined
    summary["torn_tails"] = torn_tails
    if corrupt_replays:
        report.violations.append(
            f"{corrupt_replays} corrupt store record(s) survived recovery "
            "and would have been replayed"
        )
    if kill_during_write and not merged:
        report.violations.append(
            "kill-during-write soak recovered zero store entries: the "
            "crash-during-append path was never exercised"
        )

    # Warm-vs-cold bit-identity over the merged recovered state.  The
    # warm optimizer is built exactly as the serving tier builds its own
    # (ResilientOptimizer over the cache), so cache keys line up.
    warm_cache = TieredPlanCache(
        capacity=max(64, 2 * len(merged)), warm_records=merged
    )
    warm_optimizer = ResilientOptimizer(plan_cache=warm_cache)
    cold_optimizer = ResilientOptimizer()
    warm_mismatches = 0
    for key, query in pool:
        warm = warm_optimizer.optimize(query)
        cold = cold_optimizer.optimize(query)
        if (
            warm.plan.sexpr() != cold.plan.sexpr()
            or repr(warm.cost) != repr(cold.cost)  # repro: disable=no-float-cost-eq
        ):
            warm_mismatches += 1
            if len(report.violations) < 40:
                report.violations.append(
                    f"warm store hit for pool query {key!r} is not "
                    f"bit-identical to cold optimization: got "
                    f"{warm.plan.sexpr()} @ {warm.cost!r}, want "
                    f"{cold.plan.sexpr()} @ {cold.cost!r}"
                )
    summary["warm_checked"] = len(pool)
    summary["warm_l2_hits"] = warm_cache.l2_hits
    summary["warm_mismatches"] = warm_mismatches
    if warm_mismatches:
        report.violations.append(
            f"{warm_mismatches} warm store hit(s) diverged from cold "
            "optimization"
        )
    if kill_during_write and merged and warm_cache.l2_hits == 0:
        report.violations.append(
            "recovered store entries never produced a warm L2 hit for "
            "the query pool: the warm-start path went unexercised"
        )
    warm_cache.close()

    # Fail-open certification: per fault kind, a fault-armed store must
    # not change plan choice relative to the identical disarmed setup.
    fail_open: Dict[str, Dict[str, object]] = {}
    cert_pool = list(pool)[: min(3, len(pool))]
    for offset, kind in enumerate(STORE_FAULT_KINDS):
        kind_report: Dict[str, object] = {"injected": 0, "mismatches": 0}
        baseline: List[Tuple[str, str]] = []
        for armed in (False, True):
            label = "armed" if armed else "disarmed"
            path = os.path.join(store_dir, f".failopen-{kind}-{label}.rpl")
            injector = StoreFaultInjector(
                seed=report.seed * 131 + offset, rate=1.0, kind=kind
            )
            cache = TieredPlanCache.open(path, fault_injector=injector)
            if armed:
                injector.arm()
            optimizer = ResilientOptimizer(plan_cache=cache)
            plans = [
                (result.plan.sexpr(), repr(result.cost))
                for result in (
                    optimizer.optimize(query) for _, query in cert_pool
                )
            ]
            cache.close()
            injector.disarm()
            for leftover in (path, path + ".quarantine", path + ".stale"):
                if os.path.exists(leftover):
                    os.unlink(leftover)
            if not armed:
                baseline = plans
                continue
            kind_report["injected"] = injector.total_injected
            mismatches = sum(
                1 for got, want in zip(plans, baseline) if got != want
            )
            kind_report["mismatches"] = mismatches
            if mismatches:
                report.violations.append(
                    f"store fault kind {kind!r}: armed run produced "
                    f"{mismatches} plan(s) not bit-identical to the "
                    "disarmed run (fail-open broken)"
                )
            if injector.total_injected == 0:
                report.violations.append(
                    f"store fault kind {kind!r}: armed injector never "
                    "fired, certification is vacuous"
                )
            kind_report["certified"] = (
                mismatches == 0 and injector.total_injected > 0
            )
        fail_open[kind] = kind_report
    summary["fail_open"] = fail_open
    report.store = summary
    if progress is not None:
        progress(
            f"store: {len(merged)} entries recovered from {len(paths)} "
            f"file(s), {corrupt_replays} corrupt replays, "
            f"{summary['warm_l2_hits']} warm L2 hits"
        )


# ---------------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.soak",
        description="Chaos soak for the concurrent optimization service: "
        "mixed workload, seeded fault injection, validation and replay "
        "determinism checks.",
    )
    parser.add_argument("--seconds", type=float, default=30.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--rate",
        type=float,
        default=0.3,
        help="probability an optimization attempt is poisoned",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="run against a ShardedService with N shard processes "
        "(0 = single-process service)",
    )
    parser.add_argument(
        "--workers-per-shard",
        type=int,
        default=2,
        help="worker threads inside each shard (sharded mode only)",
    )
    parser.add_argument(
        "--kill-shards",
        type=int,
        default=0,
        metavar="K",
        help="SIGKILL K random live shards, evenly spaced over the run "
        "(requires --shards)",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="arm the durable L2 plan store: each shard appends to its "
        "own segment under DIR and the post-run store verification runs "
        "(requires --shards)",
    )
    parser.add_argument(
        "--kill-during-write",
        action="store_true",
        help="crash-safe cache soak: SIGKILL shards while they append to "
        "the durable store, then assert zero corrupt replays, warm hits "
        "bit-identical to cold, and per-fault-kind fail-open (implies "
        "--store-dir under a temp dir and --kill-shards N if unset; "
        "requires --shards)",
    )
    parser.add_argument("--queue", type=int, default=64, metavar="CAPACITY")
    parser.add_argument("--pool", type=int, default=12, metavar="QUERIES")
    parser.add_argument(
        "--families", default="chain,star,clique", metavar="F1,F2,..."
    )
    parser.add_argument("--min-relations", type=int, default=5)
    parser.add_argument("--max-relations", type=int, default=9)
    parser.add_argument(
        "--max-requests",
        type=int,
        default=None,
        help="additional cap on submissions (for quick smoke runs)",
    )
    parser.add_argument(
        "--no-replay",
        action="store_true",
        help="skip the single-threaded bit-identical replay check",
    )
    parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="also write the full report as JSON",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="arm telemetry and write per-request span trees as JSONL",
    )
    parser.add_argument("--quiet", action="store_true")
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    progress = None if args.quiet else lambda line: print(line, flush=True)
    telemetry = None
    sink = None
    if args.trace is not None:
        sink = TraceSink(args.trace)
        telemetry = Telemetry(tracer=Tracer(sink=sink))
    if args.kill_shards and not args.shards:
        print("--kill-shards requires --shards N", file=sys.stderr)
        return 2
    if (args.store_dir or args.kill_during_write) and not args.shards:
        print(
            "--store-dir/--kill-during-write require --shards N",
            file=sys.stderr,
        )
        return 2
    store_dir = args.store_dir
    if args.kill_during_write:
        if args.kill_shards == 0:
            args.kill_shards = args.shards
        if store_dir is None:
            store_dir = tempfile.mkdtemp(prefix="repro-soak-store-")
            if progress is not None:
                progress(f"store dir (temp): {store_dir}")
    if args.shards:
        from repro.telemetry import MetricRegistry

        # Sharded mode always carries a registry so the report's cluster
        # snapshot includes the repro_shard_* series.
        if telemetry is None:
            telemetry = Telemetry(registry=MetricRegistry(enabled=True))
        sharded_report = run_sharded_soak(
            seconds=args.seconds,
            seed=args.seed,
            rate=args.rate,
            shards=args.shards,
            workers_per_shard=args.workers_per_shard,
            queue_capacity=args.queue,
            pool_size=args.pool,
            families=tuple(args.families.split(",")),
            min_relations=args.min_relations,
            max_relations=args.max_relations,
            kill_shards=args.kill_shards,
            replay=not args.no_replay,
            max_requests=args.max_requests,
            store_dir=store_dir,
            kill_during_write=args.kill_during_write,
            progress=progress,
            telemetry=telemetry,
        )
        if sink is not None:
            sink.close()
        if args.json is not None:
            atomic_write_text(
                str(args.json),
                json.dumps(sharded_report.as_dict(), indent=2),
            )
        print(sharded_report.describe())
        return 0 if sharded_report.passed else 1
    report = run_soak(
        seconds=args.seconds,
        seed=args.seed,
        rate=args.rate,
        workers=args.workers,
        queue_capacity=args.queue,
        pool_size=args.pool,
        families=tuple(args.families.split(",")),
        min_relations=args.min_relations,
        max_relations=args.max_relations,
        replay=not args.no_replay,
        max_requests=args.max_requests,
        progress=progress,
        telemetry=telemetry,
    )
    if sink is not None:
        sink.close()
        print(f"wrote {sink.written} trace(s) to {sink.path}", flush=True)
    if args.json is not None:
        atomic_write_text(str(args.json), json.dumps(report.as_dict(), indent=2))
    print(report.describe())
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())
