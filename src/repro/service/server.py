"""The fault-tolerant concurrent optimization service.

:class:`OptimizationService` turns the single-shot
:class:`~repro.resilience.ResilientOptimizer` stack into a serving layer:
a pool of worker threads pulls :class:`OptimizeRequest` s from a bounded
priority :class:`~repro.service.queue.AdmissionQueue` and answers each
with an :class:`OptimizeResponse` carrying a **validated** plan plus the
full story of how it was obtained (attempts, retries, injected faults,
degradation rung, queue wait).

The request path layers four defences, outermost first:

1. **admission control** — a full queue sheds load deterministically
   (:class:`~repro.errors.ServiceOverloadError` at submit time, carrying
   the queue depth) instead of buffering unboundedly;
2. **circuit breakers** — per-component (cost model, catalog) state
   machines fast-fail attempts while a component is sick, so a poisoned
   dependency costs microseconds, not a full enumeration timeout per
   request;
3. **retries with seeded backoff** — transient failures (injected faults,
   lost statistics, open circuits) are retried with exponential backoff
   and per-request seeded jitter; permanent conditions (budget
   exhaustion) are *not* retried — they already produced the best
   validated plan the degradation ladder could buy;
4. **the degradation ladder** — every attempt runs through
   :class:`ResilientOptimizer`, so even the last retry returns a
   validated plan whenever one is constructible.

Determinism contract: a request's *plan* is a function of its query and
its seed only.  Concurrency, fault injection, breakers and backoff decide
*when* and *how often* attempts run — never which plan a successful
attempt returns — so a request stream replayed single-threaded with
chaos disarmed produces bit-identical plans (the chaos soak asserts
exactly this).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence

from repro.context.plancache import PlanCache
from repro.core.advancements import AdvancementConfig
from repro.cost.haas import HaasCostModel
from repro.cost.model import CostModel
from repro.errors import (
    CircuitOpenError,
    ReproError,
    ResilienceError,
    RetriesExhaustedError,
    ServiceShutdownError,
)
from repro.plans.join_tree import JoinTree
from repro.query import Query
from repro.resilience.budget import Budget
from repro.resilience.optimizer import ResilientOptimizer, ResilientResult
from repro.service.breaker import BreakerBoard
from repro.service.health import ServiceHealth
from repro.service.queue import DEFAULT_QUEUE_CAPACITY, AdmissionQueue
from repro.service.retry import RetryPolicy
from repro.telemetry import NULL_SPAN, Telemetry
from repro.telemetry.adapters import (
    publish_optimization_stats,
    publish_service_health,
)

__all__ = [
    "AttemptChaos",
    "BREAKER_COMPONENTS",
    "OptimizationService",
    "OptimizeRequest",
    "OptimizeResponse",
]

#: Components the service guards with circuit breakers.
BREAKER_COMPONENTS = ("cost_model", "catalog")


class AttemptChaos(Protocol):
    """What a chaos hook returns for one (request, attempt) pair.

    The service stays ignorant of *how* faults are injected; it only needs
    to wrap the attempt's cost-model factory and query, arm the faults for
    the duration of the attempt (context manager), and read which
    components actually faulted afterwards (:attr:`injected`).
    ``repro.service.soak`` implements this with a seeded
    :class:`~repro.resilience.FaultInjector` per attempt.
    """

    injected: Dict[str, int]

    def cost_model_factory(
        self, base: Callable[[], CostModel]
    ) -> Callable[[], CostModel]: ...

    def wrap_query(self, query: Query) -> Query: ...

    def __enter__(self) -> "AttemptChaos": ...

    def __exit__(self, exc_type, exc, tb) -> bool: ...


@dataclass(frozen=True)
class OptimizeRequest:
    """One unit of admission: a query plus serving metadata.

    ``priority`` orders the queue (higher first); ``deadline_seconds`` is
    the end-to-end allowance from submission — queue wait included — and
    also bounds each optimization attempt's budget.  ``seed`` drives every
    per-request random decision (retry jitter, chaos schedule); the
    service derives it deterministically from its own seed and the
    request id when the caller leaves it unset.  ``topk > 1`` asks the
    optimizer to retain that many ranked plans, enabling the
    breaker-suspect rank-2 fallback (see :meth:`OptimizationService.submit`).
    """

    query: Query
    request_id: int
    priority: int = 0
    deadline_seconds: Optional[float] = None
    seed: int = 0
    topk: int = 1

    def describe(self) -> str:
        return (
            f"request#{self.request_id}[{self.query.describe()}, "
            f"prio={self.priority}]"
        )


@dataclass
class OptimizeResponse:
    """The service's answer: a validated plan plus serving metadata."""

    request_id: int
    status: str  # "ok" | "failed" | "timeout"
    plan: Optional[JoinTree] = None
    cost: Optional[float] = None
    rung: str = ""
    degraded: bool = False
    attempts: int = 0
    retries: int = 0
    breaker_waits: int = 0
    queue_wait_seconds: float = 0.0
    service_seconds: float = 0.0
    #: Fault point -> injected fault count, summed over all attempts.
    injected: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None
    result: Optional[ResilientResult] = None
    #: Shard that served the request (sharded deployments only); ``None``
    #: for single-process service responses and front-end fallbacks.
    shard: Optional[int] = None
    #: Rank of the served plan within the request's top-k stream (1-based).
    #: Always 1 unless the breaker-suspect fallback re-served rank 2.
    rank: int = 1
    #: Costs of every retained ranked plan (rank 1 first); empty for
    #: single-best requests.
    ranked_costs: tuple = ()

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def as_dict(self) -> Dict[str, object]:
        return {
            "request_id": self.request_id,
            "status": self.status,
            "cost": self.cost,
            "rung": self.rung,
            "degraded": self.degraded,
            "attempts": self.attempts,
            "retries": self.retries,
            "breaker_waits": self.breaker_waits,
            "queue_wait_seconds": self.queue_wait_seconds,
            "service_seconds": self.service_seconds,
            "injected": dict(self.injected),
            "error": self.error,
            "shard": self.shard,
            "rank": self.rank,
            "ranked_costs": list(self.ranked_costs),
        }


class _Ticket:
    """A queued request plus its completion future and admission stamp."""

    __slots__ = ("request", "future", "admitted_at")

    def __init__(self, request: OptimizeRequest, admitted_at: float):
        self.request = request
        self.future: "Future[OptimizeResponse]" = Future()
        self.admitted_at = admitted_at


class OptimizationService:
    """A thread-pool optimization service over the resilience stack.

    Parameters
    ----------
    enumerator / pruning / cost_model_factory / config / heuristic:
        The optimizer configuration, as for
        :class:`~repro.core.optimizer.Optimizer`.
    workers:
        Worker-thread count.
    queue_capacity:
        Admission bound; a full queue rejects (never blocks).
    retry_policy:
        Backoff schedule and attempt cap for transient failures.
    breakers:
        The per-component breaker board; defaults to one with stock
        settings on ``clock``.
    plan_cache:
        Shared cross-query cache (thread-safe); chaos-armed attempts
        bypass it so injected faults can never poison it.  Pass ``None``
        inside ``plan_cache=PlanCache(0)`` semantics to disable.
    store_path / store_snapshot_paths / store_admission:
        Durable-tier convenience: when ``store_path`` is given (and no
        explicit ``plan_cache``), the service warms on start from a
        :class:`~repro.context.store.TieredPlanCache` opened on that
        segment (plus any read-only snapshots) and persists admitted
        entries to it.  Store faults fail open to L1-only serving; the
        store state shows up under ``plan_cache.l2`` in :meth:`healthz`.
    budget_factory:
        Default per-attempt budget for requests without a deadline.
    chaos:
        Optional hook ``(request, attempt) -> AttemptChaos | None`` used
        by the soak driver to poison individual attempts.
    seed:
        Root seed from which per-request seeds are derived.
    clock / sleep:
        Injectable monotonic clock and sleep (virtual-time tests use
        :class:`~repro.service.breaker.ManualClock` for both).
    breaker_wait_limit:
        Upper bound on breaker fast-fail waits per request; past it the
        attempt proceeds ungated (a liveness backstop — breakers shed
        load, they never starve a request out of an answer; waits do not
        consume retry attempts).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` bundle.  Armed, each
        served request records a ``request`` span with per-attempt child
        spans (breaker refusals and trips become span events), response
        outcomes and latencies land in the metric registry, every
        completed response's optimizer counters are accumulated into it,
        and :meth:`healthz` embeds a registry snapshot.
    """

    def __init__(
        self,
        enumerator: str = "mincut_conservative",
        pruning: str = "apcbi",
        cost_model_factory: Callable[[], CostModel] = HaasCostModel,
        config: Optional[AdvancementConfig] = None,
        heuristic: str = "goo",
        workers: int = 4,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        retry_policy: Optional[RetryPolicy] = None,
        breakers: Optional[BreakerBoard] = None,
        plan_cache: Optional[PlanCache] = None,
        store_path: Optional[str] = None,
        store_snapshot_paths: Sequence[str] = (),
        store_admission=None,
        budget_factory: Optional[Callable[[], Budget]] = None,
        chaos: Optional[
            Callable[[OptimizeRequest, int], Optional[AttemptChaos]]
        ] = None,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        breaker_wait_limit: int = 64,
        telemetry: Optional[Telemetry] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if breaker_wait_limit < 1:
            raise ValueError(
                f"breaker_wait_limit must be >= 1, got {breaker_wait_limit}"
            )
        self._optimizer_kwargs = dict(
            enumerator=enumerator,
            pruning=pruning,
            config=config,
            heuristic=heuristic,
            telemetry=telemetry,
        )
        self._telemetry = telemetry
        self._cost_model_factory = cost_model_factory
        self._queue: AdmissionQueue[_Ticket] = AdmissionQueue(queue_capacity)
        self._retry = retry_policy if retry_policy is not None else RetryPolicy()
        self._breakers = (
            breakers if breakers is not None else BreakerBoard(clock=clock)
        )
        self._owns_store = False
        if plan_cache is None and store_path is not None:
            # Warm-on-start: recovery happens here, before any worker
            # serves, so the first request already sees every entry the
            # previous incarnation persisted.  Opening fails open — a
            # damaged or unwritable store degrades to a plain L1 cache.
            from repro.context.store import TieredPlanCache

            plan_cache = TieredPlanCache.open(
                store_path,
                snapshot_paths=store_snapshot_paths,
                admission=store_admission,
                telemetry=telemetry,
            )
            self._owns_store = True
        self._plan_cache = plan_cache
        self._budget_factory = budget_factory
        self._chaos = chaos
        self.seed = seed
        self._clock = clock
        self._sleep = sleep
        self._breaker_wait_limit = breaker_wait_limit
        self._n_workers = workers
        self._threads: List[threading.Thread] = []
        self._state = "stopped"  # "stopped" | "running" | "draining"
        self._lock = threading.Lock()
        self._next_request_id = 0
        # Counters, all guarded by _lock.
        self.accepted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.timeouts = 0
        self.cancelled = 0
        self.retries = 0
        self.unhandled_worker_errors = 0
        self.rung_histogram: Dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "OptimizationService":
        with self._lock:
            # One-shot lifecycle: the admission queue's close is final, so
            # a shut-down service cannot be resurrected — build a new one.
            if self._state != "stopped" or self._threads:
                raise ServiceShutdownError(
                    f"cannot start a service in state {self._state!r}"
                    + ("; services are one-shot" if self._threads else "")
                )
            self._state = "running"
        for index in range(self._n_workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-optimizer-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> bool:
        """Stop the service; ``True`` iff every worker actually exited.

        ``drain=True`` finishes every queued and in-flight request before
        the workers exit; ``drain=False`` fails pending (not-yet-started)
        requests with :class:`ServiceShutdownError` and only lets
        in-flight work finish.  ``timeout`` bounds the *total* wait across
        all worker joins; on ``False`` the service stays ``draining``
        (never falsely ``stopped``) and ``shutdown`` may be called again
        to keep waiting.
        """
        with self._lock:
            if self._state == "stopped":
                return True
            self._state = "draining"
        self._queue.close()
        if not drain:
            for ticket in self._queue.drain_pending():
                # A caller may have cancelled the future while it was
                # queued; claiming it first keeps one cancelled ticket
                # from aborting the whole shutdown sequence.
                if not ticket.future.set_running_or_notify_cancel():
                    with self._lock:
                        self.cancelled += 1
                    continue
                ticket.future.set_exception(
                    ServiceShutdownError(
                        f"{ticket.request.describe()} cancelled by "
                        "non-draining shutdown"
                    )
                )
        # Joins happen in real time whatever clock the breakers use, and
        # the deadline is shared: N workers never wait N * timeout.
        join_deadline = None if timeout is None else time.monotonic() + timeout
        for thread in self._threads:
            remaining = (
                None
                if join_deadline is None
                else max(0.0, join_deadline - time.monotonic())
            )
            thread.join(timeout=remaining)
        stopped = not any(thread.is_alive() for thread in self._threads)
        with self._lock:
            self._state = "stopped" if stopped else "draining"
        if stopped and self._owns_store and self._plan_cache is not None:
            close = getattr(self._plan_cache, "close", None)
            if close is not None:
                close()
        return stopped

    def __enter__(self) -> "OptimizationService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown(drain=True)
        return False

    @property
    def running(self) -> bool:
        with self._lock:
            return self._state == "running"

    # -- admission -----------------------------------------------------

    def _derive_seed(self, request_id: int) -> int:
        # Distinct large odd multipliers keep per-request seeds spread out
        # and deterministic for a given (service seed, request id).
        return self.seed * 1_000_003 + request_id * 7_919 + 1

    def submit(
        self,
        query: Query,
        priority: int = 0,
        deadline_seconds: Optional[float] = None,
        seed: Optional[int] = None,
        topk: int = 1,
    ) -> "Future[OptimizeResponse]":
        """Admit a request; returns a future, or raises on shed/shutdown.

        ``topk > 1`` retains that many ranked plans per request and opts
        in to the breaker-suspect fallback: when the cost-model breaker is
        not closed at response time, the service re-serves rank 2 (the
        structurally different runner-up) instead of rank 1, on the theory
        that a suspect cost model's top pick is the plan most finely tuned
        to its possibly-poisoned numbers.  This is a deliberate, explicit
        deviation from the plan = f(query, seed) determinism contract —
        single-best requests (the default) are unaffected.

        Raises :class:`~repro.errors.ServiceOverloadError` (queue full,
        deterministic load shedding) or :class:`ServiceShutdownError`
        (service not running).
        """
        if topk < 1:
            raise ValueError(f"topk must be >= 1, got {topk}")
        with self._lock:
            if self._state != "running":
                raise ServiceShutdownError(
                    f"service is {self._state}; request rejected"
                )
            request_id = self._next_request_id
            self._next_request_id += 1
        request = OptimizeRequest(
            query=query,
            request_id=request_id,
            priority=priority,
            deadline_seconds=deadline_seconds,
            seed=seed if seed is not None else self._derive_seed(request_id),
            topk=topk,
        )
        ticket = _Ticket(request, admitted_at=self._clock())
        try:
            self._queue.put(ticket, priority=priority)
        except ReproError:
            with self._lock:
                self.rejected += 1
            raise
        with self._lock:
            self.accepted += 1
        return ticket.future

    def optimize(
        self,
        query: Query,
        priority: int = 0,
        deadline_seconds: Optional[float] = None,
        seed: Optional[int] = None,
        topk: int = 1,
    ) -> OptimizeResponse:
        """Synchronous convenience: submit and wait for the response."""
        return self.submit(
            query,
            priority=priority,
            deadline_seconds=deadline_seconds,
            seed=seed,
            topk=topk,
        ).result()

    # -- health --------------------------------------------------------

    def healthz(self) -> ServiceHealth:
        """A point-in-time health snapshot (see :class:`ServiceHealth`).

        A running service reports ``"ok"``, or ``"degraded"`` when it is
        still serving but with at least one breaker not closed (requests
        proceed under retries and, past ``breaker_wait_limit``, the
        fail-open backstop) — an open breaker is load-shedding, not an
        outage, and operators need to tell the two apart.
        """
        breaker_snapshot = self._breakers.snapshot()
        serving_degraded = any(
            entry.get("state") != "closed"
            for entry in breaker_snapshot.values()
        )
        with self._lock:
            state = self._state
            if state != "running":
                status = state
            elif serving_degraded:
                status = "degraded"
            else:
                status = "ok"
            health = ServiceHealth(
                status=status,
                queue=self._queue.snapshot(),
                workers_alive=sum(
                    1 for thread in self._threads if thread.is_alive()
                ),
                workers_total=self._n_workers,
                accepted=self.accepted,
                rejected=self.rejected,
                completed=self.completed,
                failed=self.failed,
                timeouts=self.timeouts,
                cancelled=self.cancelled,
                retries=self.retries,
                breaker_trips=self._breakers.total_trips,
                unhandled_worker_errors=self.unhandled_worker_errors,
                rung_histogram=dict(self.rung_histogram),
                breakers=breaker_snapshot,
                plan_cache=(
                    self._plan_cache.snapshot()
                    if self._plan_cache is not None
                    else None
                ),
            )
        # Registry work happens outside the service lock: publishing takes
        # per-metric locks and must never serialize the request path.
        if self._telemetry is not None:
            publish_service_health(self._telemetry.registry, health)
            health.metrics = self._telemetry.registry.snapshot()
        return health

    @property
    def breakers(self) -> BreakerBoard:
        return self._breakers

    @property
    def plan_cache(self) -> Optional[PlanCache]:
        return self._plan_cache

    @property
    def telemetry(self) -> Optional[Telemetry]:
        return self._telemetry

    # -- the worker loop ----------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            ticket = self._queue.get(timeout=0.1)
            if ticket is None:
                if self._queue.closed and len(self._queue) == 0:
                    return
                continue
            # Claim the future before doing any work: a caller may have
            # cancelled it while it sat in the queue, and a cancelled
            # future rejects set_result (InvalidStateError would kill the
            # worker).  Claiming also pins the future RUNNING, so it can
            # no longer be cancelled mid-processing.
            if not ticket.future.set_running_or_notify_cancel():
                with self._lock:
                    self.cancelled += 1
                continue
            started = self._clock()
            queue_wait = started - ticket.admitted_at
            span = (
                NULL_SPAN
                if self._telemetry is None
                else self._telemetry.span(
                    "request",
                    request_id=ticket.request.request_id,
                    priority=ticket.request.priority,
                )
            )
            try:
                with span:
                    response = self._process(ticket, queue_wait)
                    span.set(
                        status=response.status,
                        rung=response.rung,
                        attempts=response.attempts,
                        retries=response.retries,
                        rank=response.rank,
                    )
            except Exception as error:  # the worker must never die
                with self._lock:
                    self.unhandled_worker_errors += 1
                response = OptimizeResponse(
                    request_id=ticket.request.request_id,
                    status="failed",
                    queue_wait_seconds=queue_wait,
                    error=f"unhandled {type(error).__name__}: {error}",
                )
            response.service_seconds = self._clock() - started
            self._account(response)
            ticket.future.set_result(response)

    def _account(self, response: OptimizeResponse) -> None:
        with self._lock:
            self.retries += response.retries
            if response.status == "ok":
                self.completed += 1
                rung = response.rung or "unknown"
                self.rung_histogram[rung] = self.rung_histogram.get(rung, 0) + 1
            elif response.status == "timeout":
                self.timeouts += 1
            else:
                self.failed += 1
        if self._telemetry is not None:
            self._publish_response(response)

    def _publish_response(self, response: OptimizeResponse) -> None:
        """Fold one response into the metric registry (no service lock held)."""
        registry = self._telemetry.registry
        registry.counter(
            "repro_service_responses_total",
            "Responses served, by terminal status.",
            labels={"status": response.status},
        ).inc()
        registry.histogram(
            "repro_service_request_seconds",
            "End-to-end service time per response (queue wait excluded).",
        ).observe(response.service_seconds)
        registry.histogram(
            "repro_service_queue_wait_seconds",
            "Admission-queue wait per response.",
        ).observe(response.queue_wait_seconds)
        if response.ok and response.result is not None:
            publish_optimization_stats(registry, response.result.stats)

    # -- one request, attempt by attempt -------------------------------

    def _deadline_at(self, ticket: _Ticket) -> Optional[float]:
        if ticket.request.deadline_seconds is None:
            return None
        return ticket.admitted_at + ticket.request.deadline_seconds

    def _attempt_budget(self, deadline_at: Optional[float]) -> Optional[Budget]:
        if deadline_at is not None:
            remaining = max(0.0, deadline_at - self._clock())
            return Budget(deadline_seconds=remaining, clock=self._clock)
        if self._budget_factory is not None:
            return self._budget_factory()
        return None

    def _gate_breakers(self) -> Optional[CircuitOpenError]:
        """Consult every component breaker; first refusal wins.

        All-or-nothing: admitting a half-open breaker consumes one of its
        bounded probe slots, so a refusal by a *later* component must hand
        back every slot already taken — the attempt is not going to run,
        and a leaked slot would refuse probes forever (half-open breakers
        only release slots when an outcome is recorded).
        """
        admitted = []
        for component in BREAKER_COMPONENTS:
            breaker = self._breakers.breaker(component)
            if not breaker.allow():
                for earlier in admitted:
                    earlier.release_probe()
                return CircuitOpenError(component, breaker.retry_after())
            admitted.append(breaker)
        return None

    def _record_outcome(self, injected: Dict[str, int]) -> None:
        """Feed the breakers: implicated components failed, the rest
        succeeded."""
        trips_before = self._breakers.total_trips
        for component in BREAKER_COMPONENTS:
            breaker = self._breakers.breaker(component)
            if injected.get(component):
                breaker.record_failure()
            else:
                breaker.record_success()
        if (
            self._telemetry is not None
            and self._breakers.total_trips > trips_before
        ):
            self._telemetry.event("breaker_trip", injected=dict(injected))

    def _process(self, ticket: _Ticket, queue_wait: float) -> OptimizeResponse:
        request = ticket.request
        response = OptimizeResponse(
            request_id=request.request_id,
            status="failed",
            queue_wait_seconds=queue_wait,
        )
        deadline_at = self._deadline_at(ticket)
        # A request that waited out its whole deadline in the queue is
        # shed without burning a worker on a doomed optimization.
        if deadline_at is not None and self._clock() >= deadline_at:
            response.status = "timeout"
            response.error = (
                f"deadline ({request.deadline_seconds * 1000:.0f} ms) "
                "expired in the admission queue"
            )
            return response
        rng = self._retry.rng_for(request.seed)
        best_degraded: Optional[ResilientResult] = None
        last_error: Optional[BaseException] = None

        for attempt in range(self._retry.max_attempts):
            if deadline_at is not None and self._clock() >= deadline_at:
                break

            # Layer 1: breakers fast-fail while a component is sick.  The
            # wait loop is bounded but does not consume retry attempts —
            # an open breaker is the *service* protecting a component, not
            # this request failing, and the cooldown guarantees progress.
            refusal = self._gate_breakers()
            while refusal is not None:
                response.breaker_waits += 1
                last_error = refusal
                if self._telemetry is not None:
                    self._telemetry.event(
                        "breaker_open",
                        component=refusal.component,
                        retry_after=refusal.retry_after,
                    )
                if response.breaker_waits > self._breaker_wait_limit:
                    # Liveness backstop: proceed ungated.  Breakers shed
                    # load off a sick component; they must never starve a
                    # request out of an answer — past the limit (e.g. many
                    # workers losing the half-open probe-slot race under
                    # sustained faults) the attempt runs anyway, and the
                    # retry/degradation layers still guarantee a plan.
                    refusal = None
                    break
                delay = max(self._retry.base_delay, refusal.retry_after)
                if deadline_at is not None:
                    remaining = deadline_at - self._clock()
                    if remaining <= 0:
                        break
                    delay = min(delay, remaining)
                self._sleep(delay)
                refusal = self._gate_breakers()
            if refusal is not None:  # deadline expired inside the wait loop
                break
            response.attempts += 1

            # Layer 2: one resilient attempt, possibly chaos-armed.
            chaos = self._chaos(request, attempt) if self._chaos else None
            factory = self._cost_model_factory
            query = request.query
            cache = self._plan_cache
            if chaos is not None:
                factory = chaos.cost_model_factory(factory)
                query = chaos.wrap_query(query)
                cache = None  # injected faults must never touch the cache
            optimizer = ResilientOptimizer(
                cost_model_factory=factory,
                plan_cache=cache,
                topk=request.topk,
                **self._optimizer_kwargs,
            )
            budget = self._attempt_budget(deadline_at)
            guard = chaos if chaos is not None else nullcontext()
            attempt_span = (
                NULL_SPAN
                if self._telemetry is None
                else self._telemetry.span(
                    "attempt",
                    number=attempt,
                    chaos_armed=chaos is not None,
                )
            )
            try:
                with attempt_span, guard:
                    result = optimizer.optimize(query, budget=budget)
            except ReproError as error:
                injected = dict(chaos.injected) if chaos is not None else {}
                self._merge_injected(response, injected)
                transient = bool(injected) or self._retry.is_transient(error)
                # Always record, even with nothing injected: the gate may
                # have admitted half-open probes, and only an outcome
                # releases those slots (no component implicated == every
                # component succeeded).
                self._record_outcome(injected)
                last_error = error
                if not transient:
                    response.error = f"{type(error).__name__}: {error}"
                    return response
                if not self._backoff(attempt, rng, deadline_at, error):
                    break
                response.retries += 1
                continue

            injected = dict(chaos.injected) if chaos is not None else {}
            self._merge_injected(response, injected)

            if result.degraded and injected:
                # The ladder rescued an injected failure — a *transient*
                # condition.  Keep the validated degraded plan as a
                # fallback, tell the breakers, and retry for exact.
                attempt_span.set(outcome="degraded_retry", rung=result.rung)
                self._record_outcome(injected)
                best_degraded = result
                last_error = ResilienceError(
                    f"degraded to {result.rung} under injected faults "
                    f"{injected}"
                )
                if not self._backoff(attempt, rng, deadline_at, last_error):
                    break
                response.retries += 1
                continue

            # Success: exact, or organically degraded (permanent cause —
            # retrying would just re-run the same budget into the ground).
            attempt_span.set(outcome="ok", rung=result.rung)
            self._record_outcome(injected)
            return self._fill_ok(response, result, request)

        if best_degraded is not None:
            return self._fill_ok(response, best_degraded, request)
        if deadline_at is not None and self._clock() >= deadline_at:
            response.status = "timeout"
            response.error = (
                f"deadline ({request.deadline_seconds * 1000:.0f} ms) "
                f"exceeded after {response.attempts} attempt(s)"
            )
            return response
        exhausted = RetriesExhaustedError(response.attempts, last_error)
        response.error = str(exhausted)
        return response

    @staticmethod
    def _merge_injected(
        response: OptimizeResponse, injected: Dict[str, int]
    ) -> None:
        for point, count in injected.items():
            response.injected[point] = response.injected.get(point, 0) + count

    def _fill_ok(
        self,
        response: OptimizeResponse,
        result: ResilientResult,
        request: OptimizeRequest,
    ) -> OptimizeResponse:
        response.status = "ok"
        response.plan = result.plan
        response.cost = result.cost
        response.rung = result.rung
        response.degraded = result.degraded
        response.result = result
        response.error = None
        if request.topk > 1:
            ranked = result.ranked
            response.ranked_costs = tuple(plan.cost for plan in ranked)
            if self._telemetry is not None:
                self._telemetry.registry.counter(
                    "repro_topk_requests_total",
                    "Requests served with topk > 1, by retained depth.",
                    labels={"served": str(len(ranked))},
                ).inc()
            # Breaker-suspect fallback: with the cost-model breaker not
            # closed, rank 1 — the plan most finely tuned to the suspect
            # model's numbers — is re-served as the structurally different
            # runner-up, when one was retained.  Opt-in via topk > 1 only;
            # a deliberate, documented deviation from plan = f(query, seed).
            suspect = (
                self._breakers.breaker("cost_model").state != "closed"
            )
            if suspect and len(ranked) > 1:
                response.plan = ranked[1]
                response.cost = ranked[1].cost
                response.rank = 2
                if self._telemetry is not None:
                    self._telemetry.registry.counter(
                        "repro_topk_fallback_total",
                        "Rank-2 plans served because the cost-model "
                        "breaker was open at response time.",
                    ).inc()
                    self._telemetry.event(
                        "topk_breaker_fallback",
                        request_id=request.request_id,
                        rank=2,
                    )
        return response

    def _backoff(
        self,
        attempt: int,
        rng,
        deadline_at: Optional[float],
        error: BaseException,
    ) -> bool:
        """Sleep before the next attempt; False when no attempt remains."""
        if attempt + 1 >= self._retry.max_attempts:
            return False
        delay = self._retry.delay(attempt + 1, rng)
        if isinstance(error, CircuitOpenError):
            # No point probing before the breaker can move to half-open.
            delay = max(delay, error.retry_after)
        if deadline_at is not None:
            remaining = deadline_at - self._clock()
            if remaining <= 0:
                return False
            delay = min(delay, remaining)
        self._sleep(delay)
        return True

    def __repr__(self) -> str:
        with self._lock:
            state = self._state
        # The queue repr takes the queue's own lock; format it outside
        # ours so the two locks are never nested.
        return (
            f"OptimizationService(workers={self._n_workers}, "
            f"queue={self._queue!r}, state={state})"
        )
