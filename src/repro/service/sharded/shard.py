"""The shard process: one :class:`OptimizationService` behind a pipe.

:func:`shard_main` is the child-process entry point.  It builds the full
single-process serving stack (admission queue → retries → breakers →
degradation ladder → plan cache) exactly as ``repro.service`` defines it,
then bridges it to the parent over a duplex ``multiprocessing`` pipe
using the :mod:`~repro.service.sharded.wire` message types:

* :class:`~repro.service.sharded.wire.WireRequest` s are submitted to
  the local service; each completion callback ships the stripped
  response back (one sender lock serializes pipe writes — worker
  callbacks and the main loop share the connection);
* a :class:`~repro.service.sharded.wire.Heartbeat` goes out every
  ``heartbeat_interval`` seconds carrying the local ``healthz()``
  snapshot and breaker trace, so the supervisor can detect a wedged
  shard (process alive, pipe silent) and the cluster ``healthz()`` can
  aggregate shard state without synchronous probes;
* :class:`~repro.service.sharded.wire.DrainCommand` switches the loop
  into drain mode: no new work is accepted, outstanding requests finish
  and flush, then a :class:`~repro.service.sharded.wire.Drained` marker
  is sent and the process exits cleanly.

Determinism: the shard never derives request seeds — every
``WireRequest`` arrives with an explicit seed chosen by the front-end,
so a request produces the same plan whichever shard (or respawn
generation) serves it.  Chaos, when armed (``chaos_rate > 0``), uses the
same seeded :class:`~repro.service.soak.ChaosPlant` schedule keyed on
the request seed, which is therefore also routing-independent.

A parent death (pipe EOF) is treated as a shutdown order: the shard must
never outlive its supervisor as an orphan serving nobody.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.context.plancache import PlanCache
from repro.errors import ReproError, ServiceOverloadError
from repro.service.breaker import BreakerBoard
from repro.service.retry import RetryPolicy
from repro.service.server import OptimizationService
from repro.service.sharded.wire import (
    Drained,
    DrainCommand,
    Heartbeat,
    HealthProbe,
    Hello,
    ShutdownCommand,
    WireRequest,
    WireResponse,
    WireShed,
    strip_response,
)

__all__ = ["ShardConfig", "shard_main"]


@dataclass(frozen=True)
class ShardConfig:
    """Everything a shard process needs to build its local service.

    Plain picklable data (it crosses the process boundary at spawn).
    ``seed`` is the cluster seed; the shard's own RNG consumers (retry
    jitter, chaos schedule) key off per-request seeds, so two shards
    with the same config are interchangeable.
    """

    shard_id: int
    enumerator: str = "mincut_conservative"
    pruning: str = "apcbi"
    heuristic: str = "goo"
    workers: int = 2
    queue_capacity: int = 64
    plan_cache_capacity: int = 256
    seed: int = 0
    chaos_rate: float = 0.0
    heartbeat_interval: float = 0.05
    retry_max_attempts: int = 8
    retry_base_delay: float = 0.005
    retry_max_delay: float = 0.1
    breaker_failure_threshold: int = 2
    breaker_cooldown_seconds: float = 0.1
    #: Directory of the durable plan-store tier, or ``None`` for L1-only.
    #: Single-writer discipline: this shard appends exclusively to its own
    #: ``shard-<id>.rpl`` segment and warms from the shared read-only
    #: ``snapshot.rpl`` (if present) plus its own recovered segment — a
    #: SIGKILLed shard's respawn re-opens the same segment, repairs any
    #: torn tail, and starts warm.
    store_dir: Optional[str] = None
    #: L2 admission floor on cold ccp expansions (0 persists everything).
    store_min_expansions: int = 0


class _ShardBridge:
    """Pipe-facing state shared between the loop and worker callbacks."""

    def __init__(self, config: ShardConfig, conn) -> None:
        self._config = config
        self._conn = conn
        self._send_lock = threading.Lock()
        self._lock = threading.Lock()
        self._outstanding: Dict[int, WireRequest] = {}
        self._served = 0
        self._sequence = 0
        self._alive = True

    # -- pipe ----------------------------------------------------------

    def send(self, message) -> None:
        with self._send_lock:
            if not self._alive:
                return
            try:
                self._conn.send(message)
            except (BrokenPipeError, OSError):
                # The parent is gone; nothing left to report to.  The
                # main loop notices via the dead flag and exits.
                self._alive = False

    @property
    def parent_alive(self) -> bool:
        with self._send_lock:
            return self._alive

    # -- request accounting --------------------------------------------

    def begin(self, request: WireRequest) -> None:
        with self._lock:
            self._outstanding[request.request_id] = request

    def finish(self, request_id: int) -> None:
        with self._lock:
            self._outstanding.pop(request_id, None)
            self._served += 1

    @property
    def outstanding(self) -> int:
        with self._lock:
            return len(self._outstanding)

    @property
    def served(self) -> int:
        with self._lock:
            return self._served

    def next_sequence(self) -> int:
        with self._lock:
            self._sequence += 1
            return self._sequence


def _make_plan_cache(config: ShardConfig) -> PlanCache:
    if config.store_dir is None:
        return PlanCache(config.plan_cache_capacity)
    from repro.context.store import AdmissionPolicy, TieredPlanCache

    return TieredPlanCache.open(
        os.path.join(config.store_dir, f"shard-{config.shard_id}.rpl"),
        capacity=config.plan_cache_capacity,
        snapshot_paths=(os.path.join(config.store_dir, "snapshot.rpl"),),
        admission=AdmissionPolicy(min_expansions=config.store_min_expansions),
    )


def _make_service(config: ShardConfig) -> OptimizationService:
    chaos = None
    if config.chaos_rate > 0.0:
        # Deferred import: soak imports the sharded package for
        # --kill-shards, so the shard must not import soak at module load.
        from repro.service.soak import ChaosPlant

        chaos = ChaosPlant(seed=config.seed, rate=config.chaos_rate)
    return OptimizationService(
        enumerator=config.enumerator,
        pruning=config.pruning,
        heuristic=config.heuristic,
        workers=config.workers,
        queue_capacity=config.queue_capacity,
        retry_policy=RetryPolicy(
            max_attempts=config.retry_max_attempts,
            base_delay=config.retry_base_delay,
            max_delay=config.retry_max_delay,
        ),
        breakers=BreakerBoard(
            failure_threshold=config.breaker_failure_threshold,
            cooldown_seconds=config.breaker_cooldown_seconds,
        ),
        plan_cache=_make_plan_cache(config),
        chaos=chaos,
        seed=config.seed,
    )


def _heartbeat(
    bridge: _ShardBridge, config: ShardConfig, service: OptimizationService
) -> None:
    health = service.healthz()
    bridge.send(
        Heartbeat(
            shard_id=config.shard_id,
            sequence=bridge.next_sequence(),
            health=health.as_dict(),
            breaker_trace=service.breakers.trace(),
        )
    )


def _submit(
    bridge: _ShardBridge,
    config: ShardConfig,
    service: OptimizationService,
    request: WireRequest,
) -> None:
    bridge.begin(request)
    try:
        future = service.submit(
            request.query,
            priority=request.priority,
            deadline_seconds=request.deadline_seconds,
            seed=request.seed,
            topk=request.topk,
        )
    except ServiceOverloadError as error:
        bridge.finish(request.request_id)
        bridge.send(
            WireShed(
                shard_id=config.shard_id,
                request_id=request.request_id,
                queue_depth=error.queue_depth,
                capacity=error.capacity,
            )
        )
        return
    except ReproError:
        # Submitting to a draining local service and similar races:
        # answer honestly (bounce for re-routing) so no request is lost.
        bridge.finish(request.request_id)
        bridge.send(
            WireShed(
                shard_id=config.shard_id,
                request_id=request.request_id,
                queue_depth=-1,
                capacity=-1,
            )
        )
        return

    def _complete(done_future, request_id: int = request.request_id) -> None:
        try:
            response = done_future.result()
        except BaseException as error:  # typed failure, never silence
            from repro.service.server import OptimizeResponse

            response = OptimizeResponse(
                request_id=request_id,
                status="failed",
                error=f"{type(error).__name__}: {error}",
            )
        response.shard = config.shard_id
        bridge.finish(request_id)
        bridge.send(
            WireResponse(
                shard_id=config.shard_id,
                request_id=request_id,
                response=strip_response(response),
            )
        )

    future.add_done_callback(_complete)


def shard_main(config: ShardConfig, conn) -> None:
    """Child-process entry point: serve the pipe until told to stop."""
    bridge = _ShardBridge(config, conn)
    service = _make_service(config)
    service.start()
    bridge.send(Hello(shard_id=config.shard_id, pid=os.getpid()))
    _heartbeat(bridge, config, service)
    next_beat = time.monotonic() + config.heartbeat_interval
    draining = False
    drain_reported = False
    try:
        while bridge.parent_alive:
            timeout = max(0.0, next_beat - time.monotonic())
            try:
                ready = conn.poll(timeout)
            except (EOFError, OSError):
                break  # parent went away: orphan shards exit
            if ready:
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    break
                if isinstance(message, WireRequest):
                    if draining:
                        # Late racer past the drain decision: bounce it
                        # back for re-routing rather than serving it.
                        bridge.send(
                            WireShed(
                                shard_id=config.shard_id,
                                request_id=message.request_id,
                                queue_depth=-1,
                                capacity=-1,
                            )
                        )
                    else:
                        _submit(bridge, config, service, message)
                elif isinstance(message, HealthProbe):
                    _heartbeat(bridge, config, service)
                elif isinstance(message, DrainCommand):
                    draining = True
                elif isinstance(message, ShutdownCommand):
                    service.shutdown(drain=message.drain, timeout=5.0)
                    break
            now = time.monotonic()
            if now >= next_beat:
                _heartbeat(bridge, config, service)
                next_beat = now + config.heartbeat_interval
            if draining and not drain_reported and bridge.outstanding == 0:
                # Everything flushed; hand the parent the final word.
                service.shutdown(drain=True, timeout=5.0)
                bridge.send(
                    Drained(shard_id=config.shard_id, served=bridge.served)
                )
                drain_reported = True
                break
    finally:
        service.shutdown(drain=False, timeout=1.0)
        try:
            conn.close()
        except OSError:  # repro: disable=no-silent-fallback
            pass  # already closed by the dying parent; nothing to report
