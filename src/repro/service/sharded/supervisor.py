"""Shard supervision primitives: handles, seeded backoff, monitor thread.

The parent side of one shard is a :class:`ShardHandle`: the live process
and pipe, the supervision state machine position, and the per-shard
counters the cluster ``healthz()`` reports.  The handle's state machine::

    spawning ──first heartbeat──► up ──DrainCommand──► draining ──Drained──► stopped
        │                         │                        │
        │ spawn grace expired     │ exit / pipe EOF /      │ drain timeout
        ▼                         │ missed heartbeats      ▼
      dead ◄──────────────────────┘◄───────────────────── dead
        │
        │ seeded exponential backoff (RespawnBackoff)
        ▼
     backoff ──delay elapsed──► spawning   (respawns += 1)

Three independent signals declare a shard dead, checked every supervisor
tick: the process exited (``exitcode`` set — a crash or SIGKILL), the
pipe broke (EOF / send failure), or the heartbeat went stale while the
process still runs (a *wedged* shard: alive but not serving — the
supervisor kills it rather than trusting it).

Respawn pacing is a seeded exponential backoff
(:class:`RespawnBackoff`, built on the service's
:class:`~repro.service.RetryPolicy`): consecutive failures grow the
delay, a heartbeat from the respawned shard resets it.  The jitter RNG
is seeded per shard, so a chaos run's respawn schedule is reproducible.

:class:`ShardSupervisor` is the thread that drives the checks: it calls
the cluster's ``_supervise_tick()`` on a fixed cadence and nothing else —
all shard-state mutation happens in :class:`ShardedService` under the
single cluster lock, keeping the lock discipline auditable.
"""

from __future__ import annotations

import multiprocessing
import threading
from typing import Callable, Dict, List, Optional

from repro.service.retry import RetryPolicy
from repro.service.sharded.shard import ShardConfig, shard_main

__all__ = [
    "RespawnBackoff",
    "ShardHandle",
    "ShardSupervisor",
    "pick_mp_context",
]


def pick_mp_context(method: Optional[str] = None):
    """The multiprocessing context for shard processes.

    Prefers ``fork`` (sub-millisecond shard start on Linux — respawn
    after a SIGKILL is cheap) and falls back to ``spawn`` where fork is
    unavailable; ``shard_main`` is a module-level entry point either way.
    """
    if method is None:
        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
    return multiprocessing.get_context(method)


class RespawnBackoff:
    """Seeded exponential backoff between respawns of one shard.

    ``next_delay()`` is called on each consecutive failure and grows the
    delay exponentially (with seeded jitter, capped by the policy);
    ``reset()`` is called when the respawned shard proves itself with a
    heartbeat.
    """

    def __init__(self, policy: RetryPolicy, seed: int):
        self._policy = policy
        self._rng = policy.rng_for(seed)
        self.consecutive_failures = 0

    def next_delay(self) -> float:
        self.consecutive_failures += 1
        # Cap the exponent at the policy's attempt budget so a shard that
        # keeps dying converges to max_delay instead of overflowing.
        attempt = min(self.consecutive_failures, self._policy.max_attempts)
        return self._policy.delay(attempt, self._rng)

    def reset(self) -> None:
        self.consecutive_failures = 0


class ShardHandle:
    """Parent-side state for one shard slot.

    The handle's mutable supervision fields (``state``, counters, cached
    health) are only ever touched by :class:`ShardedService` while it
    holds the cluster lock; the handle itself guards just the pipe writes
    (worker threads and the supervisor both send) with ``_send_lock``.
    """

    def __init__(
        self,
        config: ShardConfig,
        ctx,
        backoff: RespawnBackoff,
    ):
        self.config = config
        self._ctx = ctx
        self.backoff = backoff
        self._send_lock = threading.Lock()
        self.process = None
        self.conn = None
        self.pid: Optional[int] = None
        # Supervision state; mutated under the cluster lock.
        self.state = "spawning"
        self.pipe_broken = False
        self.last_heartbeat: Optional[float] = None
        self.spawned_at: Optional[float] = None
        self.heartbeats = 0
        self.respawns = 0
        self.dispatched = 0
        self.completed = 0
        self.failed_over = 0
        self.sheds = 0
        self.local_health: Optional[Dict[str, object]] = None
        self.breaker_trace: List[str] = []
        #: Request ids currently assigned to this shard.
        self.outstanding: Dict[int, object] = {}
        self.drained = threading.Event()
        self.next_respawn_at: Optional[float] = None

    @property
    def shard_id(self) -> int:
        return self.config.shard_id

    # -- process lifecycle ---------------------------------------------

    def spawn(self, now: float) -> None:
        """Start (or restart) the shard process on a fresh pipe."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=shard_main,
            args=(self.config, child_conn),
            name=f"repro-shard-{self.config.shard_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the child's end lives in the child only
        with self._send_lock:
            self.process = process
            self.conn = parent_conn
            self.pid = process.pid
        self.pipe_broken = False
        self.state = "spawning"
        self.last_heartbeat = None
        self.spawned_at = now
        self.drained.clear()
        self.next_respawn_at = None

    def send(self, message) -> bool:
        """Pipe one message to the shard; ``False`` if the pipe is dead."""
        with self._send_lock:
            conn = self.conn
            if conn is None:
                return False
            try:
                conn.send(message)
                return True
            except (BrokenPipeError, OSError):
                return False

    def process_alive(self) -> bool:
        process = self.process
        return process is not None and process.is_alive()

    def exitcode(self) -> Optional[int]:
        process = self.process
        return None if process is None else process.exitcode

    def kill(self) -> None:
        """SIGKILL the shard process (chaos injection and wedge breaking)."""
        process = self.process
        if process is not None and process.is_alive():
            process.kill()

    def reap(self, join_timeout: float = 1.0) -> None:
        """Join the dead process and close the parent pipe end."""
        process = self.process
        if process is not None:
            process.join(timeout=join_timeout)
        with self._send_lock:
            conn, self.conn = self.conn, None
        if conn is not None:
            try:
                conn.close()
            except OSError:  # repro: disable=no-silent-fallback
                pass  # double-close race with the receiver; benign

    def heartbeat_age(self, now: float) -> Optional[float]:
        if self.last_heartbeat is None:
            return None
        return now - self.last_heartbeat

    def __repr__(self) -> str:
        return (
            f"ShardHandle(shard={self.shard_id}, state={self.state}, "
            f"pid={self.pid}, respawns={self.respawns}, "
            f"outstanding={len(self.outstanding)})"
        )


class ShardSupervisor:
    """The monitor thread: drive the cluster's supervision tick.

    All decisions live in ``tick`` (the cluster's ``_supervise_tick``);
    this class only owns the cadence and the stop signal, so supervision
    logic stays testable without a thread.
    """

    def __init__(self, tick: Callable[[], None], interval: float):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self._tick = tick
        self._interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="repro-shard-supervisor", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self._tick()

    def stop(self, timeout: Optional[float] = None) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()
