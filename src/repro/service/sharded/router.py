"""Consistent-hash request router keyed on the WL query fingerprint.

The router decides which shard serves a request by hashing the query's
Weisfeiler–Lehman fingerprint (:func:`repro.context.fingerprint` — the
same canonical key the :class:`~repro.context.PlanCache` uses) onto a
classic consistent-hash ring with virtual nodes.  Two properties follow:

* **cache affinity** — isomorphic repeats of a query share a fingerprint
  key, hash to the same ring point, and therefore land on the shard whose
  plan cache is already warm; the 38x warm-hit speedup the single-process
  cache measured survives sharding without any shared state;
* **minimal movement on membership change** — when a shard dies (or is
  drained), only the keys that hashed to its virtual nodes move, each to
  the next alive shard clockwise on the ring; the other shards' working
  sets — and their warm caches — are untouched.  When the shard respawns,
  exactly those keys come home.

The ring is built once from the configured shard ids and never rebuilt:
liveness is a *filter at lookup time* (``alive`` / ``exclude`` sets), so
routing is a pure function of ``(key, alive set)`` — deterministic for
tests and for the chaos soak's replay reasoning.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.context.fingerprint import fingerprint
from repro.query import Query

__all__ = ["ConsistentHashRouter", "DEFAULT_VIRTUAL_NODES"]

#: Virtual nodes per shard.  64 points per shard keeps the key-space
#: imbalance between shards under ~15% for small clusters while the ring
#: stays tiny (a few hundred entries).
DEFAULT_VIRTUAL_NODES = 64


def _ring_hash(token: str) -> int:
    """A stable 64-bit ring position (never Python's salted ``hash``)."""
    return int.from_bytes(
        hashlib.sha256(token.encode("utf-8")).digest()[:8], "big"
    )


class ConsistentHashRouter:
    """Route fingerprint keys to shards over a fixed virtual-node ring.

    Parameters
    ----------
    shard_ids:
        The configured shard identity space (ring membership is fixed;
        liveness filters at lookup time).
    virtual_nodes:
        Ring points per shard.
    """

    def __init__(
        self,
        shard_ids: Sequence[int],
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
    ):
        if not shard_ids:
            raise ValueError("router needs at least one shard id")
        if virtual_nodes < 1:
            raise ValueError(
                f"virtual_nodes must be >= 1, got {virtual_nodes}"
            )
        if len(set(shard_ids)) != len(shard_ids):
            raise ValueError(f"duplicate shard ids: {list(shard_ids)}")
        self._shard_ids: Tuple[int, ...] = tuple(shard_ids)
        ring: List[Tuple[int, int]] = []
        for shard_id in self._shard_ids:
            for replica in range(virtual_nodes):
                ring.append((_ring_hash(f"shard-{shard_id}:{replica}"), shard_id))
        ring.sort()
        self._ring = ring
        self._points = [point for point, _ in ring]

    @property
    def shard_ids(self) -> Tuple[int, ...]:
        return self._shard_ids

    def key_for(self, query: Query) -> str:
        """The routing key: the query's canonical WL fingerprint."""
        return fingerprint(query).key

    def preference(self, key: str) -> List[int]:
        """Every shard id, in ring order starting at ``key``'s successor.

        The first entry is the home shard; the rest is the deterministic
        fail-over order (each later entry is the shard the key moves to
        if all earlier ones are down).
        """
        start = bisect.bisect_right(self._points, _ring_hash(key))
        seen: Set[int] = set()
        order: List[int] = []
        n = len(self._ring)
        for offset in range(n):
            shard_id = self._ring[(start + offset) % n][1]
            if shard_id not in seen:
                seen.add(shard_id)
                order.append(shard_id)
                if len(order) == len(self._shard_ids):
                    break
        return order

    def route(
        self,
        key: str,
        alive: Iterable[int],
        exclude: Iterable[int] = (),
    ) -> Optional[int]:
        """The first shard in ``key``'s preference order that is alive
        and not excluded; ``None`` when no candidate remains."""
        alive_set = set(alive)
        excluded = set(exclude)
        for shard_id in self.preference(key):
            if shard_id in alive_set and shard_id not in excluded:
                return shard_id
        return None

    def route_query(
        self,
        query: Query,
        alive: Iterable[int],
        exclude: Iterable[int] = (),
    ) -> Optional[int]:
        """Convenience: fingerprint then :meth:`route`."""
        return self.route(self.key_for(query), alive, exclude=exclude)

    def __repr__(self) -> str:
        return (
            f"ConsistentHashRouter(shards={list(self._shard_ids)}, "
            f"ring={len(self._ring)} points)"
        )
