""":class:`ShardedService` — the multi-process front-end.

The front-end owns N supervised shard processes (each running the full
single-process :class:`~repro.service.OptimizationService` stack), a
:class:`~repro.service.sharded.router.ConsistentHashRouter` keyed on the
WL query fingerprint, and three parent-side threads:

* the **receiver** multiplexes every shard pipe
  (``multiprocessing.connection.wait``), completing futures from
  :class:`WireResponse` s, refreshing liveness from heartbeats, and
  re-routing :class:`WireShed` bounces;
* the **supervisor tick** (driven by
  :class:`~repro.service.sharded.supervisor.ShardSupervisor`) detects
  dead shards — process exit (crash, SIGKILL), broken pipe, stale
  heartbeat — fails their in-flight requests over to surviving shards,
  and respawns them under seeded exponential backoff;
* the **fallback worker** serves requests through an in-process
  :class:`~repro.resilience.ResilientOptimizer` degradation ladder when
  *no* shard is alive — the cluster never answers "try later" while a
  validated plan is constructible.

Loss model: a request is handed back exactly once.  Every accepted
request lives in one cluster-wide ticket table; a ticket leaves the
table only when its future is completed (response, typed failure, or
shutdown error), and every failure path — shard death, shed, pipe
break, drain, shutdown — re-routes or completes the tickets it touches.
Duplicate work is possible (a response computed but cut down mid-pipe by
SIGKILL is recomputed elsewhere); duplicate *completion* is not (the
table pop is first-wins).

Determinism: plans are a function of the query alone (and request seeds
are derived by the front-end exactly like the single-process service
derives them), so which shard serves a request — or whether it was
failed over three times first — never changes the returned plan.  The
``--kill-shards`` chaos soak asserts this bit-for-bit against a
single-process disarmed replay.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Callable, Deque, Dict, List, Optional, Set

from multiprocessing.connection import wait as _connection_wait

from repro.errors import (
    ServiceError,
    ServiceOverloadError,
    ServiceShutdownError,
)
from repro.query import Query
from repro.resilience.optimizer import ResilientOptimizer
from repro.service.retry import RetryPolicy
from repro.service.server import OptimizeResponse
from repro.service.sharded.health import ClusterHealth, ShardStatus
from repro.service.sharded.router import (
    DEFAULT_VIRTUAL_NODES,
    ConsistentHashRouter,
)
from repro.service.sharded.shard import ShardConfig
from repro.service.sharded.supervisor import (
    RespawnBackoff,
    ShardHandle,
    ShardSupervisor,
    pick_mp_context,
)
from repro.service.sharded.wire import (
    Drained,
    DrainCommand,
    Heartbeat,
    Hello,
    ShutdownCommand,
    WireRequest,
    WireResponse,
    WireShed,
)
from repro.telemetry import Telemetry
from repro.telemetry.adapters import publish_cluster_health

__all__ = ["ShardedService", "DEFAULT_RESPAWN_POLICY"]


def DEFAULT_RESPAWN_POLICY() -> RetryPolicy:
    """Stock respawn backoff: 50 ms doubling to a 2 s ceiling."""
    return RetryPolicy(
        max_attempts=6, base_delay=0.05, multiplier=2.0, max_delay=2.0
    )


class _ClusterTicket:
    """One accepted request: routing state plus its completion future."""

    __slots__ = (
        "request_id",
        "query",
        "priority",
        "deadline_seconds",
        "seed",
        "topk",
        "key",
        "future",
        "created_at",
        "tried",
        "dispatches",
        "shard_id",
    )

    def __init__(
        self,
        request_id: int,
        query: Query,
        priority: int,
        deadline_seconds: Optional[float],
        seed: int,
        key: str,
        created_at: float,
        topk: int = 1,
    ):
        self.request_id = request_id
        self.query = query
        self.priority = priority
        self.deadline_seconds = deadline_seconds
        self.seed = seed
        self.topk = topk
        self.key = key
        self.future: "Future[OptimizeResponse]" = Future()
        self.created_at = created_at
        #: Shards this ticket already bounced off (death or shed).
        self.tried: Set[int] = set()
        self.dispatches = 0
        #: Shard currently responsible, ``None`` while unassigned.
        self.shard_id: Optional[int] = None


class ShardedService:
    """N shard processes behind a consistent-hash router and supervisor.

    Parameters
    ----------
    shards:
        Shard process count.
    enumerator / pruning / heuristic / workers_per_shard /
    shard_queue_capacity / plan_cache_capacity / chaos_rate:
        Forwarded into each shard's :class:`ShardConfig` (``chaos_rate``
        arms the seeded in-shard :class:`~repro.service.soak.ChaosPlant`).
    seed:
        Cluster seed; per-request seeds derive from it exactly as the
        single-process service derives them.
    store_dir / store_min_expansions:
        Durable plan-store directory for the cluster (``None`` disables
        the L2 tier).  Each shard appends to its own
        ``shard-<id>.rpl`` segment (single-writer) and warms on (re)spawn
        from the shared read-only ``snapshot.rpl`` plus its own segment,
        so a killed shard's respawn starts with the state it died with;
        ``repro-cache compact`` merges segments offline.
    heartbeat_interval / heartbeat_miss_limit / spawn_grace_seconds:
        A shard is declared wedged after ``miss_limit`` intervals without
        a heartbeat (or ``spawn_grace_seconds`` without its first one).
    respawn_policy:
        Backoff schedule between respawns of a crashing shard.
    max_outstanding:
        Cluster-wide admission bound (defaults to twice the summed shard
        queue capacity); beyond it :meth:`submit` sheds with
        :class:`~repro.errors.ServiceOverloadError`.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` bundle: supervision
        events become ``repro_shard_*`` counters as they happen, and
        :meth:`healthz` publishes gauges + embeds a registry snapshot.
    """

    def __init__(
        self,
        shards: int = 2,
        enumerator: str = "mincut_conservative",
        pruning: str = "apcbi",
        heuristic: str = "goo",
        workers_per_shard: int = 2,
        shard_queue_capacity: int = 64,
        plan_cache_capacity: int = 256,
        seed: int = 0,
        chaos_rate: float = 0.0,
        store_dir: Optional[str] = None,
        store_min_expansions: int = 0,
        heartbeat_interval: float = 0.05,
        heartbeat_miss_limit: int = 8,
        spawn_grace_seconds: float = 10.0,
        respawn_policy: Optional[RetryPolicy] = None,
        max_outstanding: Optional[int] = None,
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
        mp_start_method: Optional[str] = None,
        telemetry: Optional[Telemetry] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if heartbeat_miss_limit < 2:
            raise ValueError(
                f"heartbeat_miss_limit must be >= 2, got {heartbeat_miss_limit}"
            )
        self.seed = seed
        self._clock = clock
        self._telemetry = telemetry
        self._heartbeat_interval = heartbeat_interval
        self._miss_limit = heartbeat_miss_limit
        self._spawn_grace = spawn_grace_seconds
        self._respawn_policy = (
            respawn_policy if respawn_policy is not None else DEFAULT_RESPAWN_POLICY()
        )
        self._max_outstanding = (
            max_outstanding
            if max_outstanding is not None
            else 2 * shards * shard_queue_capacity
        )
        # A ticket that bounced off every shard twice goes to fallback.
        self._max_dispatches = 2 * shards + 1
        self._ctx = pick_mp_context(mp_start_method)
        self._router = ConsistentHashRouter(
            range(shards), virtual_nodes=virtual_nodes
        )
        self._handles: Dict[int, ShardHandle] = {}
        for shard_id in range(shards):
            config = ShardConfig(
                shard_id=shard_id,
                enumerator=enumerator,
                pruning=pruning,
                heuristic=heuristic,
                workers=workers_per_shard,
                queue_capacity=shard_queue_capacity,
                plan_cache_capacity=plan_cache_capacity,
                seed=seed,
                chaos_rate=chaos_rate,
                store_dir=store_dir,
                store_min_expansions=store_min_expansions,
                heartbeat_interval=heartbeat_interval,
            )
            backoff = RespawnBackoff(
                self._respawn_policy, seed=seed * 7_919 + shard_id + 1
            )
            self._handles[shard_id] = ShardHandle(config, self._ctx, backoff)
        self._fallback_config = dict(
            enumerator=enumerator, pruning=pruning, heuristic=heuristic
        )

        self._lock = threading.Lock()
        # Guarded by _lock: the ticket table, counters, shard states.
        self._tickets: Dict[int, _ClusterTicket] = {}
        self._next_request_id = 0
        self._state = "stopped"  # "stopped" | "running" | "draining"
        self.accepted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.failovers = 0
        self.respawns = 0
        self.drains = 0
        self.fallback_served = 0
        self.wire_errors = 0
        self.duplicate_responses = 0

        self._fallback_lock = threading.Lock()
        self._fallback_ready = threading.Condition(self._fallback_lock)
        self._fallback_queue: Deque[_ClusterTicket] = deque()

        self._stop_event = threading.Event()
        self._receiver_thread: Optional[threading.Thread] = None
        self._fallback_thread: Optional[threading.Thread] = None
        self._supervisor = ShardSupervisor(
            self._supervise_tick, interval=heartbeat_interval / 2.0
        )

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "ShardedService":
        with self._lock:
            if self._state != "stopped" or self._receiver_thread is not None:
                raise ServiceShutdownError(
                    f"cannot start a sharded service in state {self._state!r}"
                    + ("; services are one-shot" if self._receiver_thread else "")
                )
            self._state = "running"
            now = self._clock()
            for handle in self._handles.values():
                handle.spawn(now)
        self._receiver_thread = threading.Thread(
            target=self._receiver_loop, name="repro-shard-receiver", daemon=True
        )
        self._receiver_thread.start()
        self._fallback_thread = threading.Thread(
            target=self._fallback_loop, name="repro-shard-fallback", daemon=True
        )
        self._fallback_thread.start()
        self._supervisor.start()
        return self

    def __enter__(self) -> "ShardedService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown(drain=True, timeout=30.0)
        return False

    @property
    def running(self) -> bool:
        with self._lock:
            return self._state == "running"

    @property
    def router(self) -> ConsistentHashRouter:
        return self._router

    @property
    def telemetry(self) -> Optional[Telemetry]:
        return self._telemetry

    def shutdown(
        self, drain: bool = True, timeout: Optional[float] = None
    ) -> bool:
        """Stop the cluster; ``True`` iff every shard process exited.

        ``drain=True`` waits for every in-flight ticket to complete
        (supervision stays active, so shards dying mid-drain still fail
        over); ``drain=False`` fails pending tickets with
        :class:`ServiceShutdownError`.  ``timeout`` bounds the total
        wait; stragglers are killed and reported via ``False``.
        """
        with self._lock:
            if self._state == "stopped":
                return True
            self._state = "draining"
        deadline = None if timeout is None else time.monotonic() + timeout
        for handle in self._handles.values():
            handle.send(ShutdownCommand(drain=drain))
        if drain:
            while True:
                with self._lock:
                    empty = not self._tickets
                with self._fallback_ready:
                    empty = empty and not self._fallback_queue
                if empty:
                    break
                if deadline is not None and time.monotonic() >= deadline:
                    break
                time.sleep(0.005)
        self._supervisor.stop(timeout=2.0)
        all_exited = True
        for handle in self._handles.values():
            process = handle.process
            if process is None:
                continue
            remaining = (
                None
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            process.join(timeout=remaining)
            if process.is_alive():
                all_exited = False
                handle.kill()
            handle.reap()
            with self._lock:
                handle.state = "stopped"
        self._stop_event.set()
        with self._fallback_ready:
            self._fallback_ready.notify_all()
        for thread in (self._receiver_thread, self._fallback_thread):
            if thread is not None:
                thread.join(timeout=5.0)
        # Whatever is left gets an honest typed failure, never silence.
        with self._fallback_ready:
            self._fallback_queue.clear()
        with self._lock:
            stranded = list(self._tickets.values())
            self._tickets.clear()
            self.failed += len(stranded)
            self._state = "stopped"
        for ticket in stranded:
            ticket.future.set_exception(
                ServiceShutdownError(
                    f"request#{ticket.request_id} stranded by cluster shutdown"
                )
            )
        return all_exited

    # -- admission & routing -------------------------------------------

    def _derive_seed(self, request_id: int) -> int:
        # Same derivation as the single-process service, so a request
        # stream produces identical per-request seeds either way.
        return self.seed * 1_000_003 + request_id * 7_919 + 1

    def submit(
        self,
        query: Query,
        priority: int = 0,
        deadline_seconds: Optional[float] = None,
        seed: Optional[int] = None,
        topk: int = 1,
    ) -> "Future[OptimizeResponse]":
        """Admit a request; returns a future, or raises on shed/shutdown."""
        if topk < 1:
            raise ValueError(f"topk must be >= 1, got {topk}")
        key = self._router.key_for(query)
        with self._lock:
            if self._state != "running":
                raise ServiceShutdownError(
                    f"sharded service is {self._state}; request rejected"
                )
            if len(self._tickets) >= self._max_outstanding:
                self.rejected += 1
                raise ServiceOverloadError(
                    len(self._tickets), self._max_outstanding
                )
            request_id = self._next_request_id
            self._next_request_id += 1
            ticket = _ClusterTicket(
                request_id=request_id,
                query=query,
                priority=priority,
                deadline_seconds=deadline_seconds,
                seed=seed if seed is not None else self._derive_seed(request_id),
                key=key,
                created_at=self._clock(),
                topk=topk,
            )
            # Claim RUNNING immediately: a cluster ticket may hop shards,
            # and a caller cancelling mid-hop would race set_result.
            ticket.future.set_running_or_notify_cancel()
            self._tickets[request_id] = ticket
            self.accepted += 1
        self._dispatch(ticket)
        return ticket.future

    def optimize(
        self,
        query: Query,
        priority: int = 0,
        deadline_seconds: Optional[float] = None,
        seed: Optional[int] = None,
        topk: int = 1,
    ) -> OptimizeResponse:
        """Synchronous convenience: submit and wait."""
        return self.submit(
            query,
            priority=priority,
            deadline_seconds=deadline_seconds,
            seed=seed,
            topk=topk,
        ).result()

    def _alive_shard_ids(self) -> List[int]:
        """Shards a request may be routed to (call with ``_lock`` held)."""
        return [
            handle.shard_id
            for handle in self._handles.values()
            if handle.state in ("up", "spawning") and not handle.pipe_broken
        ]

    def _dispatch(self, ticket: _ClusterTicket) -> None:
        """Route a ticket to a shard, the fallback lane, or a timeout."""
        while True:
            timed_out = False
            with self._lock:
                if ticket.request_id not in self._tickets:
                    return  # already completed elsewhere
                remaining = self._remaining_deadline(ticket)
                if remaining is not None and remaining <= 0.0:
                    del self._tickets[ticket.request_id]
                    timed_out = True
                else:
                    alive = self._alive_shard_ids()
                    target = self._router.route(
                        ticket.key, alive, exclude=ticket.tried
                    )
                    if target is None:
                        # Every alive shard already bounced this ticket;
                        # a freshly respawned shard may retry it once.
                        target = self._router.route(ticket.key, alive)
                    if target is None or ticket.dispatches >= self._max_dispatches:
                        handle = None
                    else:
                        handle = self._handles[target]
                        handle.outstanding[ticket.request_id] = ticket
                        handle.dispatched += 1
                        ticket.shard_id = target
                        ticket.dispatches += 1
            if timed_out:
                response = OptimizeResponse(
                    request_id=ticket.request_id,
                    status="timeout",
                    error=(
                        f"deadline ({ticket.deadline_seconds * 1000:.0f} ms) "
                        "expired before a shard could serve the request"
                    ),
                )
                self._finish(ticket, response)
                return
            if handle is None:
                self._enqueue_fallback(ticket)
                return
            request = WireRequest(
                request_id=ticket.request_id,
                query=ticket.query,
                priority=ticket.priority,
                deadline_seconds=self._remaining_deadline(ticket),
                seed=ticket.seed,
                topk=ticket.topk,
            )
            if handle.send(request):
                return
            # The pipe died under us: unassign, remember the bounce, let
            # the supervisor declare the death, and pick again.
            with self._lock:
                handle.pipe_broken = True
                handle.outstanding.pop(ticket.request_id, None)
                ticket.tried.add(handle.shard_id)
                ticket.shard_id = None

    def _remaining_deadline(self, ticket: _ClusterTicket) -> Optional[float]:
        if ticket.deadline_seconds is None:
            return None
        return ticket.deadline_seconds - (self._clock() - ticket.created_at)

    def _finish(
        self, ticket: _ClusterTicket, response: OptimizeResponse
    ) -> None:
        """Complete an already-popped ticket and account the outcome."""
        with self._lock:
            if response.status == "ok":
                self.completed += 1
            else:
                self.failed += 1
        if self._telemetry is not None:
            self._telemetry.registry.counter(
                "repro_shard_responses_total",
                "Cluster responses, by shard (-1 = front-end fallback) "
                "and terminal status.",
                labels={
                    "shard": -1 if response.shard is None else response.shard,
                    "status": response.status,
                },
            ).inc()
        ticket.future.set_result(response)

    # -- the receiver --------------------------------------------------

    def _receiver_loop(self) -> None:
        while not self._stop_event.is_set():
            with self._lock:
                conn_map = {
                    handle.conn: handle
                    for handle in self._handles.values()
                    if handle.conn is not None and not handle.pipe_broken
                }
            if not conn_map:
                time.sleep(self._heartbeat_interval / 2.0)
                continue
            try:
                ready = _connection_wait(
                    list(conn_map), timeout=self._heartbeat_interval
                )
            except OSError:  # repro: disable=no-silent-fallback
                # A pipe was reaped mid-wait; the handle is already
                # marked broken — just re-snapshot the live set.
                continue
            for conn in ready:
                self._drain_connection(conn, conn_map[conn])

    def _drain_connection(self, conn, handle: ShardHandle) -> None:
        while True:
            try:
                if not conn.poll(0):
                    return
                message = conn.recv()
            except (EOFError, BrokenPipeError, OSError):
                # Orderly EOF or a cut pipe: the supervisor's next tick
                # declares the death; nothing to decode here.
                with self._lock:
                    handle.pipe_broken = True
                return
            except Exception:
                # A message cut mid-pickle by SIGKILL: count it, declare
                # the pipe dead (framing is unrecoverable past this).
                with self._lock:
                    handle.pipe_broken = True
                    self.wire_errors += 1
                self._count_event(
                    "repro_shard_wire_errors_total",
                    "Messages that failed to decode off a shard pipe.",
                    shard=handle.shard_id,
                )
                return
            self._on_message(handle, message)

    def _on_message(self, handle: ShardHandle, message) -> None:
        if isinstance(message, WireResponse):
            with self._lock:
                handle.outstanding.pop(message.request_id, None)
                ticket = self._tickets.pop(message.request_id, None)
                if ticket is None:
                    # Late duplicate (the request was failed over and
                    # answered elsewhere first).
                    self.duplicate_responses += 1
                    return
                handle.completed += 1
            self._finish(ticket, message.response)
        elif isinstance(message, Heartbeat):
            with self._lock:
                handle.last_heartbeat = self._clock()
                handle.heartbeats += 1
                handle.local_health = message.health
                handle.breaker_trace = message.breaker_trace
                if handle.state == "spawning":
                    handle.state = "up"
                handle.backoff.reset()
        elif isinstance(message, Hello):
            with self._lock:
                handle.pid = message.pid
                handle.last_heartbeat = self._clock()
                if handle.state == "spawning":
                    handle.state = "up"
        elif isinstance(message, WireShed):
            redispatch = None
            with self._lock:
                handle.sheds += 1
                handle.outstanding.pop(message.request_id, None)
                ticket = self._tickets.get(message.request_id)
                if ticket is not None and ticket.shard_id == handle.shard_id:
                    ticket.tried.add(handle.shard_id)
                    ticket.shard_id = None
                    self.failovers += 1
                    handle.failed_over += 1
                    redispatch = ticket
            if redispatch is not None:
                self._count_event(
                    "repro_shard_failovers_total",
                    "Requests re-routed off a shard (death or shed).",
                    shard=handle.shard_id,
                )
                self._dispatch(redispatch)
        elif isinstance(message, Drained):
            with self._lock:
                handle.drained.set()

    # -- supervision ---------------------------------------------------

    def _supervise_tick(self) -> None:
        """One pass of death detection and backoff-paced respawning."""
        now = self._clock()
        to_declare = []
        to_respawn = []
        with self._lock:
            if self._state == "stopped":
                return
            for handle in self._handles.values():
                if handle.state in ("up", "spawning", "draining"):
                    if handle.state == "draining" and handle.drained.is_set():
                        continue  # exited on purpose; drain_shard reaps it
                    exitcode = handle.exitcode()
                    if exitcode is not None:
                        to_declare.append((handle, f"exit:{exitcode}"))
                    elif handle.pipe_broken:
                        to_declare.append((handle, "pipe"))
                    elif handle.state == "spawning":
                        started = handle.spawned_at or now
                        if now - started > self._spawn_grace:
                            to_declare.append((handle, "spawn-timeout"))
                    else:
                        age = handle.heartbeat_age(now)
                        if (
                            age is not None
                            and age
                            > self._miss_limit * self._heartbeat_interval
                        ):
                            to_declare.append((handle, "heartbeat"))
                elif (
                    handle.state == "backoff"
                    and self._state == "running"
                    and handle.next_respawn_at is not None
                    and now >= handle.next_respawn_at
                ):
                    to_respawn.append(handle)
        for handle, reason in to_declare:
            self._declare_dead(handle, reason)
        for handle in to_respawn:
            self._respawn(handle)

    def _declare_dead(self, handle: ShardHandle, reason: str) -> None:
        """Fail over a dead shard's tickets and schedule its respawn."""
        with self._lock:
            if handle.state in ("backoff", "stopped"):
                return  # already handled
            handle.state = "backoff"
            orphans = [
                ticket
                for ticket in handle.outstanding.values()
                if ticket.request_id in self._tickets
            ]
            handle.outstanding.clear()
            handle.failed_over += len(orphans)
            self.failovers += len(orphans)
            delay = handle.backoff.next_delay()
            handle.next_respawn_at = self._clock() + delay
        self._count_event(
            "repro_shard_deaths_total",
            "Shard processes declared dead, by detection signal.",
            shard=handle.shard_id,
            reason=reason.split(":")[0],
        )
        if orphans:
            self._count_event(
                "repro_shard_failovers_total",
                "Requests re-routed off a shard (death or shed).",
                n=len(orphans),
                shard=handle.shard_id,
            )
        handle.kill()
        handle.reap()
        for ticket in orphans:
            with self._lock:
                ticket.tried.add(handle.shard_id)
                ticket.shard_id = None
            self._dispatch(ticket)

    def _respawn(self, handle: ShardHandle) -> None:
        with self._lock:
            if handle.state != "backoff" or self._state != "running":
                return
            handle.spawn(self._clock())
            handle.respawns += 1
            self.respawns += 1
        self._count_event(
            "repro_shard_respawns_total",
            "Shard processes respawned after a crash.",
            shard=handle.shard_id,
        )

    # -- drain (rolling restart) ---------------------------------------

    def drain_shard(
        self, shard_id: int, timeout: float = 30.0, respawn: bool = True
    ) -> bool:
        """Gracefully drain one shard: finish its in-flight work, let it
        exit, then (by default) restart it cold.

        Only one shard may drain at a time — the whole point of a rolling
        restart is that the other N-1 shards keep serving.  Returns
        ``True`` on a clean drain; a wedged drain (timeout) falls back to
        the crash path (kill, fail-over, backoff respawn) and returns
        ``False``.
        """
        with self._lock:
            if self._state != "running":
                raise ServiceShutdownError(
                    f"cannot drain: sharded service is {self._state}"
                )
            if shard_id not in self._handles:
                raise ServiceError(f"no such shard: {shard_id}")
            if any(
                other.state == "draining" for other in self._handles.values()
            ):
                raise ServiceError("another shard is draining; one at a time")
            handle = self._handles[shard_id]
            if handle.state != "up":
                raise ServiceError(
                    f"shard {shard_id} is {handle.state}; only an up shard "
                    "can be drained"
                )
            handle.state = "draining"
            handle.drained.clear()
        if not handle.send(DrainCommand()):
            self._declare_dead(handle, "pipe")
            return False
        if not handle.drained.wait(timeout):
            self._declare_dead(handle, "drain-timeout")
            return False
        handle.reap(join_timeout=5.0)
        with self._lock:
            self.drains += 1
            if respawn and self._state == "running":
                handle.spawn(self._clock())
            else:
                handle.state = "stopped"
        self._count_event(
            "repro_shard_drains_total",
            "Graceful shard drains completed.",
            shard=shard_id,
        )
        return True

    def kill_shard(self, shard_id: int) -> Optional[int]:
        """SIGKILL a shard process (chaos injection); returns its pid."""
        with self._lock:
            if shard_id not in self._handles:
                raise ServiceError(f"no such shard: {shard_id}")
            handle = self._handles[shard_id]
            pid = handle.pid
        handle.kill()
        return pid

    # -- the all-shards-down fallback lane ------------------------------

    def _enqueue_fallback(self, ticket: _ClusterTicket) -> None:
        with self._fallback_ready:
            self._fallback_queue.append(ticket)
            self._fallback_ready.notify()

    def _fallback_loop(self) -> None:
        optimizer = ResilientOptimizer(**self._fallback_config)
        while True:
            with self._fallback_ready:
                while not self._fallback_queue and not self._stop_event.is_set():
                    self._fallback_ready.wait(timeout=0.1)
                if self._fallback_queue:
                    ticket = self._fallback_queue.popleft()
                elif self._stop_event.is_set():
                    return
                else:
                    continue
            self._serve_fallback(optimizer, ticket)

    def _serve_fallback(
        self, optimizer: ResilientOptimizer, ticket: _ClusterTicket
    ) -> None:
        with self._lock:
            if self._tickets.pop(ticket.request_id, None) is None:
                return  # completed elsewhere meanwhile
            self.fallback_served += 1
        self._count_event(
            "repro_shard_fallback_requests_total",
            "Requests served by the front-end ladder with no shard alive.",
        )
        started = self._clock()
        response = OptimizeResponse(
            request_id=ticket.request_id,
            status="failed",
            queue_wait_seconds=started - ticket.created_at,
        )
        if ticket.topk > 1:
            # The shared fallback optimizer is single-best; ranked tickets
            # get a per-request one carrying their k (rare path — it only
            # runs with every shard down).
            optimizer = ResilientOptimizer(
                topk=ticket.topk, **self._fallback_config
            )
        try:
            result = optimizer.optimize(ticket.query)
        except Exception as error:  # typed failure, never a lost request
            response.error = f"fallback {type(error).__name__}: {error}"
        else:
            response.status = "ok"
            response.plan = result.plan
            response.cost = result.cost
            response.rung = result.rung
            response.degraded = result.degraded
            response.result = result
            response.attempts = 1
            if ticket.topk > 1:
                response.ranked_costs = tuple(
                    plan.cost for plan in result.ranked
                )
        response.service_seconds = self._clock() - started
        self._finish(ticket, response)

    # -- health ---------------------------------------------------------

    def healthz(self) -> ClusterHealth:
        """Aggregate the cluster's supervision state (see
        :class:`~repro.service.sharded.health.ClusterHealth`)."""
        now = self._clock()
        with self._lock:
            shards = []
            up = 0
            for handle in self._handles.values():
                if handle.state == "up":
                    up += 1
                shards.append(
                    ShardStatus(
                        shard_id=handle.shard_id,
                        state=handle.state,
                        pid=handle.pid,
                        alive=handle.process_alive(),
                        respawns=handle.respawns,
                        consecutive_failures=(
                            handle.backoff.consecutive_failures
                        ),
                        outstanding=len(handle.outstanding),
                        dispatched=handle.dispatched,
                        completed=handle.completed,
                        failed_over=handle.failed_over,
                        sheds=handle.sheds,
                        heartbeats=handle.heartbeats,
                        heartbeat_age_seconds=handle.heartbeat_age(now),
                        local_health=handle.local_health,
                        breaker_trace=list(handle.breaker_trace),
                    )
                )
            if self._state != "running":
                status = self._state
            elif up == len(self._handles):
                status = "ok"
            elif up > 0:
                status = "degraded"
            else:
                status = "down"
            health = ClusterHealth(
                status=status,
                shards=shards,
                shards_total=len(self._handles),
                shards_up=up,
                accepted=self.accepted,
                rejected=self.rejected,
                completed=self.completed,
                failed=self.failed,
                failovers=self.failovers,
                respawns=self.respawns,
                drains=self.drains,
                fallback_served=self.fallback_served,
                wire_errors=self.wire_errors,
            )
        # Registry work outside the cluster lock, like the single service.
        if self._telemetry is not None:
            publish_cluster_health(self._telemetry.registry, health)
            health.metrics = self._telemetry.registry.snapshot()
        return health

    # -- telemetry ------------------------------------------------------

    def _count_event(
        self, name: str, help_text: str, n: int = 1, **labels
    ) -> None:
        if self._telemetry is None:
            return
        self._telemetry.registry.counter(
            name, help_text, labels=labels or None
        ).inc(n)

    def __repr__(self) -> str:
        with self._lock:
            state = self._state
            states = {
                handle.shard_id: handle.state
                for handle in self._handles.values()
            }
        return f"ShardedService(state={state}, shards={states})"
