"""Cluster-level health: per-shard liveness folded into one envelope.

:class:`ClusterHealth` is the sharded tier's answer to the single
service's :class:`~repro.service.ServiceHealth`: one JSON-ready snapshot
aggregating shard liveness (state machine position, pid, heartbeat
recency), supervision counters (respawns, fail-overs, drains, wire
errors), front-end request accounting, and each shard's last reported
*local* ``healthz()`` payload — the supervisor caches the snapshot every
heartbeat carries, so building a cluster view costs no synchronous
round-trips to the shards.

``status`` summarizes the cluster the way an operator triages it:

* ``"ok"`` — every configured shard is up;
* ``"degraded"`` — at least one shard is down/respawning/draining but at
  least one is up (requests fail over; warm-cache affinity is partially
  lost);
* ``"down"`` — no shard is up: the front-end serves every request
  through its in-process degradation-ladder fallback;
* ``"draining"`` / ``"stopped"`` — cluster lifecycle states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["ClusterHealth", "ShardStatus"]


@dataclass
class ShardStatus:
    """One shard's supervision view (parent-side knowledge only)."""

    shard_id: int
    state: str  # "spawning" | "up" | "draining" | "backoff" | "dead" | "stopped"
    pid: Optional[int] = None
    alive: bool = False
    respawns: int = 0
    consecutive_failures: int = 0
    outstanding: int = 0
    dispatched: int = 0
    completed: int = 0
    failed_over: int = 0
    sheds: int = 0
    heartbeats: int = 0
    #: Seconds since the last heartbeat (parent clock); ``None`` before
    #: the first one.
    heartbeat_age_seconds: Optional[float] = None
    #: The shard's own ``ServiceHealth.as_dict()`` from its last
    #: heartbeat (may lag by one heartbeat interval).
    local_health: Optional[Dict[str, object]] = None
    breaker_trace: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "shard_id": self.shard_id,
            "state": self.state,
            "pid": self.pid,
            "alive": self.alive,
            "respawns": self.respawns,
            "consecutive_failures": self.consecutive_failures,
            "outstanding": self.outstanding,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "failed_over": self.failed_over,
            "sheds": self.sheds,
            "heartbeats": self.heartbeats,
            "heartbeat_age_seconds": self.heartbeat_age_seconds,
            "local_health": (
                dict(self.local_health) if self.local_health else None
            ),
            "breaker_trace": list(self.breaker_trace),
        }


@dataclass
class ClusterHealth:
    """One observation of the whole sharded deployment."""

    status: str  # "ok" | "degraded" | "down" | "draining" | "stopped"
    shards: List[ShardStatus] = field(default_factory=list)
    shards_total: int = 0
    shards_up: int = 0
    accepted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    #: Requests re-routed off a dead or shedding shard.
    failovers: int = 0
    #: Shard processes respawned after a crash or missed heartbeats.
    respawns: int = 0
    #: Graceful drains completed (rolling restarts).
    drains: int = 0
    #: Requests served by the front-end's in-process degradation-ladder
    #: fallback because no shard was alive.
    fallback_served: int = 0
    #: Messages that failed to decode off a shard pipe (e.g. a write cut
    #: mid-pickle by SIGKILL).
    wire_errors: int = 0
    #: Telemetry registry snapshot when the front-end runs with a
    #: :class:`~repro.telemetry.Telemetry` bundle attached.
    metrics: Optional[Dict[str, object]] = None

    @property
    def healthy(self) -> bool:
        """Fully staffed: every configured shard up, none failing."""
        return self.status == "ok" and self.shards_up == self.shards_total

    def as_dict(self) -> Dict[str, object]:
        return {
            "status": self.status,
            "healthy": self.healthy,
            "shards_total": self.shards_total,
            "shards_up": self.shards_up,
            "requests": {
                "accepted": self.accepted,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
            },
            "failovers": self.failovers,
            "respawns": self.respawns,
            "drains": self.drains,
            "fallback_served": self.fallback_served,
            "wire_errors": self.wire_errors,
            "shards": [shard.as_dict() for shard in self.shards],
            "metrics": dict(self.metrics) if self.metrics else None,
        }

    def describe(self) -> str:
        """Terse one-per-line rendering for CLI output (runbook format)."""
        if self.healthy:
            verdict = "healthy"
        elif self.status in ("degraded", "down"):
            verdict = "serving via fail-over" if self.shards_up else "fallback only"
        else:
            verdict = "not serving"
        lines = [
            f"cluster    : {self.status} ({verdict}), "
            f"{self.shards_up}/{self.shards_total} shards up",
            f"requests   : {self.accepted} accepted, {self.rejected} "
            f"rejected, {self.completed} completed, {self.failed} failed",
            f"resilience : {self.failovers} fail-overs, {self.respawns} "
            f"respawns, {self.drains} drains, {self.fallback_served} "
            f"fallback-served, {self.wire_errors} wire errors",
        ]
        for shard in self.shards:
            age = (
                "no heartbeat yet"
                if shard.heartbeat_age_seconds is None
                else f"beat {shard.heartbeat_age_seconds * 1000:.0f} ms ago"
            )
            lines.append(
                f"  shard {shard.shard_id}: {shard.state} "
                f"(pid {shard.pid}, {age}, {shard.outstanding} outstanding, "
                f"{shard.respawns} respawns, {shard.failed_over} failed over)"
            )
        return "\n".join(lines)
