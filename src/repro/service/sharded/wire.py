"""Wire protocol between the sharded front-end and its shard processes.

Every message crossing a shard pipe is one of the small picklable types
below.  The protocol is deliberately tiny — four parent→shard commands,
four shard→parent events — because everything interesting already lives
in the types the single-process service defined
(:class:`~repro.service.OptimizeRequest` /
:class:`~repro.service.OptimizeResponse`): the wire layer's only job is
to move them across a ``multiprocessing`` pipe **without dropping
detail**.

Response envelopes carry a real
:class:`~repro.resilience.optimizer.ResilientResult`, trimmed by
:func:`strip_response` of exactly two fields that cannot (and should
not) cross a process boundary:

* ``result.context`` — the per-query :class:`OptimizationContext` holds
  builder/provider machinery and, when telemetry is armed, thread locks;
* ``result.exact`` — the exact-rung envelope references the same
  context.

Everything else — the plan, cost, elapsed time, the full
:class:`~repro.resilience.optimizer.DegradationReport` (rung attempts,
budget, cost gap), optimizer counters, the query, injected-fault tallies
and breaker traces — survives the pipe bit-for-bit, and
``tests/service/test_wire.py`` walks the dataclass fields so a future
field cannot silently go missing.

Parent → shard:
    :class:`WireRequest`, :class:`DrainCommand`,
    :class:`ShutdownCommand`, :class:`HealthProbe`.

Shard → parent:
    :class:`Hello`, :class:`Heartbeat`, :class:`WireResponse`,
    :class:`WireShed`, :class:`Drained`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.query import Query
from repro.service.server import OptimizeResponse

__all__ = [
    "Drained",
    "DrainCommand",
    "Heartbeat",
    "HealthProbe",
    "Hello",
    "ShutdownCommand",
    "WireRequest",
    "WireResponse",
    "WireShed",
    "strip_response",
]


# -- parent -> shard --------------------------------------------------------


@dataclass(frozen=True)
class WireRequest:
    """One optimization request dispatched to a shard.

    ``request_id`` is cluster-global (assigned by the front-end), and
    ``seed`` is always explicit — the shard must never derive its own, or
    a failed-over request would change plans-irrelevant retry decisions
    depending on which shard served it.  ``deadline_seconds`` is the
    *remaining* allowance at dispatch time; the front-end shrinks it on
    every re-dispatch so fail-over never extends a request's budget.
    """

    request_id: int
    query: Query
    priority: int = 0
    deadline_seconds: Optional[float] = None
    seed: int = 0
    topk: int = 1


@dataclass(frozen=True)
class DrainCommand:
    """Finish every outstanding request, report :class:`Drained`, exit."""


@dataclass(frozen=True)
class ShutdownCommand:
    """Stop now; ``drain`` picks between finishing and failing backlog."""

    drain: bool = True


@dataclass(frozen=True)
class HealthProbe:
    """Ask the shard for an immediate :class:`Heartbeat` (out of cycle)."""


# -- shard -> parent --------------------------------------------------------


@dataclass(frozen=True)
class Hello:
    """First message a shard sends: it is alive and serving."""

    shard_id: int
    pid: int


@dataclass(frozen=True)
class Heartbeat:
    """Periodic liveness beacon plus the shard's local health snapshot.

    ``health`` is the shard's ``ServiceHealth.as_dict()`` (JSON-safe) and
    ``breaker_trace`` its reproducible breaker transition log, so the
    cluster ``healthz()`` can aggregate per-shard breaker state without a
    synchronous round trip.
    """

    shard_id: int
    sequence: int
    health: Dict[str, object] = field(default_factory=dict)
    breaker_trace: List[str] = field(default_factory=list)


@dataclass(frozen=True)
class WireResponse:
    """A completed request: the stripped :class:`OptimizeResponse`."""

    shard_id: int
    request_id: int
    response: OptimizeResponse


@dataclass(frozen=True)
class WireShed:
    """The shard's local admission queue rejected the request.

    The front-end re-routes the request to another shard (or fails it
    honestly with :class:`~repro.errors.ServiceOverloadError` when every
    shard is shedding) — a shed is back-pressure, never a lost request.
    """

    shard_id: int
    request_id: int
    queue_depth: int
    capacity: int


@dataclass(frozen=True)
class Drained:
    """Drain complete: backlog empty, responses flushed, exiting."""

    shard_id: int
    served: int


# ---------------------------------------------------------------------------


def strip_response(response: OptimizeResponse) -> OptimizeResponse:
    """A pickle-safe copy of ``response`` for the wire.

    Only ``result.context`` and ``result.exact`` are dropped (process-
    local machinery, see the module docstring); every serving field and
    the full degradation report cross unchanged.
    """
    result = response.result
    if result is not None and (
        result.context is not None or result.exact is not None
    ):
        result = dataclasses.replace(result, exact=None, context=None)
    return dataclasses.replace(response, result=result)
