"""Sharded multi-process serving tier.

``repro.service.sharded`` runs N copies of the single-process
:class:`~repro.service.OptimizationService` as supervised child
processes behind one front-end:

* :class:`ShardedService` — the facade: admission, routing, fail-over,
  the all-shards-down fallback lane, cluster ``healthz()``;
* :class:`ConsistentHashRouter` — consistent hashing on the WL query
  fingerprint, so isomorphic repeats keep landing on warm plan caches;
* :class:`~repro.service.sharded.supervisor.ShardSupervisor` /
  :class:`~repro.service.sharded.supervisor.ShardHandle` — heartbeat
  monitoring, crash detection, seeded-backoff respawn;
* :mod:`~repro.service.sharded.wire` — the picklable pipe protocol;
* :class:`ClusterHealth` — the aggregated health envelope.

See ``docs/service.md`` ("Sharded topology") for the operator view.
"""

from repro.service.sharded.health import ClusterHealth, ShardStatus
from repro.service.sharded.router import (
    DEFAULT_VIRTUAL_NODES,
    ConsistentHashRouter,
)
from repro.service.sharded.service import ShardedService
from repro.service.sharded.shard import ShardConfig, shard_main
from repro.service.sharded.supervisor import (
    RespawnBackoff,
    ShardHandle,
    ShardSupervisor,
    pick_mp_context,
)
from repro.service.sharded.wire import (
    Drained,
    DrainCommand,
    Heartbeat,
    HealthProbe,
    Hello,
    ShutdownCommand,
    WireRequest,
    WireResponse,
    WireShed,
    strip_response,
)

__all__ = [
    "ClusterHealth",
    "ConsistentHashRouter",
    "DEFAULT_VIRTUAL_NODES",
    "DrainCommand",
    "Drained",
    "HealthProbe",
    "Heartbeat",
    "Hello",
    "RespawnBackoff",
    "ShardConfig",
    "ShardHandle",
    "ShardStatus",
    "ShardSupervisor",
    "ShardedService",
    "ShutdownCommand",
    "WireRequest",
    "WireResponse",
    "WireShed",
    "pick_mp_context",
    "shard_main",
    "strip_response",
]
