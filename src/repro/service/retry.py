"""Retry policy: exponential backoff with seeded jitter, transient-only.

The service distinguishes two failure classes, mirroring the issue the
degradation ladder already settles for single runs:

* **transient** — injected component faults
  (:class:`~repro.errors.InjectedFaultError`), lost catalog statistics
  (:class:`~repro.errors.CatalogError`), and fast-fails from an open
  circuit (:class:`~repro.errors.CircuitOpenError`).  These may heal on
  their own, so the request is retried after an exponentially growing,
  jittered delay;
* **permanent** — everything else (budget exhaustion, structural errors).
  Retrying cannot help; the request goes straight down the degradation
  ladder and keeps whatever validated plan it produced.

Jitter is drawn from a ``random.Random`` seeded per request (the lint's
``seeded-rng`` rule applies here as everywhere), so a replayed request
stream backs off identically — concurrency changes *when* things run, the
seed decides *what* they decide.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple, Type

from repro.errors import CatalogError, CircuitOpenError, InjectedFaultError

__all__ = ["RetryPolicy", "TRANSIENT_ERRORS"]

#: Failure types the retry layer treats as transient.
TRANSIENT_ERRORS: Tuple[Type[BaseException], ...] = (
    InjectedFaultError,
    CatalogError,
    CircuitOpenError,
)


class RetryPolicy:
    """Backoff schedule and transient/permanent classification.

    Parameters
    ----------
    max_attempts:
        Total optimization attempts per request (first try included).
    base_delay:
        Backoff before the second attempt, in seconds.
    multiplier:
        Exponential growth factor between consecutive backoffs.
    max_delay:
        Ceiling on any single backoff.  The cap is enforced *after*
        jitter, so no computed delay ever exceeds it.
    jitter:
        Fraction of the delay added as seeded uniform jitter
        (``delay * (1 + jitter * U[0, 1))``, then clamped to
        ``max_delay``); 0 disables it.
    """

    def __init__(
        self,
        max_attempts: int = 5,
        base_delay: float = 0.02,
        multiplier: float = 2.0,
        max_delay: float = 0.5,
        jitter: float = 0.5,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be >= 0")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter

    @staticmethod
    def is_transient(error: BaseException) -> bool:
        """True for failures that may heal and deserve a retry."""
        return isinstance(error, TRANSIENT_ERRORS)

    def rng_for(self, seed: int) -> random.Random:
        """The per-request jitter RNG (deterministic for a request seed)."""
        return random.Random(seed)

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff before retry number ``attempt`` (1-based).

        ``attempt=1`` is the delay after the first failure.  With ``rng``
        the seeded jitter is applied; without it the deterministic base
        schedule is returned.  ``max_delay`` caps the final value either
        way — jitter widens the schedule below the cap, never above it.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = self.base_delay * self.multiplier ** (attempt - 1)
        if rng is not None and self.jitter > 0:
            delay *= 1.0 + self.jitter * rng.random()
        return min(self.max_delay, delay)

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base={self.base_delay * 1000:.0f}ms, "
            f"x{self.multiplier:g}, cap={self.max_delay * 1000:.0f}ms, "
            f"jitter={self.jitter:g})"
        )
