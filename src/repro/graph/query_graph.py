"""Query graphs.

A :class:`QueryGraph` is an undirected graph ``G = (V, E)`` whose vertices
stand for the base relations referenced by a query and whose edges stand for
join predicates.  Vertex sets are integer bitsets (see
:mod:`repro.graph.bitset`), so all neighborhood and connectivity operations
are plain bit algebra.

The graph is immutable after construction.  Statistics (cardinalities,
selectivities) deliberately live elsewhere, in :mod:`repro.catalog`: the
enumeration algorithms of the paper depend only on graph *shape*.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.errors import DisconnectedGraphError, GraphError
from repro.graph import bitset

__all__ = ["QueryGraph"]


class QueryGraph:
    """An immutable, undirected query graph over vertices ``0 .. n-1``.

    Parameters
    ----------
    n_vertices:
        Number of relations in the query.  Must be at least 1.
    edges:
        Iterable of ``(u, v)`` pairs with ``u != v``.  Duplicate edges and
        orientation are normalized away.
    """

    __slots__ = ("_n", "_edges", "_adjacency", "_all", "_nbr_cache")

    def __init__(self, n_vertices: int, edges: Iterable[Tuple[int, int]]):
        if n_vertices < 1:
            raise GraphError(f"a query graph needs >= 1 vertex, got {n_vertices}")
        self._n = n_vertices
        self._all = bitset.full_set(n_vertices)
        adjacency = [0] * n_vertices
        normalized = set()
        for u, v in edges:
            if u == v:
                raise GraphError(f"self-loop on vertex {u} is not a join edge")
            if not (0 <= u < n_vertices and 0 <= v < n_vertices):
                raise GraphError(
                    f"edge ({u}, {v}) out of range for {n_vertices} vertices"
                )
            normalized.add((min(u, v), max(u, v)))
            adjacency[u] |= bitset.singleton(v)
            adjacency[v] |= bitset.singleton(u)
        self._edges = frozenset(normalized)
        self._adjacency = tuple(adjacency)
        # subset -> N(subset) memo; see neighborhood().
        self._nbr_cache: dict = {}

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def n_vertices(self) -> int:
        """Number of vertices (relations)."""
        return self._n

    @property
    def all_vertices(self) -> int:
        """Bitset containing every vertex."""
        return self._all

    @property
    def edges(self) -> frozenset:
        """Normalized edge set as ``frozenset[(u, v)]`` with ``u < v``."""
        return self._edges

    def adjacency(self, vertex: int) -> int:
        """Bitset of the neighbors of a single vertex."""
        return self._adjacency[vertex]

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` when the join edge ``(u, v)`` exists."""
        return bitset.contains(self._adjacency[u], v)

    # ------------------------------------------------------------------
    # Neighborhoods and connectivity (the vocabulary of the paper, Def. 2.3)
    # ------------------------------------------------------------------

    def neighborhood(self, subset: int, within: int = -1) -> int:
        """Return ``N(subset)``: vertices outside ``subset`` adjacent to it.

        When ``within`` is given, the result is additionally intersected with
        that set, yielding the neighborhood inside an induced subgraph
        ``G|within``.
        """
        # The hottest call in the library (every partitioning strategy
        # funnels through it), and enumeration probes the same subsets over
        # and over — emit/reject/recurse visits each connected subgraph many
        # times.  Memoize the unrestricted N(subset); ``within`` is a cheap
        # mask applied after the lookup, so restricted probes share the
        # cache.  The graph is immutable, so entries never invalidate, and
        # the cache holds only subsets actually probed (bounded by the
        # enumeration's own work, not by 2^n).
        result = self._nbr_cache.get(subset)
        if result is None:
            result = 0
            remaining = subset
            # The lowest-bit trick stays inlined rather than paying a
            # bitset.iter_bits() generator per neighborhood probe.
            while remaining:
                low = remaining & -remaining  # repro: disable=bitset-discipline
                result |= self._adjacency[low.bit_length() - 1]  # repro: disable=bitset-discipline
                remaining ^= low
            result &= ~subset
            self._nbr_cache[subset] = result
        if within >= 0:
            result &= within
        return result

    def connected_component(self, start: int, within: int) -> int:
        """Return the connected component of ``G|within`` containing ``start``.

        ``start`` is a singleton bitset that must be a subset of ``within``.
        """
        component = start
        frontier = start
        while frontier:
            frontier = self.neighborhood(frontier, within) & ~component
            component |= frontier
        return component

    def is_connected(self, subset: int) -> bool:
        """Return ``True`` when the induced subgraph ``G|subset`` is connected.

        The empty set is considered *not* connected; singletons are connected.
        """
        if not subset:
            return False
        start = bitset.lowest_bit(subset)
        return self.connected_component(start, subset) == subset

    def connected_components(self, subset: int) -> List[int]:
        """Split ``subset`` into the connected components of ``G|subset``."""
        components = []
        remaining = subset
        while remaining:
            start = bitset.lowest_bit(remaining)
            component = self.connected_component(start, remaining)
            components.append(component)
            remaining &= ~component
        return components

    def are_connected(self, left: int, right: int) -> bool:
        """Return ``True`` when some edge joins ``left`` and ``right``."""
        return bool(self.neighborhood(left) & right)

    def require_connected(self, subset: int) -> None:
        """Raise :class:`DisconnectedGraphError` unless ``G|subset`` connects."""
        if not self.is_connected(subset):
            raise DisconnectedGraphError(
                f"vertex set {bitset.format_set(subset)} does not induce a "
                "connected subgraph"
            )

    # ------------------------------------------------------------------
    # Edge iteration helpers used by cost estimation
    # ------------------------------------------------------------------

    def edges_between(self, left: int, right: int) -> Iterator[Tuple[int, int]]:
        """Yield normalized edges with one endpoint in each input set."""
        for u, v in self._edges:
            u_bit = bitset.singleton(u)
            v_bit = bitset.singleton(v)
            if (u_bit & left and v_bit & right) or (u_bit & right and v_bit & left):
                yield (u, v)

    def edges_within(self, subset: int) -> Iterator[Tuple[int, int]]:
        """Yield normalized edges whose both endpoints lie in ``subset``."""
        for u, v in self._edges:
            if bitset.contains(subset, u) and bitset.contains(subset, v):
                yield (u, v)

    # ------------------------------------------------------------------
    # Relabeling (advancement 6 re-numbers vertices)
    # ------------------------------------------------------------------

    def relabel(self, mapping: Sequence[int]) -> "QueryGraph":
        """Return a new graph with vertex ``i`` renamed to ``mapping[i]``.

        ``mapping`` must be a permutation of ``range(n_vertices)``.
        """
        if sorted(mapping) != list(range(self._n)):
            raise GraphError("relabel mapping must be a permutation of vertices")
        return QueryGraph(
            self._n, ((mapping[u], mapping[v]) for u, v in self._edges)
        )

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryGraph):
            return NotImplemented
        return self._n == other._n and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self._n, self._edges))

    def __repr__(self) -> str:
        return (
            f"QueryGraph(n_vertices={self._n}, "
            f"edges={sorted(self._edges)})"
        )
