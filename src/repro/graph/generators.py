"""Query-graph shape generators.

The paper's workload (§V-B) uses six graph families: chain, star, cycle and
clique queries plus random acyclic and random cyclic graphs.  The random
families are built exactly as described: edges are added by drawing two
relation indices from uniform random numbers; acyclic graphs are uniform
random spanning trees, cyclic graphs are a random spanning tree plus extra
random edges.

All functions return a plain :class:`~repro.graph.query_graph.QueryGraph`;
attaching statistics is the workload generator's job.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.errors import GraphError
from repro.graph.query_graph import QueryGraph

__all__ = [
    "DEFAULT_SEED",
    "chain_graph",
    "star_graph",
    "cycle_graph",
    "clique_graph",
    "random_acyclic_graph",
    "random_cyclic_graph",
    "GRAPH_FAMILIES",
]


#: Seed of the fallback RNG used when callers do not thread their own.
#: A *fixed* default keeps every workload deterministic by construction; the
#: suite generator always passes an explicit per-query RNG, so this only
#: affects ad-hoc callers.
DEFAULT_SEED = 0x5EED


def _require_size(n: int, minimum: int, family: str) -> None:
    if n < minimum:
        raise GraphError(f"a {family} query needs >= {minimum} relations, got {n}")


def chain_graph(n: int) -> QueryGraph:
    """Chain query: ``R0 - R1 - ... - R(n-1)``."""
    _require_size(n, 1, "chain")
    return QueryGraph(n, ((i, i + 1) for i in range(n - 1)))


def star_graph(n: int) -> QueryGraph:
    """Star query: vertex 0 is the hub (fact table), all others are leaves."""
    _require_size(n, 1, "star")
    return QueryGraph(n, ((0, i) for i in range(1, n)))


def cycle_graph(n: int) -> QueryGraph:
    """Cycle query: a chain closed back from ``R(n-1)`` to ``R0``."""
    _require_size(n, 3, "cycle")
    edges = [(i, i + 1) for i in range(n - 1)]
    edges.append((n - 1, 0))
    return QueryGraph(n, edges)


def clique_graph(n: int) -> QueryGraph:
    """Clique query: every pair of relations is joined."""
    _require_size(n, 1, "clique")
    return QueryGraph(
        n, ((i, j) for i in range(n) for j in range(i + 1, n))
    )


def random_acyclic_graph(n: int, rng: Optional[random.Random] = None) -> QueryGraph:
    """Random acyclic (tree-shaped) query of ``n`` relations.

    Each new vertex ``i`` attaches to a uniformly random earlier vertex,
    which produces a random recursive tree — the natural reading of
    "edges are randomly added by selecting two relation's indices using
    uniformly distributed random numbers" under the acyclicity constraint.

    Without an explicit ``rng`` the fixed :data:`DEFAULT_SEED` is used, so
    repeated calls return the *same* graph — reproducibility over variety.
    """
    _require_size(n, 1, "random acyclic")
    rng = rng if rng is not None else random.Random(DEFAULT_SEED)
    edges = [(rng.randrange(i), i) for i in range(1, n)]
    return QueryGraph(n, edges)


def random_cyclic_graph(
    n: int,
    extra_edges: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> QueryGraph:
    """Random connected cyclic query of ``n`` relations.

    Builds a random spanning tree first (guaranteeing connectivity, as the
    paper presumes connected query graphs) and then adds ``extra_edges``
    uniformly random non-tree edges.  The default adds ``ceil(n / 2)`` extra
    edges, which lands between the cycle and clique extremes the paper
    discusses.

    Without an explicit ``rng`` the fixed :data:`DEFAULT_SEED` is used, so
    repeated calls return the *same* graph — reproducibility over variety.
    """
    _require_size(n, 3, "random cyclic")
    rng = rng if rng is not None else random.Random(DEFAULT_SEED)
    edges = {(rng.randrange(i), i) for i in range(1, n)}
    if extra_edges is None:
        extra_edges = (n + 1) // 2
    possible = n * (n - 1) // 2
    target = min(len(edges) + extra_edges, possible)
    attempts = 0
    # Rejection sampling: the edge budget is far below the clique bound for
    # the sizes we use, so this terminates quickly; the attempt cap is a
    # safety net for adversarial parameters.
    while len(edges) < target and attempts < 100 * possible:
        u = rng.randrange(n)
        v = rng.randrange(n)
        attempts += 1
        if u == v:
            continue
        edges.add((min(u, v), max(u, v)))
    return QueryGraph(n, edges)


def _normalize_edges(graph: QueryGraph) -> List[Tuple[int, int]]:
    return sorted(graph.edges)


#: Family name -> generator callable taking ``(n, rng)``.
GRAPH_FAMILIES = {
    "chain": lambda n, rng=None: chain_graph(n),
    "star": lambda n, rng=None: star_graph(n),
    "cycle": lambda n, rng=None: cycle_graph(n),
    "clique": lambda n, rng=None: clique_graph(n),
    "acyclic": lambda n, rng=None: random_acyclic_graph(n, rng),
    "cyclic": lambda n, rng=None: random_cyclic_graph(n, rng=rng),
}
