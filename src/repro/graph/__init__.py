"""Query-graph substrate: bitsets, graphs, shape generators, renumbering."""

from repro.graph.generators import (
    chain_graph,
    clique_graph,
    cycle_graph,
    random_acyclic_graph,
    random_cyclic_graph,
    star_graph,
)
from repro.graph.query_graph import QueryGraph

__all__ = [
    "QueryGraph",
    "chain_graph",
    "star_graph",
    "cycle_graph",
    "clique_graph",
    "random_acyclic_graph",
    "random_cyclic_graph",
]
