"""Vertex sets represented as integer bitsets.

The whole library encodes a set of query-graph vertices as a plain Python
``int`` whose bit ``i`` is set when vertex ``i`` is a member.  Integers are
immutable and hashable, which makes them perfect memotable keys, and Python's
big-integer bit operations are the fastest set algebra available without
native extensions.

All helpers here are free functions operating on such integers.  They are the
single place in the code base that knows about the encoding; everything else
goes through this vocabulary (``singleton``, ``union`` is ``|``, etc.).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

__all__ = [
    "EMPTY",
    "singleton",
    "full_set",
    "from_iterable",
    "to_list",
    "iter_bits",
    "bit_count",
    "lowest_bit",
    "lowest_index",
    "highest_bit",
    "highest_index",
    "is_subset",
    "contains",
    "without",
    "iter_subsets",
    "format_set",
]

#: The empty vertex set.
EMPTY = 0


def singleton(index: int) -> int:
    """Return the set containing exactly vertex ``index``."""
    if index < 0:
        raise ValueError(f"vertex index must be non-negative, got {index}")
    return 1 << index


def full_set(n: int) -> int:
    """Return the set containing every vertex ``0 .. n-1``."""
    if n < 0:
        raise ValueError(f"vertex count must be non-negative, got {n}")
    return (1 << n) - 1


def from_iterable(indices: Iterable[int]) -> int:
    """Build a set from an iterable of vertex indices."""
    result = 0
    for index in indices:
        result |= singleton(index)
    return result


def to_list(bitset: int) -> List[int]:
    """Return the member indices of ``bitset`` in ascending order."""
    return list(iter_bits(bitset))


def iter_bits(bitset: int) -> Iterator[int]:
    """Yield the member indices of ``bitset`` in ascending order."""
    while bitset:
        low = bitset & -bitset
        yield low.bit_length() - 1
        bitset ^= low


def _bit_count_portable(bitset: int) -> int:
    """Return the cardinality of the set (portable Python 3.9 spelling)."""
    return bin(bitset).count("1")


def _bit_count_native(bitset: int) -> int:
    """Return the cardinality of the set via :meth:`int.bit_count`."""
    return bitset.bit_count()


#: Return the cardinality of the set.
#:
#: ``int.bit_count()`` landed in Python 3.10 (bpo-29882); dispatch once at
#: import time so every hot loop pays a plain function call rather than a
#: per-call version check.  The portable ``bin(s).count("1")`` spelling
#: stays importable for the 3.9 floor (pyproject: ``requires-python >=
#: 3.9``) and for the implementation-parity test.
bit_count = (
    _bit_count_native if hasattr(int, "bit_count") else _bit_count_portable
)


def lowest_bit(bitset: int) -> int:
    """Return the singleton set of the lowest member (0 for the empty set)."""
    return bitset & -bitset


def lowest_index(bitset: int) -> int:
    """Return the index of the lowest member of a non-empty set."""
    if not bitset:
        raise ValueError("empty bitset has no lowest index")
    return (bitset & -bitset).bit_length() - 1


def highest_bit(bitset: int) -> int:
    """Return the singleton set of the highest member (0 for the empty set)."""
    if not bitset:
        return 0
    return 1 << (bitset.bit_length() - 1)


def highest_index(bitset: int) -> int:
    """Return the index of the highest member of a non-empty set."""
    if not bitset:
        raise ValueError("empty bitset has no highest index")
    return bitset.bit_length() - 1


def is_subset(small: int, big: int) -> bool:
    """Return ``True`` when every member of ``small`` is in ``big``."""
    return small & ~big == 0


def contains(bitset: int, index: int) -> bool:
    """Return ``True`` when vertex ``index`` is a member of ``bitset``."""
    return bool(bitset >> index & 1)


def without(bitset: int, other: int) -> int:
    """Return the set difference ``bitset \\ other``."""
    return bitset & ~other


def iter_subsets(bitset: int) -> Iterator[int]:
    """Yield all non-empty proper-or-improper subsets of ``bitset``.

    Uses the classic descending-subset trick ``s = (s - 1) & bitset``
    (Vance & Maier, SIGMOD'96), which enumerates every subset exactly once.
    The improper subset (``bitset`` itself) is yielded first and the empty
    set is never yielded.
    """
    subset = bitset
    while subset:
        yield subset
        subset = (subset - 1) & bitset


def format_set(bitset: int, prefix: str = "R") -> str:
    """Render a bitset as ``{R0, R2, R5}`` for logs and ``repr``s."""
    members = ", ".join(f"{prefix}{i}" for i in iter_bits(bitset))
    return "{" + members + "}"
