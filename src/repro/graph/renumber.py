"""Graph renumbering from a heuristic join tree (§IV-D, advancement 6).

The partitioning algorithms pick the next neighbor as the least significant
bit of the remaining-neighborhood bitset, so vertex numbering determines
enumeration order.  Advancement 6 renumbers the vertices by a breadth-first
traversal of the join tree produced by the heuristic: relations that the
heuristic joins near the root get the smallest indices, so the heuristic's
tree and subtrees are mostly planned first — and, with the GOO upper bounds
seeded, immediately give tight budgets to everything planned afterwards.
"""

from __future__ import annotations

from collections import deque
from typing import List, Sequence

from repro.graph import bitset
from repro.plans.join_tree import JoinNode, JoinTree, LeafNode

__all__ = ["bfs_leaf_order", "renumber_mapping", "invert_mapping", "remap_bitset"]


def bfs_leaf_order(tree: JoinTree) -> List[int]:
    """Relation indices in breadth-first traversal order of the tree."""
    order: List[int] = []
    queue = deque([tree])
    while queue:
        node = queue.popleft()
        if isinstance(node, LeafNode):
            order.append(node.relation)
        elif isinstance(node, JoinNode):
            queue.append(node.left)
            queue.append(node.right)
        else:  # pragma: no cover - trees only contain these two node kinds
            raise TypeError(f"unexpected join tree node {type(node).__name__}")
    return order


def renumber_mapping(tree: JoinTree, n_vertices: int) -> List[int]:
    """``mapping[old_index] = new_index`` from the BFS leaf order.

    The first leaf encountered breadth-first becomes vertex 0 and so on;
    relations missing from the tree (never the case for complete join
    trees) would keep trailing indices.
    """
    order = bfs_leaf_order(tree)
    mapping = [-1] * n_vertices
    next_index = 0
    for relation in order:
        if mapping[relation] == -1:
            mapping[relation] = next_index
            next_index += 1
    for relation in range(n_vertices):
        if mapping[relation] == -1:
            mapping[relation] = next_index
            next_index += 1
    return mapping


def invert_mapping(mapping: Sequence[int]) -> List[int]:
    """Inverse permutation: ``inverse[mapping[i]] = i``."""
    inverse = [-1] * len(mapping)
    for old_index, new_index in enumerate(mapping):
        inverse[new_index] = old_index
    return inverse


def remap_bitset(vertex_set: int, mapping: Sequence[int]) -> int:
    """Translate a vertex-set bitset through a renumbering."""
    result = 0
    for index in bitset.iter_bits(vertex_set):
        result |= bitset.singleton(mapping[index])
    return result
