"""Paper-vs-measured report generation.

Reads the JSON artifacts the experiment drivers wrote to ``results/`` and
produces a markdown report comparing the measured shape against the
paper's published claims — the machinery behind ``EXPERIMENTS.md`` and the
``python -m repro.bench report`` subcommand.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

__all__ = ["load_results", "render_report", "CLAIMS"]

#: Paper claims checked against measured data.  Each entry: a headline, the
#: paper's published value/shape, and a callable extracting the measured
#: value from the results directory payloads (returns None when the needed
#: artifact has not been generated yet).


def _table2(results: Dict) -> Optional[Dict]:
    return results.get("table2")


def _ratio(results, family, slow_label, fast_label):
    payload = _table2(results)
    if payload is None:
        return None
    rows = payload[family]["algorithms"]
    return (
        rows[slow_label]["normed_time"]["avg"]
        / rows[fast_label]["normed_time"]["avg"]
    )


def _claim_apcbi_vs_apcb(results: Dict) -> Optional[str]:
    ratios = []
    for family in ("cycle", "clique", "acyclic", "cyclic", "chain"):
        for label in ("TDMcL", "TDMcB", "TDMcC"):
            value = _ratio(results, family, f"{label}_APCB", f"{label}_APCBI")
            if value is None:
                return None
            ratios.append(value)
    return f"avg factor {min(ratios):.1f}-{max(ratios):.1f} (per family/enumerator)"


def _claim_worst_case(results: Dict) -> Optional[str]:
    payload = _table2(results)
    if payload is None:
        return None
    worst_apcb = max(
        payload[family]["algorithms"][f"{label}_APCB"]["normed_time"]["max"]
        for family in payload
        for label in ("TDMcL", "TDMcB", "TDMcC")
    )
    worst_apcbi = max(
        payload[family]["algorithms"][f"{label}_APCBI"]["normed_time"]["max"]
        for family in payload
        for label in ("TDMcL", "TDMcB", "TDMcC")
    )
    return (
        f"worst normed time {worst_apcb:.1f}x (APCB) vs "
        f"{worst_apcbi:.1f}x (APCBI), factor {worst_apcb / worst_apcbi:.1f}"
    )


def _claim_headline(results: Dict) -> Optional[str]:
    values = []
    for family in ("acyclic", "cyclic"):
        value = _ratio(results, family, "TDMcL_APCB", "TDMcC_APCBI")
        if value is None:
            return None
        values.append(f"{family} {value:.1f}x")
    return ", ".join(values)


def _claim_star_counters(results: Dict) -> Optional[str]:
    payload = results.get("table3") or _table2(results)
    if payload is None:
        return None
    rows = payload["star"]["algorithms"]
    avg_s = [rows[f"{l}_APCBI"]["avg_s"] for l in ("TDMcL", "TDMcB", "TDMcC")]
    return f"star avg_s = {min(avg_s):.2f}-{max(avg_s):.2f}"


def _claim_apcbi_opt(results: Dict) -> Optional[str]:
    payload = results.get("figure15")
    if payload is None:
        return None
    gains = []
    for family, bars in payload.items():
        if bars["APCBI"] > 0:
            gains.append(1.0 - bars["APCBI_Opt"] / bars["APCBI"])
    if not gains:
        return None
    return f"APCBI_Opt improves APCBI by {100 * max(gains):.0f}% at most"


CLAIMS = (
    (
        "APCBI vs APCB average speedup",
        "factor 2-5 on average (abstract)",
        _claim_apcbi_vs_apcb,
    ),
    (
        "Worst-case behaviour",
        "improved by a factor of 10-98 (§I)",
        _claim_worst_case,
    ),
    (
        "TDMcC_APCBI vs TDMcL_APCB",
        "factor 6-9 (abstract); ~9 acyclic, >6 cyclic (§V-D)",
        _claim_headline,
    ),
    (
        "Star queries disable pruning",
        "avg_s = 1 for all bounding algorithms (§V-D.1)",
        _claim_star_counters,
    ),
    (
        "Little headroom above APCBI",
        "APCBI_Opt at most 24% better (§V-D.3)",
        _claim_apcbi_opt,
    ),
)


def load_results(
    results_dir: Path, skipped: Optional[List[str]] = None
) -> Dict[str, Dict]:
    """Load every ``<experiment>.json`` under ``results_dir``.

    Unparseable files are not silently dropped: their names are appended to
    ``skipped`` (when given), so the report can say which artifacts were
    ignored instead of presenting a truncated result set as complete.
    """
    results: Dict[str, Dict] = {}
    for path in sorted(Path(results_dir).glob("*.json")):
        try:
            results[path.stem] = json.loads(path.read_text())
        except json.JSONDecodeError:
            if skipped is not None:
                skipped.append(path.name)
    return results


def render_report(results_dir: Path) -> str:
    """Markdown paper-vs-measured summary from the results directory."""
    skipped: List[str] = []
    results = load_results(results_dir, skipped=skipped)
    lines: List[str] = [
        "# Paper vs. measured",
        "",
        f"Artifacts found: {', '.join(sorted(results)) or '(none)'}",
        *(
            [f"Artifacts skipped (unparseable): {', '.join(skipped)}"]
            if skipped
            else []
        ),
        "",
        "| Claim | Paper | Measured |",
        "|---|---|---|",
    ]
    for headline, paper_value, extractor in CLAIMS:
        measured = extractor(results)
        lines.append(
            f"| {headline} | {paper_value} | "
            f"{measured if measured is not None else 'run the experiments first'} |"
        )
    return "\n".join(lines)
