"""Text rendering of the paper's tables from harness measurements.

Formats follow the paper: Table II prints min/max/avg normed runtimes per
algorithm and graph family with DPccp's absolute seconds in the first row;
Table III prints avg/max of the normed success (*s*) and failure (*f*)
counters.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.harness import WorkloadMeasurement

__all__ = ["render_table2", "render_table3", "render_series"]


def _fmt(value: float, suffix: str = " x") -> str:
    if value != value:  # NaN
        return "      -  "
    return f"{value:9.4f}{suffix}"


def render_table2(
    families: Dict[str, WorkloadMeasurement], labels: Sequence[str]
) -> str:
    """Table II: min/max/avg normed runtimes per family and algorithm."""
    lines: List[str] = []
    family_names = list(families)
    header = f"{'Algorithm':<22}" + "".join(
        f"{name + ' min':>12}{name + ' max':>12}{name + ' avg':>12}"
        for name in family_names
    )
    lines.append(header)
    lines.append("-" * len(header))
    dpccp_cells = []
    for name in family_names:
        summary = families[name].dpccp_summary()
        dpccp_cells.append(
            f"{summary.minimum:10.4f}s {summary.maximum:10.4f}s {summary.average:10.4f}s"
        )
    lines.append(f"{'DPccp (seconds)':<22}" + " ".join(dpccp_cells))
    for label in labels:
        cells = []
        for name in family_names:
            summary = families[name].normed_time_summary(label)
            cells.append(
                f"{_fmt(summary.minimum)}{_fmt(summary.maximum)}{_fmt(summary.average)}"
            )
        lines.append(f"{label:<22}" + "".join(cells))
    return "\n".join(lines)


def render_table3(
    families: Dict[str, WorkloadMeasurement], labels: Sequence[str]
) -> str:
    """Table III: avg/max of normed built (s) and failed (f) counters."""
    lines: List[str] = []
    family_names = list(families)
    header = f"{'Algorithm':<22}" + "".join(
        f"{name + ' avg_s':>12}{name + ' max_s':>12}"
        f"{name + ' avg_f':>12}{name + ' max_f':>12}"
        for name in family_names
    )
    lines.append(header)
    lines.append("-" * len(header))
    for label in labels:
        cells = []
        for name in family_names:
            success = families[name].success_summary(label)
            failed = families[name].failed_summary(label)
            cells.append(
                f"{_fmt(success.average, '  ')}{_fmt(success.maximum, '  ')}"
                f"{_fmt(failed.average, '  ')}{_fmt(failed.maximum, '  ')}"
            )
        lines.append(f"{label:<22}" + "".join(cells))
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    series: Dict[str, Dict[int, float]],
    y_format: str = "{:10.4f}",
) -> str:
    """Render per-size series (the scaling figures) as an aligned table."""
    lines = [title]
    sizes = sorted({x for values in series.values() for x in values})
    header = f"{x_label:>8}" + "".join(f"{label:>18}" for label in series)
    lines.append(header)
    lines.append("-" * len(header))
    for size in sizes:
        row = [f"{size:>8}"]
        for label, values in series.items():
            if size in values:
                row.append(f"{y_format.format(values[size]):>18}")
            else:
                row.append(f"{'-':>18}")
        lines.append("".join(row))
    return "\n".join(lines)
