"""Measurement harness (§V-C).

Runs a matrix of (enumerator, pruning) algorithms over a workload and
reports *normed times*: each algorithm's elapsed time divided by DPccp's
elapsed time on the same query.  Normed time divides out the substrate's
constant factor, which is what makes a pure-Python reproduction comparable
in shape to the paper's C++ numbers (see DESIGN.md §3).

Besides times, the harness collects the Table III counters: the number of
plan classes successfully built (*s*) and the number of failed build passes
(*f*), both normalized by the number of plan classes DPccp builds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.advancements import AdvancementConfig
from repro.core.optimizer import Optimizer, algorithm_label, run_dpccp
from repro.cost.compare import costs_close
from repro.cost.haas import HaasCostModel
from repro.cost.model import CostModel
from repro.query import Query

__all__ = [
    "AlgorithmSpec",
    "QueryMeasurement",
    "WorkloadMeasurement",
    "NormedSummary",
    "PAPER_ALGORITHMS",
    "CHART_ALGORITHMS",
    "run_query_matrix",
    "run_workload",
]


@dataclass(frozen=True)
class AlgorithmSpec:
    """One column of the evaluation: an enumerator + pruning combination."""

    enumerator: str
    pruning: str
    config: Optional[AdvancementConfig] = None
    #: Display override; defaults to the paper's Table I name.
    display: str = ""

    @property
    def label(self) -> str:
        return self.display or algorithm_label(self.enumerator, self.pruning)


def _specs(enumerators: Iterable[str], prunings: Iterable[str]) -> List[AlgorithmSpec]:
    return [
        AlgorithmSpec(enumerator, pruning)
        for enumerator in enumerators
        for pruning in prunings
    ]


#: The 15 top-down combinations of Table I / Table II.
PAPER_ALGORITHMS: Tuple[AlgorithmSpec, ...] = tuple(
    _specs(
        ("mincut_lazy", "mincut_branch", "mincut_conservative"),
        ("none", "pcb", "apcb", "apcbi", "apcbi_opt"),
    )
)

#: The subset shown in the paper's runtime charts (§V-C, last paragraph).
CHART_ALGORITHMS: Tuple[AlgorithmSpec, ...] = (
    AlgorithmSpec("mincut_lazy", "none"),
    AlgorithmSpec("mincut_lazy", "apcb"),
    AlgorithmSpec("mincut_branch", "apcb"),
    AlgorithmSpec("mincut_branch", "apcbi"),
    AlgorithmSpec("mincut_conservative", "apcbi"),
)


@dataclass
class QueryMeasurement:
    """All measurements taken for one query."""

    query: Query
    dpccp_seconds: float
    dpccp_classes: int
    #: label -> normed time (algorithm seconds / DPccp seconds).
    normed_times: Dict[str, float] = field(default_factory=dict)
    #: label -> normed successful class builds (Table III "s").
    normed_success: Dict[str, float] = field(default_factory=dict)
    #: label -> normed failed build passes (Table III "f").
    normed_failed: Dict[str, float] = field(default_factory=dict)

    @property
    def n_relations(self) -> int:
        return self.query.n_relations

    @property
    def family(self) -> str:
        return self.query.family


@dataclass
class NormedSummary:
    """min / max / avg of a series of normed values."""

    minimum: float
    maximum: float
    average: float
    count: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "NormedSummary":
        if not values:
            return cls(float("nan"), float("nan"), float("nan"), 0)
        return cls(min(values), max(values), sum(values) / len(values), len(values))


@dataclass
class WorkloadMeasurement:
    """Measurements for a whole workload (one graph family, typically)."""

    measurements: List[QueryMeasurement]
    labels: List[str]

    def normed_time_summary(self, label: str) -> NormedSummary:
        return NormedSummary.of(
            [m.normed_times[label] for m in self.measurements if label in m.normed_times]
        )

    def success_summary(self, label: str) -> NormedSummary:
        return NormedSummary.of(
            [
                m.normed_success[label]
                for m in self.measurements
                if label in m.normed_success
            ]
        )

    def failed_summary(self, label: str) -> NormedSummary:
        return NormedSummary.of(
            [
                m.normed_failed[label]
                for m in self.measurements
                if label in m.normed_failed
            ]
        )

    def dpccp_summary(self) -> NormedSummary:
        return NormedSummary.of([m.dpccp_seconds for m in self.measurements])

    def normed_times(self, label: str) -> List[float]:
        """Raw normed-time series (density plots, Figs. 8 and 14)."""
        return [
            m.normed_times[label] for m in self.measurements if label in m.normed_times
        ]

    def by_size(self, label: str) -> Dict[int, float]:
        """Average normed time per relation count (scaling charts)."""
        buckets: Dict[int, List[float]] = {}
        for m in self.measurements:
            if label in m.normed_times:
                buckets.setdefault(m.n_relations, []).append(m.normed_times[label])
        return {n: sum(v) / len(v) for n, v in sorted(buckets.items())}

    def dpccp_by_size(self) -> Dict[int, float]:
        """Average DPccp seconds per relation count."""
        buckets: Dict[int, List[float]] = {}
        for m in self.measurements:
            buckets.setdefault(m.n_relations, []).append(m.dpccp_seconds)
        return {n: sum(v) / len(v) for n, v in sorted(buckets.items())}


def run_query_matrix(
    query: Query,
    algorithms: Sequence[AlgorithmSpec],
    cost_model_factory: Callable[[], CostModel] = HaasCostModel,
    check_costs: bool = True,
) -> QueryMeasurement:
    """Measure DPccp plus every algorithm on one query.

    With ``check_costs`` every algorithm's plan cost is verified against
    DPccp's (pruning must preserve optimality); a mismatch raises, because a
    benchmark of an incorrect optimizer is meaningless.
    """
    baseline = run_dpccp(query, cost_model_factory)
    measurement = QueryMeasurement(
        query=query,
        dpccp_seconds=baseline.elapsed,
        dpccp_classes=max(1, baseline.stats.plan_classes_built),
    )
    for spec in algorithms:
        optimizer = Optimizer(
            enumerator=spec.enumerator,
            pruning=spec.pruning,
            cost_model_factory=cost_model_factory,
            config=spec.config,
        )
        result = optimizer.optimize(query)
        if check_costs and not costs_close(result.cost, baseline.cost, rel=1e-6):
            raise AssertionError(
                f"{spec.label} returned cost {result.cost!r} but DPccp found "
                f"{baseline.cost!r} on {query.describe()}"
            )
        denominator = max(baseline.elapsed, 1e-9)
        measurement.normed_times[spec.label] = result.elapsed / denominator
        measurement.normed_success[spec.label] = (
            result.stats.plan_classes_built / measurement.dpccp_classes
        )
        measurement.normed_failed[spec.label] = (
            result.stats.failed_builds / measurement.dpccp_classes
        )
    return measurement


def run_workload(
    queries: Sequence[Query],
    algorithms: Sequence[AlgorithmSpec],
    cost_model_factory: Callable[[], CostModel] = HaasCostModel,
    check_costs: bool = True,
    progress: Optional[Callable[[int, int], None]] = None,
) -> WorkloadMeasurement:
    """Measure a whole workload; see :func:`run_query_matrix`."""
    measurements = []
    for index, query in enumerate(queries):
        measurements.append(
            run_query_matrix(query, algorithms, cost_model_factory, check_costs)
        )
        if progress is not None:
            progress(index + 1, len(queries))
    return WorkloadMeasurement(
        measurements=measurements, labels=[spec.label for spec in algorithms]
    )
