"""Measurement harness (§V-C).

Runs a matrix of (enumerator, pruning) algorithms over a workload and
reports *normed times*: each algorithm's elapsed time divided by DPccp's
elapsed time on the same query.  Normed time divides out the substrate's
constant factor, which is what makes a pure-Python reproduction comparable
in shape to the paper's C++ numbers (see DESIGN.md §3).

Besides times, the harness collects the Table III counters: the number of
plan classes successfully built (*s*) and the number of failed build passes
(*f*), both normalized by the number of plan classes DPccp builds.

The harness is *crash-proof*: per-query budgets (``budget_factory``) bound
every optimizer run, failures are recorded in each measurement's
``failures`` section (timeout / error / degraded) instead of propagating,
and ``run_workload`` can checkpoint completed queries to a JSONL file so an
interrupted run resumes without redoing finished work.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.context import PlanCache
from repro.core.advancements import AdvancementConfig
from repro.core.optimizer import Optimizer, algorithm_label, run_dpccp
from repro.cost.compare import costs_close
from repro.cost.haas import HaasCostModel
from repro.cost.model import CostModel
from repro.errors import BudgetExceeded, ReproError
from repro.query import Query
from repro.resilience.budget import Budget
from repro.resilience.optimizer import ResilientOptimizer

__all__ = [
    "AlgorithmSpec",
    "QueryMeasurement",
    "WorkloadMeasurement",
    "NormedSummary",
    "FailureCounts",
    "PAPER_ALGORITHMS",
    "CHART_ALGORITHMS",
    "run_query_matrix",
    "run_workload",
    "load_checkpoint",
]

#: Failures a single optimizer run may produce that must not take down a
#: whole workload: library errors, join-tree construction on corrupted
#: state, arithmetic blowups, runaway recursion.
_QUERY_FAILURES = (ReproError, ValueError, ArithmeticError, RecursionError)


@dataclass(frozen=True)
class AlgorithmSpec:
    """One column of the evaluation: an enumerator + pruning combination."""

    enumerator: str
    pruning: str
    config: Optional[AdvancementConfig] = None
    #: Display override; defaults to the paper's Table I name.
    display: str = ""

    @property
    def label(self) -> str:
        return self.display or algorithm_label(self.enumerator, self.pruning)


def _specs(enumerators: Iterable[str], prunings: Iterable[str]) -> List[AlgorithmSpec]:
    return [
        AlgorithmSpec(enumerator, pruning)
        for enumerator in enumerators
        for pruning in prunings
    ]


#: The 15 top-down combinations of Table I / Table II.
PAPER_ALGORITHMS: Tuple[AlgorithmSpec, ...] = tuple(
    _specs(
        ("mincut_lazy", "mincut_branch", "mincut_conservative"),
        ("none", "pcb", "apcb", "apcbi", "apcbi_opt"),
    )
)

#: The subset shown in the paper's runtime charts (§V-C, last paragraph).
CHART_ALGORITHMS: Tuple[AlgorithmSpec, ...] = (
    AlgorithmSpec("mincut_lazy", "none"),
    AlgorithmSpec("mincut_lazy", "apcb"),
    AlgorithmSpec("mincut_branch", "apcb"),
    AlgorithmSpec("mincut_branch", "apcbi"),
    AlgorithmSpec("mincut_conservative", "apcbi"),
)


@dataclass
class QueryMeasurement:
    """All measurements taken for one query."""

    query: Query
    dpccp_seconds: float
    dpccp_classes: int
    #: label -> normed time (algorithm seconds / DPccp seconds).
    normed_times: Dict[str, float] = field(default_factory=dict)
    #: label -> normed successful class builds (Table III "s").
    normed_success: Dict[str, float] = field(default_factory=dict)
    #: label -> normed failed build passes (Table III "f").
    normed_failed: Dict[str, float] = field(default_factory=dict)
    #: label -> failure reason ("timeout", "error: ...", "degraded: <rung>",
    #: "skipped: ...").  Labels absent here completed normally.
    failures: Dict[str, str] = field(default_factory=dict)

    @property
    def n_relations(self) -> int:
        return self.query.n_relations

    @property
    def family(self) -> str:
        return self.query.family

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class NormedSummary:
    """min / max / avg of a series of normed values."""

    minimum: float
    maximum: float
    average: float
    count: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "NormedSummary":
        if not values:
            return cls(float("nan"), float("nan"), float("nan"), 0)
        return cls(min(values), max(values), sum(values) / len(values), len(values))


@dataclass(frozen=True)
class FailureCounts:
    """How many per-query runs ended in each failure class.

    ``retries`` and ``breaker_trips`` extend the taxonomy for service-mode
    runs (:mod:`repro.bench.service`): they count *recoveries*, not lost
    queries — a retried request that eventually returned a plan appears in
    ``retries`` but in none of the failure classes — so neither
    contributes to :attr:`total`.
    """

    timeouts: int = 0
    errors: int = 0
    degraded: int = 0
    skipped: int = 0
    retries: int = 0
    breaker_trips: int = 0

    @property
    def total(self) -> int:
        """Runs that ended in a failure class (recovery counters excluded)."""
        return self.timeouts + self.errors + self.degraded + self.skipped

    @classmethod
    def tally(cls, reasons: Iterable[str]) -> "FailureCounts":
        counts = {"timeout": 0, "error": 0, "degraded": 0, "skipped": 0}
        for reason in reasons:
            category = reason.split(":", 1)[0].strip()
            counts[category if category in counts else "error"] += 1
        return cls(
            timeouts=counts["timeout"],
            errors=counts["error"],
            degraded=counts["degraded"],
            skipped=counts["skipped"],
        )

    def as_dict(self) -> Dict[str, int]:
        """JSON-ready counter mapping (service reports, soak output)."""
        return {
            "timeouts": self.timeouts,
            "errors": self.errors,
            "degraded": self.degraded,
            "skipped": self.skipped,
            "retries": self.retries,
            "breaker_trips": self.breaker_trips,
            "total_failed": self.total,
        }


@dataclass
class WorkloadMeasurement:
    """Measurements for a whole workload (one graph family, typically)."""

    measurements: List[QueryMeasurement]
    labels: List[str]

    def failure_counts(self, label: Optional[str] = None) -> FailureCounts:
        """Tally of failures, for one algorithm label or the whole matrix."""
        reasons = [
            reason
            for m in self.measurements
            for key, reason in m.failures.items()
            if label is None or key == label
        ]
        return FailureCounts.tally(reasons)

    @property
    def n_failed_queries(self) -> int:
        return sum(1 for m in self.measurements if m.failures)

    def normed_time_summary(self, label: str) -> NormedSummary:
        return NormedSummary.of(
            [m.normed_times[label] for m in self.measurements if label in m.normed_times]
        )

    def success_summary(self, label: str) -> NormedSummary:
        return NormedSummary.of(
            [
                m.normed_success[label]
                for m in self.measurements
                if label in m.normed_success
            ]
        )

    def failed_summary(self, label: str) -> NormedSummary:
        return NormedSummary.of(
            [
                m.normed_failed[label]
                for m in self.measurements
                if label in m.normed_failed
            ]
        )

    def dpccp_summary(self) -> NormedSummary:
        # A failed baseline records NaN seconds; keep it out of the stats.
        return NormedSummary.of(
            [m.dpccp_seconds for m in self.measurements if math.isfinite(m.dpccp_seconds)]
        )

    def normed_times(self, label: str) -> List[float]:
        """Raw normed-time series (density plots, Figs. 8 and 14)."""
        return [
            m.normed_times[label] for m in self.measurements if label in m.normed_times
        ]

    def by_size(self, label: str) -> Dict[int, float]:
        """Average normed time per relation count (scaling charts)."""
        buckets: Dict[int, List[float]] = {}
        for m in self.measurements:
            if label in m.normed_times:
                buckets.setdefault(m.n_relations, []).append(m.normed_times[label])
        return {n: sum(v) / len(v) for n, v in sorted(buckets.items())}

    def dpccp_by_size(self) -> Dict[int, float]:
        """Average DPccp seconds per relation count."""
        buckets: Dict[int, List[float]] = {}
        for m in self.measurements:
            if math.isfinite(m.dpccp_seconds):
                buckets.setdefault(m.n_relations, []).append(m.dpccp_seconds)
        return {n: sum(v) / len(v) for n, v in sorted(buckets.items())}


def _fresh_budget(
    budget_factory: Optional[Callable[[], Budget]]
) -> Optional[Budget]:
    return budget_factory() if budget_factory is not None else None


def run_query_matrix(
    query: Query,
    algorithms: Sequence[AlgorithmSpec],
    cost_model_factory: Callable[[], CostModel] = HaasCostModel,
    check_costs: bool = True,
    budget_factory: Optional[Callable[[], Budget]] = None,
    resilient: bool = False,
    plan_cache: Optional[PlanCache] = None,
) -> QueryMeasurement:
    """Measure DPccp plus every algorithm on one query.

    With ``check_costs`` every algorithm's plan cost is verified against
    DPccp's (pruning must preserve optimality); a mismatch raises, because a
    benchmark of an incorrect optimizer is meaningless.

    ``budget_factory`` supplies one fresh :class:`~repro.resilience.Budget`
    per optimizer run (the DPccp baseline included).  A run that exhausts
    its budget or raises a typed library error is recorded under
    ``measurement.failures`` instead of aborting the matrix.  With
    ``resilient`` every algorithm runs through
    :class:`~repro.resilience.ResilientOptimizer`, so budget exhaustion
    yields a degraded-but-valid plan recorded as ``degraded: <rung>``
    (degraded plans are *not* cost-checked — they are not claimed optimal).
    If the baseline itself fails, the algorithms are skipped (normed values
    would be meaningless without the denominator).

    ``plan_cache`` shares one cross-query :class:`~repro.context.PlanCache`
    across the matrix (non-resilient runs only).  Entries are keyed per
    optimizer configuration, so the specs never see each other's plans —
    only repeats of the *same* (config, isomorphic query) pair hit.
    """
    try:
        baseline = run_dpccp(
            query, cost_model_factory, budget=_fresh_budget(budget_factory)
        )
    except BudgetExceeded:
        baseline = None
        baseline_failure = "timeout: DPccp baseline"
    except _QUERY_FAILURES as error:
        baseline = None
        baseline_failure = f"error: DPccp baseline: {error}"
    if baseline is None:
        measurement = QueryMeasurement(
            query=query, dpccp_seconds=float("nan"), dpccp_classes=1
        )
        measurement.failures["DPccp"] = baseline_failure
        for spec in algorithms:
            measurement.failures[spec.label] = "skipped: no DPccp baseline"
        return measurement
    measurement = QueryMeasurement(
        query=query,
        dpccp_seconds=baseline.elapsed,
        dpccp_classes=max(1, baseline.stats.plan_classes_built),
    )
    denominator = max(baseline.elapsed, 1e-9)
    for spec in algorithms:
        budget = _fresh_budget(budget_factory)
        try:
            if resilient:
                wrapped = ResilientOptimizer(
                    enumerator=spec.enumerator,
                    pruning=spec.pruning,
                    cost_model_factory=cost_model_factory,
                    config=spec.config,
                )
                outcome = wrapped.optimize(query, budget=budget)
                if outcome.degraded:
                    measurement.failures[spec.label] = f"degraded: {outcome.rung}"
                    measurement.normed_times[spec.label] = (
                        outcome.elapsed / denominator
                    )
                    continue
                cost, elapsed, stats = outcome.cost, outcome.elapsed, outcome.stats
            else:
                optimizer = Optimizer(
                    enumerator=spec.enumerator,
                    pruning=spec.pruning,
                    cost_model_factory=cost_model_factory,
                    config=spec.config,
                    plan_cache=plan_cache,
                )
                result = optimizer.optimize(query, budget=budget)
                cost, elapsed, stats = result.cost, result.elapsed, result.stats
        except BudgetExceeded:
            measurement.failures[spec.label] = "timeout"
            continue
        except _QUERY_FAILURES as error:
            measurement.failures[spec.label] = (
                f"error: {type(error).__name__}: {error}"
            )
            continue
        if check_costs and not costs_close(cost, baseline.cost, rel=1e-6):
            raise AssertionError(
                f"{spec.label} returned cost {cost!r} but DPccp found "
                f"{baseline.cost!r} on {query.describe()}"
            )
        measurement.normed_times[spec.label] = elapsed / denominator
        measurement.normed_success[spec.label] = (
            stats.plan_classes_built / measurement.dpccp_classes
        )
        measurement.normed_failed[spec.label] = (
            stats.failed_builds / measurement.dpccp_classes
        )
    return measurement


# -- checkpointing --------------------------------------------------------


def _measurement_to_record(
    index: int, measurement: QueryMeasurement
) -> Dict[str, object]:
    return {
        "index": index,
        "query": measurement.query.describe(),
        "dpccp_seconds": measurement.dpccp_seconds,
        "dpccp_classes": measurement.dpccp_classes,
        "normed_times": measurement.normed_times,
        "normed_success": measurement.normed_success,
        "normed_failed": measurement.normed_failed,
        "failures": measurement.failures,
    }


def _measurement_from_record(
    record: Dict[str, object], query: Query
) -> QueryMeasurement:
    return QueryMeasurement(
        query=query,
        dpccp_seconds=float(record["dpccp_seconds"]),  # type: ignore[arg-type]
        dpccp_classes=int(record["dpccp_classes"]),  # type: ignore[arg-type]
        normed_times=dict(record.get("normed_times", {})),  # type: ignore[arg-type]
        normed_success=dict(record.get("normed_success", {})),  # type: ignore[arg-type]
        normed_failed=dict(record.get("normed_failed", {})),  # type: ignore[arg-type]
        failures=dict(record.get("failures", {})),  # type: ignore[arg-type]
    )


def _read_checkpoint(
    path: Union[str, Path]
) -> Tuple[Dict[int, Dict[str, object]], int]:
    """Parse a JSONL checkpoint; returns ``({index: record}, n_malformed)``.

    A run killed mid-write leaves a truncated line; it is counted (not
    silently dropped) so the caller can repair the file, and its query is
    simply recomputed on resume.
    """
    records: Dict[int, Dict[str, object]] = {}
    n_malformed = 0
    checkpoint = Path(path)
    if not checkpoint.exists():
        return records, n_malformed
    with checkpoint.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                n_malformed += 1
                continue
            records[int(record["index"])] = record
    return records, n_malformed


def load_checkpoint(path: Union[str, Path]) -> Dict[int, Dict[str, object]]:
    """Read a JSONL workload checkpoint; returns ``{index: record}``."""
    return _read_checkpoint(path)[0]


def run_workload(
    queries: Sequence[Query],
    algorithms: Sequence[AlgorithmSpec],
    cost_model_factory: Callable[[], CostModel] = HaasCostModel,
    check_costs: bool = True,
    progress: Optional[Callable[[int, int], None]] = None,
    budget_factory: Optional[Callable[[], Budget]] = None,
    resilient: bool = False,
    checkpoint_path: Optional[Union[str, Path]] = None,
    plan_cache: Optional[PlanCache] = None,
) -> WorkloadMeasurement:
    """Measure a whole workload; see :func:`run_query_matrix`.

    With ``checkpoint_path`` every completed query measurement is appended
    to a JSONL file as it finishes; re-running with the same path skips
    queries whose checkpointed record matches (same position and same
    ``query.describe()``), so an interrupted workload resumes instead of
    starting over.  Stale records — a different workload reusing the file —
    are ignored and recomputed.
    """
    checkpoint = Path(checkpoint_path) if checkpoint_path is not None else None
    cached: Dict[int, Dict[str, object]] = {}
    if checkpoint is not None:
        cached, n_malformed = _read_checkpoint(checkpoint)
        if n_malformed:
            # A run killed mid-write leaves a truncated line; appending
            # after it would corrupt the next record too.  Rewrite the
            # file from the intact records before continuing.  The
            # checkpoint is deliberately non-durable (a torn record costs
            # one recomputed query, and recovery above already handles
            # it), so it opts out of the durable-write discipline.
            with checkpoint.open("w", encoding="utf-8") as handle:  # repro: disable=durable-write
                for index in sorted(cached):
                    handle.write(json.dumps(cached[index]) + "\n")
    measurements = []
    for index, query in enumerate(queries):
        record = cached.get(index)
        if record is not None and record.get("query") == query.describe():
            measurements.append(_measurement_from_record(record, query))
        else:
            measurement = run_query_matrix(
                query,
                algorithms,
                cost_model_factory,
                check_costs,
                budget_factory=budget_factory,
                resilient=resilient,
                plan_cache=plan_cache,
            )
            measurements.append(measurement)
            if checkpoint is not None:
                # Same escape hatch as above: incremental appends trade
                # durability for not rewriting the file per query.
                with checkpoint.open("a", encoding="utf-8") as handle:  # repro: disable=durable-write
                    handle.write(
                        json.dumps(_measurement_to_record(index, measurement))
                        + "\n"
                    )
        if progress is not None:
            progress(index + 1, len(queries))
    return WorkloadMeasurement(
        measurements=measurements, labels=[spec.label for spec in algorithms]
    )
