"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench list
    python -m repro.bench run table2 figure15
    python -m repro.bench run all --results-dir results/

Each experiment prints its paper-style text rendering and writes both the
text and a machine-readable JSON file to the results directory.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.bench.experiments import EXPERIMENTS, run_experiment

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the tables and figures of the ICDE 2012 "
        "top-down join enumeration pruning paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment names (table2, table3, figure7..figure15) or 'all'",
    )
    run_parser.add_argument(
        "--results-dir",
        default="results",
        help="directory for .txt/.json outputs (default: results/)",
    )
    report_parser = subparsers.add_parser(
        "report", help="render a paper-vs-measured markdown summary"
    )
    report_parser.add_argument(
        "--results-dir",
        default="results",
        help="directory holding the experiment .json files",
    )
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for name in EXPERIMENTS:
            doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
            print(f"{name:<10} {doc}")
        return 0

    if args.command == "report":
        from repro.bench.report import render_report

        print(render_report(Path(args.results_dir)))
        return 0

    names = list(args.experiments)
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        print(f"available: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2

    results_dir = Path(args.results_dir)
    for name in names:
        started = time.perf_counter()
        print(f"=== {name} ===")
        result = run_experiment(name)
        print(result.text)
        path = result.save(results_dir)
        print(f"[{time.perf_counter() - started:.1f}s] saved {path}")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
