"""Plan-cache benchmark: repeated workload, cold vs. warm (ISSUE tentpole).

Runs a seeded workload through one :class:`~repro.core.optimizer.Optimizer`
twice: the first pass is cold (every query misses and populates the
cache), the second pass replays the same queries under *permuted relation
numbering* (the adversarial case for the fingerprint — every lookup must
still hit).  Emits ``BENCH_plancache.json``::

    python -m repro.bench.plancache --out BENCH_plancache.json

The process exits non-zero if the repeated half's hit rate is not 100% or
the warm pass is not at least the required speedup factor faster, which is
what the CI bench-smoke job asserts.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import Dict, List

from repro.context import PlanCache
from repro.core.optimizer import Optimizer
from repro.context.store import atomic_write_text
from repro.query import Query
from repro.workload.generator import QueryGenerator

__all__ = ["run_plancache_benchmark", "main"]

#: (family, size) pairs: big enough that enumeration dwarfs fingerprinting,
#: small enough that the cold pass stays in CI-smoke territory.
DEFAULT_WORKLOAD = (
    ("chain", 12),
    ("chain", 14),
    ("cycle", 10),
    ("cycle", 12),
    ("star", 9),
    ("star", 10),
    ("clique", 7),
    ("clique", 8),
)

SEED = 20120402

#: Acceptance criterion: warm (cached) repeated run at least this much
#: faster than the cold run.
REQUIRED_SPEEDUP = 2.0


def _workload(seed: int, shapes) -> List[Query]:
    generator = QueryGenerator(seed=seed)
    return [generator.generate(family, size) for family, size in shapes]


def _permuted(queries: List[Query], seed: int) -> List[Query]:
    """The same queries with shuffled relation numbering (isomorphic)."""
    rng = random.Random(seed)
    permuted = []
    for query in queries:
        mapping = list(range(query.n_relations))
        rng.shuffle(mapping)
        permuted.append(query.relabel(mapping))
    return permuted


def run_plancache_benchmark(
    enumerator: str = "mincut_conservative",
    pruning: str = "apcbi",
    seed: int = SEED,
    workload=DEFAULT_WORKLOAD,
) -> Dict[str, object]:
    """Cold pass, then permuted warm pass; returns the JSON report."""
    cache = PlanCache()
    optimizer = Optimizer(
        enumerator=enumerator, pruning=pruning, plan_cache=cache
    )
    queries = _workload(seed, workload)

    cold_started = time.perf_counter()
    cold_costs = [optimizer.optimize(query).cost for query in queries]
    cold_seconds = time.perf_counter() - cold_started
    misses_after_cold = cache.misses

    warm_queries = _permuted(queries, seed + 1)
    warm_started = time.perf_counter()
    warm_results = [optimizer.optimize(query) for query in warm_queries]
    warm_seconds = time.perf_counter() - warm_started

    repeated_lookups = len(warm_queries)
    repeated_hits = cache.hits
    repeated_hit_rate = repeated_hits / repeated_lookups
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")

    return {
        "benchmark": "plancache",
        "enumerator": enumerator,
        "pruning": pruning,
        "seed": seed,
        "workload": [list(pair) for pair in workload],
        "queries": len(queries),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": speedup,
        "required_speedup": REQUIRED_SPEEDUP,
        "cold_misses": misses_after_cold,
        "repeated_hits": repeated_hits,
        "repeated_hit_rate": repeated_hit_rate,
        "warm_memo_entries": [result.memo_entries for result in warm_results],
        "cold_costs": [cost.hex() for cost in cold_costs],
        "warm_costs": [result.cost.hex() for result in warm_results],
        "cache": cache.snapshot(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench-plancache", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--out",
        default="BENCH_plancache.json",
        help="output JSON path (default: BENCH_plancache.json)",
    )
    parser.add_argument(
        "--enumerator", default="mincut_conservative", help="partitioning name"
    )
    parser.add_argument("--pruning", default="apcbi", help="pruning name")
    args = parser.parse_args(argv)

    report = run_plancache_benchmark(args.enumerator, args.pruning)
    atomic_write_text(args.out, json.dumps(report, indent=2) + "\n")

    print(
        f"plan cache: cold {report['cold_seconds']:.3f}s, "
        f"warm {report['warm_seconds']:.3f}s, "
        f"speedup {report['speedup']:.1f}x, "
        f"repeated hit rate {report['repeated_hit_rate']:.0%}"
    )

    failures = []
    if report["repeated_hit_rate"] != 1.0:
        failures.append(
            f"repeated-half hit rate {report['repeated_hit_rate']:.0%} != 100%"
        )
    if report["speedup"] < REQUIRED_SPEEDUP:
        failures.append(
            f"warm speedup {report['speedup']:.2f}x < {REQUIRED_SPEEDUP}x"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
