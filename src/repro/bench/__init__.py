"""Benchmark harness: normed-time measurement and per-figure experiments."""

from repro.bench.ascii_charts import bar_chart, line_chart
from repro.bench.density import DensityProfile, density_profile, render_density
from repro.bench.profiling import EnumerationProfile, InstrumentedPartitioning
from repro.bench.report import load_results, render_report
from repro.bench.experiments import (
    EXPERIMENTS,
    EvaluationRun,
    ExperimentResult,
    run_experiment,
)
from repro.bench.harness import (
    CHART_ALGORITHMS,
    PAPER_ALGORITHMS,
    AlgorithmSpec,
    NormedSummary,
    QueryMeasurement,
    WorkloadMeasurement,
    run_query_matrix,
    run_workload,
)
from repro.bench.tables import render_series, render_table2, render_table3

__all__ = [
    "AlgorithmSpec",
    "QueryMeasurement",
    "WorkloadMeasurement",
    "NormedSummary",
    "PAPER_ALGORITHMS",
    "CHART_ALGORITHMS",
    "run_query_matrix",
    "run_workload",
    "render_table2",
    "render_table3",
    "render_series",
    "density_profile",
    "render_density",
    "DensityProfile",
    "ExperimentResult",
    "EvaluationRun",
    "EXPERIMENTS",
    "run_experiment",
    "InstrumentedPartitioning",
    "EnumerationProfile",
    "line_chart",
    "bar_chart",
    "load_results",
    "render_report",
]
