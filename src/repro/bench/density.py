"""Density-plot data for the normed-runtime distributions (Figs. 8 and 14).

The paper plots kernel densities of the normed runtime per algorithm.  For
a text harness we report the same information as a histogram over
logarithmic buckets plus the quartiles, which preserves what the figures
demonstrate: TDMcC_APCBI's distribution sits "steeper and farther to the
right" — i.e. a larger fraction of queries at much smaller normed times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = ["DensityProfile", "density_profile", "render_density"]

#: Log10 bucket edges for normed times, from 1/1000 x to 10 x and beyond.
_BUCKET_EDGES = (0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0)


@dataclass
class DensityProfile:
    """Histogram + quartiles of one algorithm's normed-runtime series."""

    label: str
    count: int
    quartiles: Tuple[float, float, float]
    #: (upper_edge, fraction) pairs; the last bucket is open-ended.
    histogram: List[Tuple[float, float]]

    @property
    def median(self) -> float:
        return self.quartiles[1]


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return float("nan")
    position = q * (len(sorted_values) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return sorted_values[low]
    weight = position - low
    return sorted_values[low] * (1 - weight) + sorted_values[high] * weight


def density_profile(label: str, values: Sequence[float]) -> DensityProfile:
    """Histogram the normed times of one algorithm."""
    ordered = sorted(values)
    histogram: List[Tuple[float, float]] = []
    remaining = list(ordered)
    total = max(1, len(ordered))
    for edge in _BUCKET_EDGES:
        inside = [v for v in remaining if v <= edge]
        histogram.append((edge, len(inside) / total))
        remaining = [v for v in remaining if v > edge]
    histogram.append((float("inf"), len(remaining) / total))
    return DensityProfile(
        label=label,
        count=len(ordered),
        quartiles=(
            _quantile(ordered, 0.25),
            _quantile(ordered, 0.50),
            _quantile(ordered, 0.75),
        ),
        histogram=histogram,
    )


def render_density(profiles: Sequence[DensityProfile]) -> str:
    """Aligned text rendering of several density profiles."""
    lines = []
    header = f"{'normed time <=':>16}" + "".join(
        f"{p.label:>18}" for p in profiles
    )
    lines.append(header)
    lines.append("-" * len(header))
    n_buckets = len(profiles[0].histogram) if profiles else 0
    for index in range(n_buckets):
        edge = profiles[0].histogram[index][0]
        edge_text = "inf" if math.isinf(edge) else f"{edge:g}x"
        row = [f"{edge_text:>16}"]
        for profile in profiles:
            row.append(f"{profile.histogram[index][1] * 100:17.1f}%")
        lines.append("".join(row))
    quartile_row = [f"{'median':>16}"]
    for profile in profiles:
        quartile_row.append(f"{profile.median:17.4f}x")
    lines.append("".join(quartile_row))
    return "\n".join(lines)
