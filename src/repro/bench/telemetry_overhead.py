"""Telemetry overhead smoke: armed instrumentation must stay under 5%.

Runs the same seeded workload through :func:`repro.core.optimizer.optimize`
twice per round — once disarmed (``telemetry=None``, the hot-path default)
and once armed (metrics registry + tracer, ``detailed_spans`` off, as the
service runs it) — alternating the order so cache warmup cannot favor one
mode.  Reports the per-mode minimum across rounds (the noise-robust
statistic for timing) and fails the process when

* armed time exceeds disarmed time by more than ``--threshold`` (default
  5%), or
* any armed plan differs from its disarmed twin — telemetry must be
  observation only, bit-identical plans and costs.

CI runs this as the ``telemetry-overhead`` job::

    python -m repro.bench.telemetry_overhead --out BENCH_telemetry.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

from repro.context.store import atomic_write_text
from repro.core.optimizer import optimize
from repro.query import Query
from repro.telemetry import MetricRegistry, Telemetry, Tracer
from repro.workload.generator import QueryGenerator

__all__ = ["run_overhead_benchmark", "main"]

#: (family, size) pairs — large enough that enumeration dominates and the
#: relative cost of span/counter bookkeeping is measured honestly, small
#: enough for CI-smoke wall-clock.
DEFAULT_WORKLOAD = (
    ("chain", 14),
    ("cycle", 12),
    ("star", 10),
    ("clique", 8),
)

SEED = 20120402

#: Acceptance criterion: armed runtime within this fraction of disarmed.
DEFAULT_THRESHOLD = 0.05


def _workload(seed: int, shapes) -> List[Query]:
    generator = QueryGenerator(seed=seed)
    return [generator.generate(family, size) for family, size in shapes]


def _run_pass(queries: List[Query], telemetry) -> tuple:
    """One full pass over the workload; returns (seconds, plan signatures)."""
    started = time.perf_counter()
    signatures = []
    for query in queries:
        result = optimize(query, telemetry=telemetry)
        signatures.append((result.plan.sexpr(), result.cost.hex()))
    return time.perf_counter() - started, signatures


def run_overhead_benchmark(
    rounds: int = 5,
    seed: int = SEED,
    workload=DEFAULT_WORKLOAD,
    threshold: float = DEFAULT_THRESHOLD,
) -> Dict[str, object]:
    """Alternating disarmed/armed passes; returns the JSON report."""
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    queries = _workload(seed, workload)

    disarmed_times: List[float] = []
    armed_times: List[float] = []
    disarmed_signatures = None
    mismatches = 0
    for round_index in range(rounds):
        # Alternate which mode goes first so neither benefits from the
        # allocator/branch-predictor warmup of the other.
        modes = ("disarmed", "armed")
        if round_index % 2:
            modes = ("armed", "disarmed")
        for mode in modes:
            if mode == "disarmed":
                seconds, signatures = _run_pass(queries, None)
                disarmed_times.append(seconds)
                disarmed_signatures = signatures
            else:
                telemetry = Telemetry(
                    registry=MetricRegistry(), tracer=Tracer()
                )
                seconds, signatures = _run_pass(queries, telemetry)
                armed_times.append(seconds)
                if (
                    disarmed_signatures is not None
                    and signatures != disarmed_signatures
                ):
                    mismatches += 1

    disarmed_best = min(disarmed_times)
    armed_best = min(armed_times)
    overhead = (
        armed_best / disarmed_best - 1.0
        if disarmed_best > 0
        else float("inf")
    )
    return {
        "benchmark": "telemetry_overhead",
        "seed": seed,
        "workload": [list(pair) for pair in workload],
        "rounds": rounds,
        "disarmed_seconds": disarmed_times,
        "armed_seconds": armed_times,
        "disarmed_best": disarmed_best,
        "armed_best": armed_best,
        "overhead_fraction": overhead,
        "threshold_fraction": threshold,
        "plan_mismatches": mismatches,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench-telemetry-overhead",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--out",
        default="BENCH_telemetry.json",
        help="output JSON path (default: BENCH_telemetry.json)",
    )
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="maximum tolerated armed/disarmed overhead fraction",
    )
    args = parser.parse_args(argv)

    report = run_overhead_benchmark(
        rounds=args.rounds, threshold=args.threshold
    )
    atomic_write_text(args.out, json.dumps(report, indent=2) + "\n")

    print(
        f"telemetry overhead: disarmed {report['disarmed_best']:.3f}s, "
        f"armed {report['armed_best']:.3f}s, "
        f"overhead {report['overhead_fraction']:+.1%} "
        f"(threshold {report['threshold_fraction']:.0%}), "
        f"{report['plan_mismatches']} plan mismatches"
    )

    failures = []
    if report["plan_mismatches"]:
        failures.append(
            f"{report['plan_mismatches']} armed pass(es) produced plans "
            "that differ from the disarmed baseline"
        )
    if report["overhead_fraction"] > args.threshold:
        failures.append(
            f"armed overhead {report['overhead_fraction']:.1%} exceeds "
            f"{args.threshold:.0%}"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
