"""Service-mode benchmarking: throughput and latency under concurrency.

Where :mod:`repro.bench.harness` measures single optimizer runs in
isolation, this module drives a whole workload through an
:class:`~repro.service.OptimizationService` and reports the operational
numbers a serving deployment cares about: requests per second, queue-wait
and service-time percentiles, the degradation-rung histogram, and the
extended :class:`~repro.bench.harness.FailureCounts` taxonomy (timeouts,
errors, degraded responses, *plus* the recovery counters ``retries`` and
``breaker_trips``).

All timing uses ``time.perf_counter`` — by repo convention wall-clock
performance measurement lives only under ``repro/bench``.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import FailureCounts
from repro.errors import ServiceOverloadError
from repro.query import Query

# The canonical percentile lives in repro.telemetry.summary (NaN for an
# empty sample set); re-exported here because bench callers historically
# import it from this module.
from repro.telemetry.summary import percentile, summarize_spans

__all__ = [
    "ServiceBenchReport",
    "percentile",
    "run_service_bench",
    "service_failure_counts",
]


def service_failure_counts(
    timeouts: int = 0,
    errors: int = 0,
    degraded: int = 0,
    skipped: int = 0,
    retries: int = 0,
    breaker_trips: int = 0,
) -> FailureCounts:
    """Assemble a :class:`FailureCounts` from service-side counters.

    Shared by the bench report and the soak report so both serialize the
    identical taxonomy (``FailureCounts.as_dict``).
    """
    return FailureCounts(
        timeouts=timeouts,
        errors=errors,
        degraded=degraded,
        skipped=skipped,
        retries=retries,
        breaker_trips=breaker_trips,
    )


def _json_safe(value):
    """Replace NaN/Inf with ``None`` recursively (JSON has no NaN literal;
    ``json.dumps`` would happily emit the invalid token)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return value


def _fmt_ms(value: Optional[float]) -> str:
    """Milliseconds for humans; ``n/a`` when nothing was measured."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "n/a"
    return f"{value * 1000:.1f}ms"


@dataclass
class ServiceBenchReport:
    """One service bench run's aggregate numbers."""

    requests: int
    completed: int
    failed: int
    timeouts: int
    rejected: int
    elapsed_seconds: float
    throughput: float  # completed requests per second
    queue_wait: Dict[str, float] = field(default_factory=dict)
    service_time: Dict[str, float] = field(default_factory=dict)
    rung_histogram: Dict[str, int] = field(default_factory=dict)
    failures: FailureCounts = field(default_factory=FailureCounts)
    breakers: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: Per-phase span duration summaries ({span: {group: {p50, ...}}}),
    #: populated when the bench ran with tracing armed.
    spans: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "failed": self.failed,
            "timeouts": self.timeouts,
            "rejected": self.rejected,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_rps": self.throughput,
            "queue_wait_seconds": dict(self.queue_wait),
            "service_seconds": dict(self.service_time),
            "rung_histogram": dict(self.rung_histogram),
            "failures": self.failures.as_dict(),
            "breakers": dict(self.breakers),
            "spans": dict(self.spans),
        }

    def to_json(self, indent: int = 2) -> str:
        # Empty percentile summaries are NaN; JSON renders them as null.
        return json.dumps(_json_safe(self.as_dict()), indent=indent)

    def describe(self) -> str:
        lines = [
            f"requests  : {self.requests} submitted, {self.completed} "
            f"completed, {self.failed} failed, {self.timeouts} timeouts, "
            f"{self.rejected} shed",
            f"throughput: {self.throughput:.1f} req/s over "
            f"{self.elapsed_seconds:.2f}s",
            f"queue wait: p50={_fmt_ms(self.queue_wait.get('p50'))} "
            f"p95={_fmt_ms(self.queue_wait.get('p95'))} "
            f"p99={_fmt_ms(self.queue_wait.get('p99'))}",
            f"service   : p50={_fmt_ms(self.service_time.get('p50'))} "
            f"p95={_fmt_ms(self.service_time.get('p95'))} "
            f"p99={_fmt_ms(self.service_time.get('p99'))}",
            f"failures  : {self.failures.as_dict()}",
        ]
        if self.rung_histogram:
            rungs = ", ".join(
                f"{rung}={count}"
                for rung, count in sorted(self.rung_histogram.items())
            )
            lines.append(f"rungs     : {rungs}")
        for span_name, groups in sorted(self.spans.items()):
            for group, stats in sorted(groups.items()):
                lines.append(
                    f"span {span_name}/{group}: n={stats.get('count', 0)} "
                    f"p50={_fmt_ms(stats.get('p50'))} "
                    f"p95={_fmt_ms(stats.get('p95'))} "
                    f"p99={_fmt_ms(stats.get('p99'))}"
                )
        return "\n".join(lines)


def _summarize(samples: List[float]) -> Dict[str, float]:
    return {
        "p50": percentile(samples, 50.0),
        "p95": percentile(samples, 95.0),
        "p99": percentile(samples, 99.0),
        "max": max(samples) if samples else float("nan"),
    }


def run_service_bench(
    queries: Sequence[Tuple[str, Query]],
    repeats: int = 1,
    workers: int = 4,
    queue_capacity: int = 64,
    deadline_seconds: Optional[float] = None,
    service=None,
    telemetry=None,
) -> ServiceBenchReport:
    """Push ``queries`` (``repeats`` rounds) through a service and measure.

    Pass a pre-configured ``service`` (not yet started) to bench chaos or
    custom breaker settings; by default a plain fault-free service is
    built with the given ``workers`` and ``queue_capacity``.  The service
    is started and shut down (draining) inside this call.

    ``telemetry`` (a :class:`~repro.telemetry.Telemetry` bundle) arms the
    service's instrumentation; when its tracer retained spans, the report
    gains per-rung / per-enumerator duration summaries (:attr:`spans`).
    """
    # Imported here: repro.service imports this module for the shared
    # FailureCounts helper, so a module-level import would be circular.
    from repro.service.server import OptimizationService

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if service is None:
        service = OptimizationService(
            workers=workers,
            queue_capacity=queue_capacity,
            telemetry=telemetry,
        )
    elif telemetry is None:
        telemetry = service.telemetry
    rejected = 0
    futures = []
    started = time.perf_counter()
    with service:
        for round_index in range(repeats):
            for _, query in queries:
                try:
                    futures.append(
                        service.submit(
                            query, deadline_seconds=deadline_seconds
                        )
                    )
                except ServiceOverloadError:
                    rejected += 1
        responses = [future.result() for future in futures]
    elapsed = time.perf_counter() - started

    completed = sum(1 for r in responses if r.status == "ok")
    failed = sum(1 for r in responses if r.status == "failed")
    timeouts = sum(1 for r in responses if r.status == "timeout")
    degraded = sum(1 for r in responses if r.degraded)
    retries = sum(r.retries for r in responses)
    health = service.healthz()
    rungs: Dict[str, int] = {}
    for response in responses:
        if response.rung:
            rungs[response.rung] = rungs.get(response.rung, 0) + 1
    return ServiceBenchReport(
        requests=len(futures) + rejected,
        completed=completed,
        failed=failed,
        timeouts=timeouts,
        rejected=rejected,
        elapsed_seconds=elapsed,
        throughput=completed / elapsed if elapsed > 0 else 0.0,
        queue_wait=_summarize([r.queue_wait_seconds for r in responses]),
        service_time=_summarize([r.service_seconds for r in responses]),
        rung_histogram=rungs,
        failures=service_failure_counts(
            timeouts=timeouts,
            errors=failed,
            degraded=degraded,
            retries=retries,
            breaker_trips=health.breaker_trips,
        ),
        breakers=health.breakers,
        spans=(
            summarize_spans(telemetry.tracer.finished_spans())
            if telemetry is not None and telemetry.tracer is not None
            else {}
        ),
    )
