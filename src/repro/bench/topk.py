"""Top-k rank-stability benchmark (ISSUE tentpole).

For each workload shape, optimize a seeded query with ``topk=k``, then
re-price the retained top-k plans under *jittered* selectivities (every
edge selectivity multiplied by a seeded factor in ``[1-j, 1+j]``) and
measure how stable the rank order is: the Kendall-tau correlation between
the unperturbed order and the re-priced order, averaged over several
jitter draws.  A tau of 1.0 means the ranking is insensitive to estimate
noise of that magnitude; low or negative tau flags shapes whose "best"
plan is a knife-edge choice — exactly the anytime/robustness story the
ranked memo exists to support.  Emits ``BENCH_topk.json``::

    python -m repro.bench.topk --out BENCH_topk.json

The process exits non-zero when k=1 parity fails (``optimize_topk``'s
rank 1 must be bit-identical to ``optimize``), when a ranked stream
violates its invariants (sorted, distinct), or when any tau falls outside
[-1, 1] — which is what the CI topk-smoke job asserts.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import Dict, List, Sequence, Tuple

from repro.catalog.catalog import Catalog
from repro.context.context import OptimizationContext
from repro.context.plancache import replay_plan
from repro.context.store import atomic_write_text
from repro.core.optimizer import Optimizer
from repro.plans.join_tree import JoinTree, plan_fingerprint
from repro.query import Query
from repro.workload.generator import QueryGenerator

__all__ = ["kendall_tau", "run_topk_benchmark", "main"]

#: (family, size) pairs: large enough that the top-k lists are rich,
#: small enough for CI-smoke wall time with the k-widened memo.
DEFAULT_WORKLOAD = (
    ("chain", 10),
    ("chain", 12),
    ("cycle", 9),
    ("cycle", 10),
    ("star", 8),
    ("star", 9),
    ("clique", 6),
    ("clique", 7),
)

SEED = 20120403

DEFAULT_K = 5

#: Relative jitter applied to every edge selectivity, and how many seeded
#: draws are averaged per query.
DEFAULT_JITTER = 0.2
DEFAULT_DRAWS = 5


def kendall_tau(baseline: Sequence[int], perturbed: Sequence[int]) -> float:
    """Kendall tau-a between two rankings of the same items.

    Both arguments list item ids in rank order (rank 1 first).  Returns
    (concordant - discordant) / total pairs, in [-1, 1]; 1.0 for a single
    item or identical orders.
    """
    if sorted(baseline) != sorted(perturbed):
        raise ValueError("rankings must order the same items")
    n = len(baseline)
    if n < 2:
        return 1.0
    position = {item: rank for rank, item in enumerate(perturbed)}
    concordant = 0
    discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            if position[baseline[i]] < position[baseline[j]]:
                concordant += 1
            else:
                discordant += 1
    return (concordant - discordant) / (n * (n - 1) / 2)


def _jittered_query(query: Query, jitter: float, rng: random.Random) -> Query:
    """The same graph with every selectivity scaled by a seeded factor."""
    catalog = query.catalog
    relations = [catalog.relation(i) for i in range(catalog.n_relations)]
    selectivities = {
        edge: min(1.0, max(1e-12, s * rng.uniform(1.0 - jitter, 1.0 + jitter)))
        for edge, s in catalog.selectivities.items()
    }
    return Query(
        graph=query.graph,
        catalog=Catalog(relations, selectivities),
        family=query.family,
        seed=query.seed,
    )


def _reprice(plans: Sequence[JoinTree], query: Query) -> List[JoinTree]:
    """Rebuild each plan shape against ``query``'s (jittered) statistics."""
    context = OptimizationContext.for_query(query)
    identity = list(range(query.n_relations))
    return [replay_plan(plan, identity, context) for plan in plans]


def _check_ranked(plans: Sequence[JoinTree], label: str) -> List[str]:
    """Ranked-stream invariants: nondecreasing cost, distinct shapes."""
    failures = []
    costs = [plan.cost for plan in plans]
    # Exact order check, not a tolerance test: the memo's contract is a
    # deterministic total order, and sorted() preserves equal elements.
    if costs != sorted(costs):  # repro: disable=no-float-cost-eq
        failures.append(f"{label}: ranked costs not nondecreasing: {costs}")
    fingerprints = [plan_fingerprint(plan) for plan in plans]
    if len(set(fingerprints)) != len(fingerprints):
        failures.append(f"{label}: ranked stream contains duplicate plans")
    return failures


def run_topk_benchmark(
    enumerator: str = "mincut_conservative",
    pruning: str = "apcbi",
    k: int = DEFAULT_K,
    seed: int = SEED,
    jitter: float = DEFAULT_JITTER,
    draws: int = DEFAULT_DRAWS,
    workload=DEFAULT_WORKLOAD,
) -> Dict[str, object]:
    """Per-shape rank stability under jittered selectivities."""
    generator = QueryGenerator(seed=seed)
    single = Optimizer(enumerator=enumerator, pruning=pruning)
    ranked_optimizer = Optimizer(enumerator=enumerator, pruning=pruning, topk=k)

    started = time.perf_counter()
    per_query: List[Dict[str, object]] = []
    failures: List[str] = []
    taus_by_family: Dict[str, List[float]] = {}

    for family, size in workload:
        query = generator.generate(family, size)
        label = f"{family}(n={size})"

        baseline = single.optimize(query)
        ranked = ranked_optimizer.optimize_topk(query, k=k)
        plans = list(ranked.ranked)

        # k=1 parity: rank 1 must be bit-identical to the single-best run
        # (hex strings compare, so this is exact by construction).
        if (
            ranked.plan.cost.hex() != baseline.cost.hex()  # repro: disable=no-float-cost-eq
            or ranked.plan.sexpr() != baseline.plan.sexpr()
        ):
            failures.append(
                f"{label}: rank 1 differs from optimize() "
                f"({ranked.plan.cost.hex()} vs {baseline.cost.hex()})"
            )
        failures.extend(_check_ranked(plans, label))

        # Jittered re-pricing: does the unperturbed rank order survive?
        taus: List[float] = []
        rng = random.Random(seed * 86028121 + size * 9973 + len(per_query))
        baseline_order = list(range(len(plans)))
        for _ in range(draws):
            jittered = _jittered_query(query, jitter, rng)
            repriced = _reprice(plans, jittered)
            # Deterministic perturbed order: (new cost, fingerprint).
            order = sorted(
                baseline_order,
                key=lambda i: (repriced[i].cost, plan_fingerprint(repriced[i])),
            )
            tau = kendall_tau(baseline_order, order)
            if not -1.0 <= tau <= 1.0:
                failures.append(f"{label}: tau {tau} outside [-1, 1]")
            taus.append(tau)
        mean_tau = sum(taus) / len(taus) if taus else 1.0
        taus_by_family.setdefault(family, []).extend(taus)
        per_query.append(
            {
                "query": label,
                "family": family,
                "size": size,
                "k_retained": len(plans),
                "rank1_cost": ranked.plan.cost.hex(),
                "ranked_costs": [plan.cost.hex() for plan in plans],
                "taus": taus,
                "mean_tau": mean_tau,
            }
        )

    elapsed = time.perf_counter() - started
    return {
        "benchmark": "topk",
        "enumerator": enumerator,
        "pruning": pruning,
        "k": k,
        "seed": seed,
        "jitter": jitter,
        "draws": draws,
        "workload": [list(pair) for pair in workload],
        "elapsed_seconds": elapsed,
        "queries": per_query,
        "mean_tau_by_family": {
            family: sum(taus) / len(taus)
            for family, taus in taus_by_family.items()
        },
        "failures": failures,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench-topk", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--out",
        default="BENCH_topk.json",
        help="output JSON path (default: BENCH_topk.json)",
    )
    parser.add_argument(
        "--enumerator", default="mincut_conservative", help="partitioning name"
    )
    parser.add_argument("--pruning", default="apcbi", help="pruning name")
    parser.add_argument("--k", type=int, default=DEFAULT_K, help="ranked depth")
    parser.add_argument(
        "--jitter", type=float, default=DEFAULT_JITTER,
        help="relative selectivity jitter (default 0.2)",
    )
    parser.add_argument(
        "--draws", type=int, default=DEFAULT_DRAWS,
        help="seeded jitter draws per query (default 5)",
    )
    args = parser.parse_args(argv)

    report = run_topk_benchmark(
        enumerator=args.enumerator,
        pruning=args.pruning,
        k=args.k,
        jitter=args.jitter,
        draws=args.draws,
    )
    atomic_write_text(args.out, json.dumps(report, indent=2) + "\n")

    for family, tau in sorted(report["mean_tau_by_family"].items()):
        print(f"topk rank stability: {family:7s} mean tau {tau:+.3f}")
    print(
        f"topk: k={report['k']}, jitter={report['jitter']}, "
        f"{len(report['queries'])} queries in "
        f"{report['elapsed_seconds']:.2f}s"
    )

    for failure in report["failures"]:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if report["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
