"""Enumeration speed benchmark + perf-regression gate (``enumspeed``).

Times the three exact enumerators that must agree bit-for-bit under the
``C_out`` cost model — DPccp (bottom-up baseline), DPconv (the layered
subset-convolution fast path) and top-down APCBI — over a seeded
chain/star/cycle/clique matrix, and emits ``BENCH_enumspeed.json``.

Two kinds of failure are gated:

* **cost divergence** (always checked, in-run): every algorithm must
  produce the same optimal cost, compared by ``float.hex()`` — a single
  differing ulp fails the run.  This is the safety net behind the hot-loop
  speed passes: an "optimization" that drifts a cost shows up here before
  it shows up in a wrong plan.
* **relative slowdown** (``--check BASELINE.json``): wall-clock is not
  portable across machines, so the gate compares *normed* times — each
  algorithm's seconds divided by DPccp's seconds on the same query.  A
  normed time more than ``--threshold`` (default 15%) above the checked-in
  baseline's fails the gate; entries where DPccp itself finishes faster
  than ``--min-seconds`` are too noisy to norm and are reported but not
  gated.

CI runs this as the ``enumspeed-gate`` job::

    python -m repro.bench.enumspeed --check BENCH_enumspeed.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from repro.context.store import atomic_write_text
from repro.core.optimizer import Optimizer, run_dpccp, run_dpconv
from repro.cost.cout import CoutCostModel
from repro.workload.generator import QueryGenerator

__all__ = ["run_benchmark", "check_against", "main"]

#: (family, relations) matrix.  Sizes where enumeration (not setup)
#: dominates; clique stops at 12 to keep the CI job under ~half a minute.
DEFAULT_WORKLOAD = (
    ("chain", 8),
    ("chain", 10),
    ("chain", 12),
    ("chain", 14),
    ("star", 8),
    ("star", 10),
    ("star", 12),
    ("star", 14),
    ("cycle", 8),
    ("cycle", 10),
    ("cycle", 12),
    ("cycle", 14),
    ("clique", 8),
    ("clique", 10),
    ("clique", 12),
)

SEED = 20120403

#: Maximum tolerated relative slowdown of a normed time vs. the baseline.
DEFAULT_THRESHOLD = 0.15

#: Entries whose DPccp time is below this are too noisy to norm against.
DEFAULT_MIN_SECONDS = 0.05

#: The algorithms under test.  DPccp is the normalizer and must stay first.
ALGORITHMS = ("dpccp", "dpconv", "topdown_apcbi")


def _run_algorithm(name: str, query):
    if name == "dpccp":
        return run_dpccp(query, cost_model_factory=CoutCostModel)
    if name == "dpconv":
        return run_dpconv(query)
    if name == "topdown_apcbi":
        # dpconv_auto off: this row measures the top-down enumerator
        # itself, not the facade's fast-path routing.
        return Optimizer(
            pruning="apcbi",
            cost_model_factory=CoutCostModel,
            dpconv_auto=False,
        ).optimize(query)
    raise ValueError(f"unknown enumspeed algorithm {name!r}")


def run_benchmark(
    rounds: int = 3,
    seed: int = SEED,
    workload=DEFAULT_WORKLOAD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> Dict[str, object]:
    """Time every algorithm on every query; returns the JSON report.

    Per (query, algorithm) the reported time is the minimum across
    ``rounds`` runs — the noise-robust statistic for benchmarking — and
    the per-round order interleaves algorithms so cache warmup cannot
    systematically favor one of them.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    generator = QueryGenerator(seed=seed)
    queries = [
        (family, size, generator.generate(family, size))
        for family, size in workload
    ]

    entries: List[Dict[str, object]] = []
    divergences: List[str] = []
    for family, size, query in queries:
        seconds: Dict[str, float] = {name: float("inf") for name in ALGORITHMS}
        costs: Dict[str, str] = {}
        for _ in range(rounds):
            for name in ALGORITHMS:
                started = time.perf_counter()
                result = _run_algorithm(name, query)
                elapsed = time.perf_counter() - started
                if elapsed < seconds[name]:
                    seconds[name] = elapsed
                costs[name] = result.cost.hex()
        reference = costs["dpccp"]
        for name in ALGORITHMS:
            # Comparing float.hex() *strings*: exact equality is the whole
            # point of the divergence gate, not a float robustness bug.
            if costs[name] != reference:  # repro: disable=no-float-cost-eq
                divergences.append(
                    f"{family}-{size}: {name} cost {costs[name]} != "
                    f"dpccp cost {reference}"
                )
        dpccp_seconds = seconds["dpccp"]
        gated = dpccp_seconds >= min_seconds
        entries.append(
            {
                "family": family,
                "relations": size,
                "seconds": {name: seconds[name] for name in ALGORITHMS},
                "normed": {
                    name: (
                        seconds[name] / dpccp_seconds
                        if dpccp_seconds > 0
                        else float("inf")
                    )
                    for name in ALGORITHMS
                },
                "cost_hex": reference,
                "gated": gated,
            }
        )
    return {
        "benchmark": "enumspeed",
        "seed": seed,
        "rounds": rounds,
        "algorithms": list(ALGORITHMS),
        "min_seconds": min_seconds,
        "entries": entries,
        "cost_divergences": divergences,
    }


def check_against(
    report: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[str]:
    """Compare ``report`` to a checked-in ``baseline``; return failures.

    Only normed (machine-portable) times are compared, and only for
    entries both sides flagged as ``gated``.  Cost divergences in the
    fresh report always fail.  An entry present in the baseline but
    missing from the report fails too — silently dropping the expensive
    rows is not a way to pass the gate.
    """
    failures = list(report.get("cost_divergences") or [])
    current = {
        (e["family"], e["relations"]): e for e in report.get("entries", [])
    }
    for expected in baseline.get("entries", []):
        key = (expected["family"], expected["relations"])
        entry = current.get(key)
        if entry is None:
            failures.append(
                f"{key[0]}-{key[1]}: present in baseline but missing from "
                "this run"
            )
            continue
        if not (expected.get("gated") and entry.get("gated")):
            continue
        min_seconds = float(baseline.get("min_seconds", DEFAULT_MIN_SECONDS))
        for name, baseline_normed in expected["normed"].items():
            observed = entry["normed"].get(name)
            if observed is None:
                failures.append(f"{key[0]}-{key[1]}: {name} not measured")
                continue
            # A ratio of two ~10ms timings jitters well past any sensible
            # threshold; only gate an algorithm once one side of the
            # comparison spends real time on the query.
            if (
                expected["seconds"][name] < min_seconds
                and entry["seconds"][name] < min_seconds
            ):
                continue
            if observed > baseline_normed * (1.0 + threshold):
                failures.append(
                    f"{key[0]}-{key[1]}: {name} normed time "
                    f"{observed:.3f} exceeds baseline "
                    f"{baseline_normed:.3f} by more than {threshold:.0%}"
                )
    return failures


def _speedup_line(report: Dict[str, object]) -> str:
    lines = []
    for entry in report["entries"]:
        seconds = entry["seconds"]
        dpconv = seconds.get("dpconv")
        if dpconv:
            speedup = seconds["dpccp"] / dpconv
            lines.append(
                f"{entry['family']}-{entry['relations']}: "
                f"dpccp {seconds['dpccp']:.3f}s dpconv {dpconv:.3f}s "
                f"({speedup:.1f}x)"
            )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench-enumspeed",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--out",
        default="BENCH_enumspeed.json",
        help="output JSON path (default: BENCH_enumspeed.json)",
    )
    parser.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="baseline JSON to gate against; non-zero exit on regression",
    )
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="maximum tolerated normed-time slowdown vs. the baseline",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(rounds=args.rounds)
    print(_speedup_line(report))

    failures: List[str] = list(report["cost_divergences"])
    if args.check is not None:
        with open(args.check, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures = check_against(report, baseline, threshold=args.threshold)
        # Gating run: leave the checked-in baseline untouched unless the
        # caller pointed --out somewhere else explicitly.
        if args.out != args.check:
            atomic_write_text(
                args.out, json.dumps(report, indent=2) + "\n"
            )
    else:
        atomic_write_text(args.out, json.dumps(report, indent=2) + "\n")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
