"""Per-plan-class enumeration profiling.

:class:`InstrumentedPartitioning` wraps any partitioning strategy and
records, per vertex set, how many times its ccps were enumerated and how
many ccps each pass produced.  This is the diagnostic behind the APCB
worst case (§IV-D, fourth advancement): a healthy run enumerates each
class once; ACB's cascade re-enumerates the same classes with slowly
rising budgets, and the profile shows exactly which classes and how often.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.graph import bitset
from repro.graph.query_graph import QueryGraph
from repro.partitioning.base import PartitioningStrategy

__all__ = ["InstrumentedPartitioning", "EnumerationProfile"]


@dataclass
class EnumerationProfile:
    """What one optimizer run asked of its partitioning strategy."""

    #: vertex set -> number of enumeration passes over its ccps.
    passes: Dict[int, int] = field(default_factory=dict)
    #: vertex set -> total ccps produced across all passes.
    ccps: Dict[int, int] = field(default_factory=dict)

    @property
    def total_passes(self) -> int:
        return sum(self.passes.values())

    @property
    def distinct_classes(self) -> int:
        return len(self.passes)

    def re_enumerated_classes(self) -> List[Tuple[int, int]]:
        """Classes enumerated more than once, worst first."""
        repeated = [
            (vertex_set, count)
            for vertex_set, count in self.passes.items()
            if count > 1
        ]
        repeated.sort(key=lambda item: item[1], reverse=True)
        return repeated

    def cascade_factor(self) -> float:
        """Total passes per distinct class — 1.0 means no re-enumeration."""
        if not self.passes:
            return 0.0
        return self.total_passes / self.distinct_classes

    def render(self, limit: int = 10) -> str:
        """Human-readable summary of the worst re-enumerated classes."""
        lines = [
            f"enumeration passes: {self.total_passes} over "
            f"{self.distinct_classes} classes "
            f"(cascade factor {self.cascade_factor():.2f})"
        ]
        for vertex_set, count in self.re_enumerated_classes()[:limit]:
            # .get, not [] — a pass recorded in `passes` whose generator was
            # abandoned before producing anything (budget exhaustion mid-
            # class) must render as 0 ccps, not raise KeyError mid-report.
            lines.append(
                f"  {bitset.format_set(vertex_set):<32} enumerated "
                f"{count} times ({self.ccps.get(vertex_set, 0)} ccps total)"
            )
        return "\n".join(lines)


# Deliberately unregistered: this is a per-run measurement wrapper around a
# registered strategy, not an enumerator of its own.
class InstrumentedPartitioning(PartitioningStrategy):  # repro: disable=registry-complete
    """Wrap a strategy, recording per-class enumeration activity.

    Instances are single-use per optimizer run (the profile accumulates);
    the registry singletons stay untouched.
    """

    def __init__(self, inner: PartitioningStrategy):
        self._inner = inner
        self.name = f"{inner.name}+profile"
        self.label = inner.label
        self.profile = EnumerationProfile()

    def partitions(
        self, graph: QueryGraph, vertex_set: int
    ) -> Iterator[Tuple[int, int]]:
        # Record into both maps *before* yielding anything, so a consumer
        # that abandons the generator mid-pass (budget exhaustion, pruning
        # cutoffs) can never leave a class present in `passes` but missing
        # from `ccps` — the asymmetry that used to crash render().
        profile = self.profile
        profile.passes[vertex_set] = profile.passes.get(vertex_set, 0) + 1
        profile.ccps[vertex_set] = profile.ccps.get(vertex_set, 0)
        ccps = profile.ccps
        for pair in self._inner.partitions(graph, vertex_set):
            ccps[vertex_set] += 1
            yield pair
