"""Experiment drivers — one per table/figure of the paper's §V.

Every driver returns an :class:`ExperimentResult` with a paper-style text
rendering plus machine-readable data, and is callable both from the
``repro-bench`` CLI (``python -m repro.bench``) and from the
pytest-benchmark wrappers under ``benchmarks/``.

Scale note: the paper ran >20 000 queries with up to ~20 relations on a
C++ build.  The defaults here are sized for pure Python (see DESIGN.md §3);
every driver accepts ``sizes`` / ``queries_per_size`` so users can scale up.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.ascii_charts import bar_chart, line_chart
from repro.bench.density import density_profile, render_density
from repro.bench.harness import (
    CHART_ALGORITHMS,
    PAPER_ALGORITHMS,
    AlgorithmSpec,
    WorkloadMeasurement,
    run_workload,
)
from repro.bench.tables import render_series, render_table2, render_table3
from repro.context.store import atomic_write_text
from repro.core.advancements import ADVANCEMENT_NAMES, AdvancementConfig
from repro.workload.generator import QueryGenerator
from repro.workload.suite import WorkloadSuite, default_suite

__all__ = [
    "ExperimentResult",
    "EvaluationRun",
    "table2",
    "table3",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "enumerator_overhead",
    "EXPERIMENTS",
    "run_experiment",
]


@dataclass
class ExperimentResult:
    """One regenerated table or figure."""

    name: str
    description: str
    text: str
    data: Dict = field(default_factory=dict)

    def save(self, directory: Path) -> Path:
        """Persist text and JSON under ``directory``; returns the JSON path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            str(directory / f"{self.name}.txt"),
            f"{self.description}\n\n{self.text}\n",
        )
        json_path = directory / f"{self.name}.json"
        atomic_write_text(
            str(json_path), json.dumps(self.data, indent=2, default=str)
        )
        return json_path


# ----------------------------------------------------------------------
# Tables II and III share one (expensive) full-matrix run.
# ----------------------------------------------------------------------


class EvaluationRun:
    """Full-matrix measurement over a suite, computed once, rendered twice."""

    def __init__(
        self,
        suite: Optional[WorkloadSuite] = None,
        algorithms: Sequence[AlgorithmSpec] = PAPER_ALGORITHMS,
    ):
        self._suite = suite if suite is not None else default_suite()
        self._algorithms = list(algorithms)
        self._families: Optional[Dict[str, WorkloadMeasurement]] = None

    @property
    def labels(self) -> List[str]:
        return [spec.label for spec in self._algorithms]

    def families(self) -> Dict[str, WorkloadMeasurement]:
        if self._families is None:
            self._families = {
                family: run_workload(queries, self._algorithms)
                for family, queries in self._suite
            }
        return self._families

    def data(self) -> Dict:
        payload: Dict = {}
        for family, measurement in self.families().items():
            rows = {}
            for label in self.labels:
                time_summary = measurement.normed_time_summary(label)
                success = measurement.success_summary(label)
                failed = measurement.failed_summary(label)
                rows[label] = {
                    "normed_time": {
                        "min": time_summary.minimum,
                        "max": time_summary.maximum,
                        "avg": time_summary.average,
                    },
                    "avg_s": success.average,
                    "max_s": success.maximum,
                    "avg_f": failed.average,
                    "max_f": failed.maximum,
                }
            dpccp = measurement.dpccp_summary()
            payload[family] = {
                "dpccp_seconds": {
                    "min": dpccp.minimum,
                    "max": dpccp.maximum,
                    "avg": dpccp.average,
                },
                "algorithms": rows,
                "queries": len(measurement.measurements),
            }
        return payload


def table2(run: Optional[EvaluationRun] = None) -> ExperimentResult:
    """Table II: min/max/avg normed runtimes, all families x algorithms."""
    run = run if run is not None else EvaluationRun()
    text = render_table2(run.families(), run.labels)
    return ExperimentResult(
        name="table2",
        description=(
            "Table II reproduction: minimum, maximum and average normed "
            "runtime (algorithm time / DPccp time) per graph family."
        ),
        text=text,
        data=run.data(),
    )


def table3(run: Optional[EvaluationRun] = None) -> ExperimentResult:
    """Table III: normed built (s) and failed (f) counters."""
    run = run if run is not None else EvaluationRun()
    text = render_table3(run.families(), run.labels)
    return ExperimentResult(
        name="table3",
        description=(
            "Table III reproduction: average and maximum of the normed "
            "number of plan classes built (s) and failed build passes (f), "
            "normalized by DPccp's plan-class count."
        ),
        text=text,
        data=run.data(),
    )


# ----------------------------------------------------------------------
# Scaling figures (7, 9, 10, 11, 12): runtime vs number of relations.
# ----------------------------------------------------------------------


def _sweep(
    family: str,
    sizes: Sequence[int],
    queries_per_size: int,
    algorithms: Sequence[AlgorithmSpec],
    seed: int,
) -> Tuple[WorkloadMeasurement, Dict[str, Dict[int, float]]]:
    generator = QueryGenerator(seed=seed)
    queries = []
    for index, size in enumerate(s for s in sizes for _ in range(queries_per_size)):
        scheme = "fk" if index % 2 == 0 else "random"
        queries.append(generator.generate(family, size, scheme))
    measurement = run_workload(queries, algorithms)
    series = {spec.label: measurement.by_size(spec.label) for spec in algorithms}
    return measurement, series


def _scaling_figure(
    name: str,
    description: str,
    family: str,
    sizes: Sequence[int],
    queries_per_size: int,
    seed: int,
    algorithms: Sequence[AlgorithmSpec] = CHART_ALGORITHMS,
) -> ExperimentResult:
    measurement, series = _sweep(family, sizes, queries_per_size, algorithms, seed)
    dpccp = measurement.dpccp_by_size()
    table = render_series(
        f"{description}\n(normed time = algorithm / DPccp; DPccp column in seconds)",
        "#relations",
        {"DPccp [s]": dpccp, **series},
    )
    chart = line_chart(series, title="")
    return ExperimentResult(
        name=name,
        description=description,
        text=f"{table}\n\n{chart}",
        data={"dpccp_seconds_by_size": dpccp, "normed_time_by_size": series},
    )


def figure7(
    sizes: Sequence[int] = tuple(range(5, 14)),
    queries_per_size: int = 3,
    seed: int = 7001,
) -> ExperimentResult:
    """Fig. 7: performance vs #relations, random acyclic queries."""
    return _scaling_figure(
        "figure7",
        "Fig. 7 reproduction: random acyclic queries, runtime vs relations",
        "acyclic",
        sizes,
        queries_per_size,
        seed,
    )


def figure9(
    sizes: Sequence[int] = tuple(range(5, 17)),
    queries_per_size: int = 3,
    seed: int = 9001,
) -> ExperimentResult:
    """Fig. 9: performance vs #relations, chain queries."""
    return _scaling_figure(
        "figure9",
        "Fig. 9 reproduction: chain queries, runtime vs relations",
        "chain",
        sizes,
        queries_per_size,
        seed,
    )


def figure10(
    sizes: Sequence[int] = tuple(range(5, 12)),
    queries_per_size: int = 3,
    seed: int = 10001,
) -> ExperimentResult:
    """Fig. 10: star queries with pruning-disabled selectivities.

    These queries measure pure pruning *overhead*: the star catalogs force
    every intermediate result to the hub's cardinality, so no plan can be
    pruned and every bounding algorithm should be at or above its unpruned
    counterpart.
    """
    return _scaling_figure(
        "figure10",
        "Fig. 10 reproduction: star queries (pruning disabled by selectivities)",
        "star",
        sizes,
        queries_per_size,
        seed,
    )


def figure11(
    sizes: Sequence[int] = tuple(range(5, 15)),
    queries_per_size: int = 3,
    seed: int = 11001,
) -> ExperimentResult:
    """Fig. 11: performance vs #relations, cycle queries."""
    return _scaling_figure(
        "figure11",
        "Fig. 11 reproduction: cycle queries, runtime vs relations",
        "cycle",
        sizes,
        queries_per_size,
        seed,
    )


def figure12(
    sizes: Sequence[int] = tuple(range(5, 11)),
    queries_per_size: int = 3,
    seed: int = 12001,
) -> ExperimentResult:
    """Fig. 12: performance vs #relations, clique queries."""
    return _scaling_figure(
        "figure12",
        "Fig. 12 reproduction: clique queries, runtime vs relations",
        "clique",
        sizes,
        queries_per_size,
        seed,
    )


# ----------------------------------------------------------------------
# Fixed-size comparison and density figures (8, 13, 14).
# ----------------------------------------------------------------------


def figure13(
    n_relations: int = 12,
    n_queries: int = 12,
    seed: int = 13001,
) -> ExperimentResult:
    """Fig. 13: random cyclic queries at a fixed relation count.

    The paper uses 16 relations; the default here is 12 so the run stays in
    pure-Python territory (DPccp alone takes minutes per 16-relation cyclic
    query in CPython).  Pass ``n_relations=16`` to match the paper exactly.
    """
    generator = QueryGenerator(seed=seed)
    queries = [
        generator.generate("cyclic", n_relations, "fk" if i % 2 == 0 else "random")
        for i in range(n_queries)
    ]
    measurement = run_workload(queries, CHART_ALGORITHMS)
    rows = {
        spec.label: measurement.normed_time_summary(spec.label).average
        for spec in CHART_ALGORITHMS
    }
    dpccp = measurement.dpccp_summary()
    lines = [
        f"Fig. 13 reproduction: cyclic queries with {n_relations} relations "
        f"({n_queries} queries).",
        f"{'DPccp average':<24}{dpccp.average:10.4f} s",
    ]
    for label, value in rows.items():
        lines.append(f"{label:<24}{value:10.4f} x")
    lines.append("")
    lines.append(bar_chart(rows, title="average normed time (lower is better)"))
    return ExperimentResult(
        name="figure13",
        description="Fig. 13 reproduction: cyclic fixed-size comparison",
        text="\n".join(lines),
        data={
            "n_relations": n_relations,
            "dpccp_avg_seconds": dpccp.average,
            "avg_normed_time": rows,
        },
    )


def _density_figure(
    name: str,
    description: str,
    measurement: WorkloadMeasurement,
    algorithms: Sequence[AlgorithmSpec],
) -> ExperimentResult:
    profiles = [
        density_profile(spec.label, measurement.normed_times(spec.label))
        for spec in algorithms
    ]
    text = render_density(profiles)
    return ExperimentResult(
        name=name,
        description=description,
        text=text,
        data={
            profile.label: {
                "quartiles": profile.quartiles,
                "histogram": profile.histogram,
            }
            for profile in profiles
        },
    )


def figure8(
    sizes: Sequence[int] = tuple(range(6, 14)),
    queries_per_size: int = 4,
    seed: int = 8001,
) -> ExperimentResult:
    """Fig. 8: density of normed runtimes over random acyclic queries."""
    measurement, _ = _sweep("acyclic", sizes, queries_per_size, CHART_ALGORITHMS, seed)
    return _density_figure(
        "figure8",
        "Fig. 8 reproduction: cumulative density of normed runtimes, "
        "random acyclic queries",
        measurement,
        CHART_ALGORITHMS,
    )


def figure14(
    n_relations: int = 12,
    n_queries: int = 16,
    seed: int = 14001,
) -> ExperimentResult:
    """Fig. 14: density of normed runtimes, cyclic queries at fixed size."""
    generator = QueryGenerator(seed=seed)
    queries = [
        generator.generate("cyclic", n_relations, "fk" if i % 2 == 0 else "random")
        for i in range(n_queries)
    ]
    measurement = run_workload(queries, CHART_ALGORITHMS)
    return _density_figure(
        "figure14",
        f"Fig. 14 reproduction: cumulative density of normed runtimes, "
        f"cyclic queries with {n_relations} relations",
        measurement,
        CHART_ALGORITHMS,
    )


# ----------------------------------------------------------------------
# Figure 15: the advancement ablation.
# ----------------------------------------------------------------------

#: Human-readable bar names in the paper's order.
_ABLATION_BARS: Tuple[Tuple[str, Optional[AdvancementConfig], str], ...] = (
    ("APCB", None, "apcb"),
    ("+improved LBE", AdvancementConfig.only("improved_lbe"), "apcbi"),
    ("+Goo upper bounds", AdvancementConfig.only("heuristic_upper_bounds"), "apcbi"),
    ("+improved lower bounds", AdvancementConfig.only("improved_lower_bounds"), "apcbi"),
    ("+rising budget", AdvancementConfig.only("rising_budget"), "apcbi"),
    ("+tighter left budget", AdvancementConfig.only("tighter_left_budget"), "apcbi"),
    ("+Goo & remapping", AdvancementConfig.only("renumber_graph"), "apcbi"),
    ("all but remapping", AdvancementConfig.all_but("renumber_graph"), "apcbi"),
    ("APCBI", AdvancementConfig.all_on(), "apcbi"),
    ("APCBI_Opt", AdvancementConfig.all_on(), "apcbi_opt"),
)


def figure15(
    acyclic_sizes: Sequence[int] = tuple(range(8, 13)),
    cyclic_sizes: Sequence[int] = tuple(range(8, 12)),
    queries_per_size: int = 2,
    seed: int = 15001,
) -> ExperimentResult:
    """Fig. 15: each advancement measured on top of APCB (TDMcC).

    Every bar is TDMcC with a different pruning configuration; values are
    average normed times (lower is better).  The paper measures advancement
    6 together with the heuristic since remapping depends on it.
    """
    algorithms = [
        AlgorithmSpec("mincut_conservative", pruning, config, display=label)
        for label, config, pruning in _ABLATION_BARS
    ]
    results: Dict[str, Dict[str, float]] = {}
    for family, sizes in (("acyclic", acyclic_sizes), ("cyclic", cyclic_sizes)):
        measurement, _ = _sweep(family, sizes, queries_per_size, algorithms, seed)
        results[family] = {
            spec.display: measurement.normed_time_summary(spec.label).average
            for spec in algorithms
        }
    lines = [
        "Fig. 15 reproduction: average normed time of each pruning "
        "advancement on top of TDMcC_APCB (lower is better).",
        f"{'Configuration':<26}{'acyclic':>12}{'cyclic':>12}",
        "-" * 50,
    ]
    for label, _, _ in _ABLATION_BARS:
        lines.append(
            f"{label:<26}{results['acyclic'][label]:10.4f} x"
            f"{results['cyclic'][label]:10.4f} x"
        )
    for family in ("acyclic", "cyclic"):
        lines.append("")
        lines.append(
            bar_chart(results[family], title=f"{family}: avg normed time")
        )
    return ExperimentResult(
        name="figure15",
        description="Fig. 15 reproduction: pruning-advancement ablation",
        text="\n".join(lines),
        data=results,
    )


def enumerator_overhead(
    star_sizes: Sequence[int] = tuple(range(6, 15)),
    chain_sizes: Sequence[int] = tuple(range(6, 15)),
    queries_per_size: int = 2,
    seed: int = 16001,
) -> ExperimentResult:
    """Extension experiment: pure enumeration cost of all partitioners.

    §III-C motivates MinCutConservative with the exponential overhead of
    generate-and-test approaches on star queries ("constructing every
    possible connected subset C of S produces an exponential overhead").
    This experiment measures all four MinCut strategies (plus AGaT, the
    pre-conservative [5] baseline) without pruning, where runtime is pure
    enumeration + plan construction: stars separate AGaT from the rest by
    orders of magnitude while chains keep everyone comparable.
    """
    algorithms = [
        AlgorithmSpec(name, "none")
        for name in ("mincut_agat", "mincut_lazy", "mincut_branch",
                     "mincut_conservative")
    ]
    results: Dict[str, Dict[str, Dict[int, float]]] = {}
    text_blocks = []
    for family, sizes in (("star", star_sizes), ("chain", chain_sizes)):
        _, series = _sweep(family, sizes, queries_per_size, algorithms, seed)
        results[family] = series
        text_blocks.append(
            render_series(
                f"{family} queries: normed time of unpruned enumerators",
                "#relations",
                series,
            )
        )
    return ExperimentResult(
        name="enumerator_overhead",
        description=(
            "Extension: enumeration overhead of AGaT vs the MinCut "
            "strategies on stars (exponential candidate space) and chains"
        ),
        text="\n\n".join(text_blocks),
        data=results,
    )


#: Experiment registry for the CLI and the benchmark wrappers.
EXPERIMENTS = {
    "table2": table2,
    "table3": table3,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "figure12": figure12,
    "figure13": figure13,
    "figure14": figure14,
    "figure15": figure15,
    "enumerator_overhead": enumerator_overhead,
}


def run_experiment(name: str) -> ExperimentResult:
    """Run one experiment by registry name with default parameters."""
    try:
        driver = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return driver()
