"""Tiered plan-cache benchmark: Zipfian replay, admission, recovery (ISSUE 9).

Three experiments over the durable L2 tier, one JSON report::

    python -m repro.bench.plancache_tiered --out BENCH_plancache_tiered.json

``zipfian_replay``
    A seeded Zipf-distributed request trace over a pool of distinct
    queries, served twice: by a cold process (fresh segment, every first
    occurrence enumerates and persists) and by a warm-started process (a
    brand-new cache over the same segment — empty L1, recovery-warmed
    L2).  Reports both hit rates and asserts the warm pass is
    bit-identical to the cold one and never re-enumerates.

``admission_sweep``
    The same cold workload under increasing ``min_expansions``
    thresholds; reports entries persisted and bytes on disk per
    threshold and asserts both shrink monotonically.

``recovery_curve``
    Segments of growing entry counts, each opened cold; reports recovery
    wall time per log size and asserts every entry is replayed.

The process exits non-zero if any invariant is violated, which is what
the CI cache-durability-smoke job asserts.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import tempfile
import time
from typing import Dict, List, Sequence, Tuple

from repro.context import AdmissionPolicy, DurableStore, TieredPlanCache
from repro.context.store import atomic_write_text
from repro.core.optimizer import Optimizer
from repro.query import Query
from repro.workload.generator import QueryGenerator

__all__ = [
    "run_admission_sweep",
    "run_recovery_curve",
    "run_tiered_benchmark",
    "run_zipfian_replay",
    "main",
]

SEED = 20120409

#: Distinct (family, size) shapes for the replay pool — small enough that
#: the cold pass stays in CI-smoke territory, varied enough that admission
#: thresholds actually discriminate.
DEFAULT_POOL_SHAPES = (
    ("chain", 6),
    ("chain", 8),
    ("chain", 10),
    ("cycle", 6),
    ("cycle", 8),
    ("star", 6),
    ("star", 8),
    ("clique", 5),
    ("clique", 6),
    ("chain", 12),
    ("cycle", 10),
    ("star", 9),
)

DEFAULT_REQUESTS = 120
ZIPF_EXPONENT = 1.1

#: ``min_expansions`` thresholds for the admission sweep; 0 admits
#: everything, the last admits nothing.
DEFAULT_THRESHOLDS = (0, 50, 500, 5_000, 10**9)

#: Entry counts for the recovery curve.
DEFAULT_LOG_SIZES = (16, 64, 256, 1024)


def _pool(seed: int, shapes: Sequence[Tuple[str, int]]) -> List[Query]:
    generator = QueryGenerator(seed=seed)
    return [generator.generate(family, size) for family, size in shapes]


def _zipf_trace(seed: int, pool_size: int, requests: int) -> List[int]:
    """A seeded Zipf(``ZIPF_EXPONENT``) trace of pool indices."""
    weights = [1.0 / (rank + 1) ** ZIPF_EXPONENT for rank in range(pool_size)]
    rng = random.Random(seed)
    return rng.choices(range(pool_size), weights=weights, k=requests)


def _replay(
    cache: TieredPlanCache, pool: Sequence[Query], trace: Sequence[int]
) -> Dict[str, object]:
    """Serve ``trace`` through one optimizer over ``cache``."""
    optimizer = Optimizer(plan_cache=cache)
    started = time.perf_counter()
    costs = []
    enumerated = 0
    for index in trace:
        result = optimizer.optimize(pool[index])
        costs.append(result.cost.hex())
        if result.memo_entries:
            enumerated += 1
    return {
        "seconds": time.perf_counter() - started,
        "costs": costs,
        "enumerated": enumerated,
        "l1_hits": cache.hits,
        "l2_hits": cache.l2_hits,
        "hit_rate": cache.hits / len(trace),
    }


def run_zipfian_replay(
    store_dir: str,
    seed: int = SEED,
    shapes: Sequence[Tuple[str, int]] = DEFAULT_POOL_SHAPES,
    requests: int = DEFAULT_REQUESTS,
) -> Dict[str, object]:
    """Cold replay populating the segment, then a warm-started replay."""
    os.makedirs(store_dir, exist_ok=True)
    pool = _pool(seed, shapes)
    trace = _zipf_trace(seed + 1, len(pool), requests)
    path = os.path.join(store_dir, "replay.rpl")

    cold_cache = TieredPlanCache.open(path)
    cold = _replay(cold_cache, pool, trace)
    appended = cold_cache.store.appended
    cold_cache.close()

    # "Warm start": a fresh process image — empty L1, recovery-warmed L2.
    warm_cache = TieredPlanCache.open(path)
    warm = _replay(warm_cache, pool, trace)
    warm_entries = warm_cache.snapshot()["l2"]["warm_entries"]
    warm_cache.close()

    violations = []
    if warm["costs"] != cold["costs"]:
        mismatches = sum(
            1 for got, want in zip(warm["costs"], cold["costs"]) if got != want
        )
        violations.append(
            f"warm replay produced {mismatches} cost(s) not bit-identical "
            "to the cold replay"
        )
    if warm["enumerated"]:
        violations.append(
            f"warm replay re-enumerated {warm['enumerated']} request(s); "
            "every lookup should be served from L1 or the warm L2"
        )
    if warm["l2_hits"] == 0:
        violations.append("warm replay never hit L2 — warm start is vacuous")

    return {
        "pool": [list(pair) for pair in shapes],
        "requests": requests,
        "distinct_queries": len(pool),
        "zipf_exponent": ZIPF_EXPONENT,
        "entries_persisted": appended,
        "warm_entries": warm_entries,
        "cold": {k: v for k, v in cold.items() if k != "costs"},
        "warm": {k: v for k, v in warm.items() if k != "costs"},
        "cold_costs": cold["costs"][: len(pool)],
        "violations": violations,
    }


def run_admission_sweep(
    store_dir: str,
    seed: int = SEED,
    shapes: Sequence[Tuple[str, int]] = DEFAULT_POOL_SHAPES,
    thresholds: Sequence[int] = DEFAULT_THRESHOLDS,
) -> Dict[str, object]:
    """One cold pass per ``min_expansions`` threshold; bytes + entries."""
    os.makedirs(store_dir, exist_ok=True)
    pool = _pool(seed, shapes)
    points = []
    for threshold in thresholds:
        path = os.path.join(store_dir, f"admission-{threshold}.rpl")
        cache = TieredPlanCache.open(
            path, admission=AdmissionPolicy(min_expansions=threshold)
        )
        optimizer = Optimizer(plan_cache=cache)
        for query in pool:
            optimizer.optimize(query)
        cache.close()
        points.append(
            {
                "min_expansions": threshold,
                "persisted": cache.store.appended,
                "admission_skips": cache.admission_skips,
                "bytes": os.path.getsize(path),
            }
        )

    violations = []
    for previous, current in zip(points, points[1:]):
        if current["persisted"] > previous["persisted"]:
            violations.append(
                f"admission sweep not monotone: threshold "
                f"{current['min_expansions']} persisted more entries than "
                f"{previous['min_expansions']}"
            )
    if points[0]["persisted"] != len(pool):
        violations.append(
            "threshold 0 must admit every distinct query "
            f"({points[0]['persisted']} != {len(pool)})"
        )
    if points[-1]["persisted"] != 0:
        violations.append("the top threshold should admit nothing")
    return {"points": points, "violations": violations}


def run_recovery_curve(
    store_dir: str,
    seed: int = SEED,
    sizes: Sequence[int] = DEFAULT_LOG_SIZES,
) -> Dict[str, object]:
    """Open segments of growing entry counts; recovery wall time each."""
    os.makedirs(store_dir, exist_ok=True)
    from repro.context import CachedPlan, fingerprint
    from repro.core.optimizer import run_dpccp

    query = QueryGenerator(seed=seed).generate("star", 7)
    fp = fingerprint(query)
    entry = CachedPlan(
        run_dpccp(query).plan.relabel(fp.mapping),
        fp.payload,
        cold_seconds=0.25,
        expansions=100,
    )

    points = []
    violations = []
    for size in sizes:
        path = os.path.join(store_dir, f"recovery-{size}.rpl")
        with DurableStore(path, fsync=False) as store:
            for index in range(size):
                store.append(f"{fp.key}:{index}", entry)
        log_bytes = os.path.getsize(path)
        started = time.perf_counter()
        recovered = DurableStore(path, fsync=False)
        seconds = time.perf_counter() - started
        if recovered.report.entries_replayed != size:
            violations.append(
                f"recovery at size {size} replayed "
                f"{recovered.report.entries_replayed}/{size} entries"
            )
        recovered.close()
        points.append(
            {"entries": size, "bytes": log_bytes, "seconds": seconds}
        )
    return {"points": points, "violations": violations}


def run_tiered_benchmark(
    seed: int = SEED,
    requests: int = DEFAULT_REQUESTS,
) -> Dict[str, object]:
    """All three experiments in one throwaway store directory."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-tiered-") as tmp:
        replay = run_zipfian_replay(tmp, seed=seed, requests=requests)
        admission = run_admission_sweep(tmp, seed=seed)
        recovery = run_recovery_curve(tmp, seed=seed)
    return {
        "benchmark": "plancache_tiered",
        "seed": seed,
        "zipfian_replay": replay,
        "admission_sweep": admission,
        "recovery_curve": recovery,
        "violations": (
            replay["violations"]
            + admission["violations"]
            + recovery["violations"]
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench-plancache-tiered",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--out",
        default="BENCH_plancache_tiered.json",
        help="output JSON path (default: BENCH_plancache_tiered.json)",
    )
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument(
        "--requests",
        type=int,
        default=DEFAULT_REQUESTS,
        help="Zipfian trace length (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    report = run_tiered_benchmark(seed=args.seed, requests=args.requests)
    atomic_write_text(args.out, json.dumps(report, indent=2) + "\n")

    replay = report["zipfian_replay"]
    recovery = report["recovery_curve"]["points"][-1]
    print(
        f"tiered cache: cold {replay['cold']['seconds']:.3f}s "
        f"(hit rate {replay['cold']['hit_rate']:.0%}), "
        f"warm {replay['warm']['seconds']:.3f}s "
        f"(hit rate {replay['warm']['hit_rate']:.0%}, "
        f"{replay['warm']['l2_hits']} L2 hits); "
        f"recovery of {recovery['entries']} entries "
        f"({recovery['bytes']} B) in {recovery['seconds'] * 1e3:.1f}ms"
    )
    for violation in report["violations"]:
        print(f"FAIL: {violation}", file=sys.stderr)
    return 1 if report["violations"] else 0


if __name__ == "__main__":
    sys.exit(main())
