"""ASCII chart rendering for the figure experiments.

The paper's Figs. 7–15 are log-scale line charts and bar charts.  The
experiment drivers emit aligned numeric tables (precise, diff-able) plus
the renderings produced here, which make the *shape* — crossovers, the
APCB outliers, APCBI's flat dominance — visible at a glance in a
terminal.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

__all__ = ["line_chart", "bar_chart"]

#: Glyphs assigned to series, in order.
_MARKERS = "*o+x#@%&"


def _log(value: float) -> float:
    return math.log10(max(value, 1e-9))


def line_chart(
    series: Dict[str, Dict[int, float]],
    title: str = "",
    width: int = 64,
    height: int = 16,
    log_y: bool = True,
    y_label: str = "normed time",
) -> str:
    """Render ``{label: {x: y}}`` as an ASCII scatter/line chart.

    X positions are spread over the union of the series' x values; the y
    axis is logarithmic by default because normed times span orders of
    magnitude.  Collisions print the marker of the later series.
    """
    xs = sorted({x for values in series.values() for x in values})
    if not xs or not series:
        return f"{title}\n(no data)"
    all_y = [y for values in series.values() for y in values.values()]
    transform = _log if log_y else (lambda v: v)
    y_low = min(transform(y) for y in all_y)
    y_high = max(transform(y) for y in all_y)
    if y_high - y_low < 1e-12:
        y_high = y_low + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    def column_of(x: int) -> int:
        if len(xs) == 1:
            return width // 2
        position = xs.index(x) / (len(xs) - 1)
        return min(width - 1, int(round(position * (width - 1))))

    def row_of(y: float) -> int:
        position = (transform(y) - y_low) / (y_high - y_low)
        return min(height - 1, int(round((1.0 - position) * (height - 1))))

    legend = []
    for index, (label, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} = {label}")
        points = sorted(values.items())
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            # crude linear interpolation between sample columns
            c0, c1 = column_of(x0), column_of(x1)
            for column in range(c0, c1 + 1):
                if c1 == c0:
                    y = y0
                else:
                    fraction = (column - c0) / (c1 - c0)
                    ty = transform(y0) + fraction * (transform(y1) - transform(y0))
                    y = 10**ty if log_y else ty
                grid[row_of(y)][column] = marker
        for x, y in points:
            grid[row_of(y)][column_of(x)] = marker

    lines = []
    if title:
        lines.append(title)
    top_value = 10**y_high if log_y else y_high
    low_value = 10**y_low if log_y else y_low
    lines.append(f"{y_label} ({'log scale' if log_y else 'linear'})")
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = f"{top_value:8.2f} |"
        elif row_index == height - 1:
            prefix = f"{low_value:8.2f} |"
        else:
            prefix = " " * 8 + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    x_axis = " " * 10 + f"{xs[0]:<10}{'#relations':^{max(0, width - 20)}}{xs[-1]:>10}"
    lines.append(x_axis)
    lines.append("  ".join(legend))
    return "\n".join(lines)


def bar_chart(
    values: Dict[str, float],
    title: str = "",
    width: int = 48,
    unit: str = "x",
) -> str:
    """Render ``{label: value}`` as a horizontal ASCII bar chart."""
    if not values:
        return f"{title}\n(no data)"
    longest_label = max(len(label) for label in values)
    peak = max(values.values())
    lines = [title] if title else []
    for label, value in values.items():
        bar_length = 0 if peak <= 0 else int(round(width * value / peak))
        lines.append(
            f"{label:<{longest_label}}  "
            f"{'#' * bar_length:<{width}} {value:8.3f}{unit}"
        )
    return "\n".join(lines)
