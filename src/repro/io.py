"""Query (de)serialization: JSON round-trip for queries and plans.

Lets users describe their own schemas/queries in a plain JSON document and
optimize them with the library, and lets the harness persist queries for
later re-runs.  The format is deliberately simple::

    {
      "relations": [
        {"name": "sales", "cardinality": 6000000, "tuple_width": 120},
        {"name": "date_dim", "cardinality": 2500}
      ],
      "joins": [
        {"left": 0, "right": 1, "selectivity": 0.0004}
      ],
      "family": "custom"            // optional metadata
    }

Relation order defines the vertex indices; ``left``/``right`` may also be
relation names.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.catalog.catalog import Catalog
from repro.catalog.relation import DEFAULT_TUPLE_WIDTH, RelationStats
from repro.context.store import atomic_write_text
from repro.errors import CatalogError
from repro.graph.query_graph import QueryGraph
from repro.plans.join_tree import JoinNode, JoinTree, LeafNode
from repro.query import Query

__all__ = [
    "query_to_dict",
    "query_from_dict",
    "load_query",
    "save_query",
    "plan_to_dict",
]


def query_to_dict(query: Query) -> Dict:
    """Serialize a query to the JSON-ready dictionary format."""
    relations = []
    for index in range(query.n_relations):
        stats = query.catalog.relation(index)
        relations.append(
            {
                "name": stats.name or f"R{index}",
                "cardinality": stats.cardinality,
                "tuple_width": stats.tuple_width,
                "domain_sizes": list(stats.domain_sizes),
            }
        )
    joins = [
        {"left": u, "right": v, "selectivity": query.catalog.selectivity(u, v)}
        for u, v in sorted(query.graph.edges)
    ]
    payload = {"relations": relations, "joins": joins}
    if query.family:
        payload["family"] = query.family
    if query.seed is not None:
        payload["seed"] = query.seed
    return payload


def _resolve_endpoint(
    endpoint: Union[int, str], names: Dict[str, int], n_relations: int
) -> int:
    if isinstance(endpoint, str):
        try:
            return names[endpoint]
        except KeyError:
            raise CatalogError(f"unknown relation name {endpoint!r}") from None
    index = int(endpoint)
    if not 0 <= index < n_relations:
        raise CatalogError(
            f"relation index {index} out of range for {n_relations} relations"
        )
    return index


def query_from_dict(payload: Dict) -> Query:
    """Deserialize a query; validates structure and statistics."""
    try:
        raw_relations = payload["relations"]
        raw_joins = payload["joins"]
    except KeyError as missing:
        raise CatalogError(f"query document lacks the {missing} section") from None
    if not raw_relations:
        raise CatalogError("query document declares no relations")

    relations: List[RelationStats] = []
    names: Dict[str, int] = {}
    for index, raw in enumerate(raw_relations):
        name = raw.get("name", f"R{index}")
        if name in names:
            raise CatalogError(f"duplicate relation name {name!r}")
        names[name] = index
        relations.append(
            RelationStats(
                cardinality=float(raw["cardinality"]),
                tuple_width=int(raw.get("tuple_width", DEFAULT_TUPLE_WIDTH)),
                domain_sizes=tuple(raw.get("domain_sizes", ())),
                name=name,
            )
        )

    edges = []
    selectivities = {}
    for raw in raw_joins:
        left = _resolve_endpoint(raw["left"], names, len(relations))
        right = _resolve_endpoint(raw["right"], names, len(relations))
        edges.append((left, right))
        selectivities[(left, right)] = float(raw["selectivity"])

    return Query(
        graph=QueryGraph(len(relations), edges),
        catalog=Catalog(relations, selectivities),
        family=payload.get("family", ""),
        seed=payload.get("seed"),
    )


def save_query(query: Query, path: Union[str, Path]) -> None:
    """Write a query document to ``path`` as pretty-printed JSON."""
    atomic_write_text(str(path), json.dumps(query_to_dict(query), indent=2))


def load_query(path: Union[str, Path]) -> Query:
    """Read a query document from ``path``."""
    return query_from_dict(json.loads(Path(path).read_text()))


def plan_to_dict(plan: JoinTree) -> Dict:
    """Serialize a join tree (for result reporting; plans are not re-read)."""
    if isinstance(plan, LeafNode):
        return {
            "scan": plan.name,
            "relation": plan.relation,
            "cardinality": plan.cardinality,
        }
    assert isinstance(plan, JoinNode)
    return {
        "join": {
            "left": plan_to_dict(plan.left),
            "right": plan_to_dict(plan.right),
        },
        "cardinality": plan.cardinality,
        "operator_cost": plan.operator_cost,
        "total_cost": plan.cost,
    }
