"""Thread-safe metric primitives and the :class:`MetricRegistry`.

The registry is the single place metrics are declared (the
``metric-discipline`` lint rule enforces that no other module grows ad-hoc
module-level counters).  Three instrument kinds cover everything the repo
measures:

* :class:`Counter` — monotonically increasing totals (requests served,
  ccps enumerated, faults injected);
* :class:`Gauge` — point-in-time values that move both ways (queue depth,
  workers alive);
* :class:`Histogram` — fixed-bucket distributions (latencies, passes per
  plan class) with Prometheus-style cumulative exposition.

Design constraints, in order:

1. **determinism-neutral** — recording a metric never draws randomness,
   never reads a wall clock, never changes control flow; armed and
   disarmed runs make bit-identical plan decisions;
2. **near-zero cost when disabled** — every hot-path record checks one
   shared flag before taking any lock;
3. **thread-safe** — instruments carry their own lock; the service's
   worker pool records concurrently.

Metric names follow the Prometheus convention documented in
``docs/telemetry.md``: ``repro_<subsystem>_<quantity>[_<unit>][_total]``,
with optional labels for low-cardinality breakdowns (degradation rung,
enumerator name, response status).
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Type

from repro.errors import TelemetryError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "render_labels",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets, in seconds: half a millisecond to ten
#: seconds, roughly logarithmic — the range a pure-Python optimization
#: run actually spans.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class _Switch:
    """A shared on/off flag; one attribute load on every hot-path record."""

    __slots__ = ("on",)

    def __init__(self, on: bool = True):
        self.on = on


def _escape_label_value(value: object) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def render_labels(labels: Optional[Mapping[str, object]]) -> str:
    """``{k="v",...}`` rendering (sorted, escaped); empty string if none."""
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


class _Instrument:
    """Shared plumbing of all three metric kinds."""

    kind = "untyped"
    __slots__ = ("name", "help", "labels", "_lock", "_switch")

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: Optional[Mapping[str, object]],
        switch: _Switch,
    ):
        self.name = name
        self.help = help_text
        self.labels = dict(labels) if labels else {}
        self._lock = threading.Lock()
        self._switch = switch

    @property
    def full_name(self) -> str:
        """Name plus rendered labels — the registry/snapshot key."""
        return self.name + render_labels(self.labels)

    def expose_lines(self) -> List[str]:
        raise NotImplementedError

    def snapshot_value(self) -> object:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.full_name}, {self.snapshot_value()!r})"


class Counter(_Instrument):
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("_value",)

    def __init__(self, name, help_text, labels, switch):
        super().__init__(name, help_text, labels, switch)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0); a no-op while disabled."""
        if not self._switch.on:
            return
        if amount < 0:
            raise TelemetryError(
                f"counter {self.full_name} cannot decrease (inc({amount}))"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def expose_lines(self) -> List[str]:
        return [f"{self.full_name} {_format_number(self.value)}"]

    def snapshot_value(self) -> object:
        return self.value


class Gauge(_Instrument):
    """A point-in-time value that can move both ways."""

    kind = "gauge"
    __slots__ = ("_value",)

    def __init__(self, name, help_text, labels, switch):
        super().__init__(name, help_text, labels, switch)
        self._value = 0.0

    def set(self, value: float) -> None:
        if not self._switch.on:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._switch.on:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def expose_lines(self) -> List[str]:
        return [f"{self.full_name} {_format_number(self.value)}"]

    def snapshot_value(self) -> object:
        return self.value


class Histogram(_Instrument):
    """A fixed-bucket distribution (Prometheus cumulative-bucket style).

    ``buckets`` are the finite upper bounds, strictly increasing; an
    implicit ``+Inf`` bucket catches the overflow.  Buckets are fixed at
    registration so recording is a bisect plus two adds — no allocation,
    no rebalancing, no data-dependent behavior.
    """

    kind = "histogram"
    __slots__ = ("buckets", "_counts", "_sum", "_count")

    def __init__(self, name, help_text, labels, switch, buckets):
        super().__init__(name, help_text, labels, switch)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise TelemetryError(f"histogram {name} needs at least one bucket")
        if any(not math.isfinite(b) for b in bounds):
            raise TelemetryError(f"histogram {name} buckets must be finite")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise TelemetryError(
                f"histogram {name} buckets must be strictly increasing"
            )
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not self._switch.on:
            return
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> Dict[str, int]:
        """Cumulative counts keyed by upper bound (``"+Inf"`` last)."""
        with self._lock:
            counts = list(self._counts)
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            cumulative[_format_number(bound)] = running
        cumulative["+Inf"] = running + counts[-1]
        return cumulative

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile by interpolation inside buckets.

        Returns ``NaN`` when nothing was observed.  Values in the overflow
        bucket clamp to the largest finite bound (the estimate cannot
        exceed what the buckets can resolve).
        """
        if not 0.0 <= q <= 100.0:
            raise TelemetryError(f"q must be in [0, 100], got {q}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return float("nan")
        rank = (q / 100.0) * total
        running = 0.0
        lower = 0.0
        for bound, count in zip(self.buckets, counts):
            if count:
                running += count
                if running >= rank:
                    fraction = 1.0 - (running - rank) / count
                    return lower + (bound - lower) * fraction
            lower = bound
        return self.buckets[-1]

    def expose_lines(self) -> List[str]:
        label_str = render_labels(self.labels)
        joiner = "," if label_str else ""
        base = label_str[1:-1] if label_str else ""
        lines = []
        for le, cumulative in self.bucket_counts().items():
            lines.append(
                f'{self.name}_bucket{{{base}{joiner}le="{le}"}} {cumulative}'
            )
        lines.append(f"{self.name}_sum{label_str} {_format_number(self.total)}")
        lines.append(f"{self.name}_count{label_str} {self.count}")
        return lines

    def snapshot_value(self) -> object:
        return {
            "count": self.count,
            "sum": self.total,
            "buckets": self.bucket_counts(),
        }


def _format_number(value: float) -> str:
    """Integral floats render without the trailing ``.0`` (``17`` not ``17.0``)."""
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class MetricRegistry:
    """Get-or-create registry of named instruments.

    ``counter`` / ``gauge`` / ``histogram`` return the existing instrument
    for a ``(name, labels)`` pair or create it; asking for the same name
    with a different kind raises :class:`~repro.errors.TelemetryError`
    (one name, one meaning).  ``disable()`` turns every recording into a
    flag check — the instruments stay registered, their values freeze.
    """

    def __init__(self, enabled: bool = True):
        self._switch = _Switch(enabled)
        self._metrics: Dict[str, _Instrument] = {}
        self._help: Dict[str, str] = {}
        self._kinds: Dict[str, str] = {}
        self._buckets: Dict[str, Tuple[float, ...]] = {}
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._switch.on

    def enable(self) -> None:
        self._switch.on = True

    def disable(self) -> None:
        self._switch.on = False

    # -- registration --------------------------------------------------

    def _get(
        self,
        cls: Type[_Instrument],
        name: str,
        help_text: str,
        labels: Optional[Mapping[str, object]],
        **extra,
    ) -> _Instrument:
        if not _NAME_RE.match(name):
            raise TelemetryError(f"invalid metric name {name!r}")
        for label in labels or ():
            if not _LABEL_NAME_RE.match(label):
                raise TelemetryError(
                    f"invalid label name {label!r} on metric {name!r}"
                )
        key = name + render_labels(labels)
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TelemetryError(
                        f"metric {key} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                if cls is Histogram:
                    requested = tuple(
                        float(b)
                        for b in extra.get("buckets", DEFAULT_LATENCY_BUCKETS)
                    )
                    if requested != self._buckets.get(name):
                        raise TelemetryError(
                            f"histogram {name!r} re-registered with "
                            "different buckets; bucket layouts are fixed "
                            "per name"
                        )
                return existing
            registered_kind = self._kinds.get(name)
            if registered_kind is not None and registered_kind != cls.kind:
                raise TelemetryError(
                    f"metric name {name!r} already registered as "
                    f"{registered_kind}, not {cls.kind}"
                )
            if cls is Histogram:
                buckets = tuple(
                    float(b)
                    for b in extra.get("buckets", DEFAULT_LATENCY_BUCKETS)
                )
                known = self._buckets.get(name)
                if known is not None and known != buckets:
                    raise TelemetryError(
                        f"histogram {name!r} re-registered with different "
                        "buckets; bucket layouts are fixed per name"
                    )
                self._buckets[name] = buckets
                metric: _Instrument = Histogram(
                    name, help_text, labels, self._switch, buckets
                )
            else:
                metric = cls(name, help_text, labels, self._switch)
            self._metrics[key] = metric
            self._kinds[name] = cls.kind
            if help_text and name not in self._help:
                self._help[name] = help_text
            return metric

    def counter(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, object]] = None,
    ) -> Counter:
        metric = self._get(Counter, name, help_text, labels)
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, object]] = None,
    ) -> Gauge:
        metric = self._get(Gauge, name, help_text, labels)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, object]] = None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        metric = self._get(Histogram, name, help_text, labels, buckets=buckets)
        assert isinstance(metric, Histogram)
        return metric

    # -- introspection -------------------------------------------------

    def metrics(self) -> List[_Instrument]:
        """Every registered instrument, sorted by full name."""
        with self._lock:
            return sorted(self._metrics.values(), key=lambda m: m.full_name)

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict view: full metric name -> current value."""
        return {
            metric.full_name: metric.snapshot_value()
            for metric in self.metrics()
        }

    def expose_text(self) -> str:
        """Prometheus text exposition (HELP/TYPE once per metric name)."""
        lines: List[str] = []
        seen_header: set = set()
        with self._lock:
            help_texts = dict(self._help)
        for metric in self.metrics():
            if metric.name not in seen_header:
                seen_header.add(metric.name)
                help_text = help_texts.get(metric.name, "")
                if help_text:
                    lines.append(f"# HELP {metric.name} {help_text}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.expose_lines())
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"MetricRegistry({len(self)} metrics, {state})"
