"""Sample percentiles and per-phase span summaries.

This module owns the repo's canonical :func:`percentile` — the bench
layer re-exports it — and turns a tracer's finished spans into the
per-rung / per-enumerator latency tables the bench harness and the soak
driver print.

Empty samples yield ``NaN``, never ``0.0``: a run that served nothing
must not masquerade as an impossibly fast one.  JSON writers serialize
``NaN`` as ``null`` and renderers print ``n/a``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.telemetry.spans import Span

__all__ = [
    "percentile",
    "summarize_samples",
    "summarize_spans",
    "DEFAULT_GROUP_ATTRS",
]

#: Default span-name -> grouping-attribute mapping for
#: :func:`summarize_spans`: ladder rungs group by rung, enumerator runs by
#: enumerator, retry attempts by outcome.
DEFAULT_GROUP_ATTRS: Mapping[str, str] = {
    "ladder_rung": "rung",
    "enumerate": "enumerator",
    "attempt": "outcome",
}


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile by linear interpolation between ranks.

    Returns ``NaN`` for an empty sample set — the honest answer when
    nothing was measured.  ``q`` is in percent (``95.0``, not ``0.95``).
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    if not values:
        return float("nan")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def summarize_samples(values: Sequence[float]) -> Dict[str, float]:
    """count/p50/p95/p99/max for one sample set (NaN-valued when empty)."""
    return {
        "count": len(values),
        "p50": percentile(values, 50.0),
        "p95": percentile(values, 95.0),
        "p99": percentile(values, 99.0),
        "max": max(values) if values else float("nan"),
    }


def summarize_spans(
    spans: Iterable[Span],
    group_attrs: Optional[Mapping[str, str]] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Group finished spans and summarize their durations.

    ``group_attrs`` maps a span name to the attribute that partitions it
    (``ladder_rung`` spans group by their ``rung``, ``enumerate`` spans by
    ``enumerator``).  Spans with other names are grouped by name alone
    under the key ``"*"``.  Returns
    ``{span_name: {group_value: {count, p50, p95, p99, max}}}`` with
    durations in seconds; open spans (no duration yet) are skipped.
    """
    if group_attrs is None:
        group_attrs = DEFAULT_GROUP_ATTRS
    buckets: Dict[str, Dict[str, List[float]]] = {}
    for span in spans:
        duration = span.duration
        if duration is None:
            continue
        attr = group_attrs.get(span.name)
        group = str(span.attrs.get(attr, "*")) if attr else "*"
        buckets.setdefault(span.name, {}).setdefault(group, []).append(duration)
    return {
        name: {
            group: summarize_samples(samples)
            for group, samples in sorted(groups.items())
        }
        for name, groups in sorted(buckets.items())
    }
