"""Adapters that publish the legacy counter silos into a registry.

The repo grew four disjoint counter silos before telemetry existed:
:class:`~repro.stats.OptimizationStats` (the paper's Table III counters),
:class:`~repro.service.ServiceHealth` (the ``healthz`` envelope),
:class:`~repro.bench.FailureCounts` (the bench failure taxonomy), and
:class:`~repro.bench.profiling.EnumerationProfile` (per-class enumeration
passes).  Rather than rewriting those types — their dataclass shapes are
load-bearing for JSON reports and tests — each adapter here reads a silo
object *duck-typed* (``as_dict()`` or plain attributes) and publishes its
values under stable Prometheus-style names.

Duck-typing matters for imports: this module must not import
``repro.service`` or ``repro.bench`` (they import telemetry), so the
adapters never name the silo classes.

Counters are published as **gauges set to the silo's current total**
when the silo itself is cumulative (health, failure counts) and as
**counter increments** when the silo is per-run (optimization stats,
enumeration profiles) — a service serving many requests accumulates
per-run stats into ever-growing totals.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.telemetry.metrics import MetricRegistry

__all__ = [
    "publish_optimization_stats",
    "publish_service_health",
    "publish_cluster_health",
    "publish_failure_counts",
    "publish_enumeration_profile",
]


def publish_optimization_stats(
    registry: MetricRegistry, stats, labels: Optional[Mapping[str, object]] = None
) -> None:
    """Accumulate one run's :class:`OptimizationStats` into ``registry``.

    Each counter field becomes ``repro_optimizer_<field>_total``; calling
    this once per completed run turns per-run counters into service-level
    running totals.
    """
    for field_name, value in stats.as_dict().items():
        registry.counter(
            f"repro_optimizer_{field_name}_total",
            f"Total {field_name.replace('_', ' ')} across optimizer runs.",
            labels=labels,
        ).inc(value)


def publish_service_health(registry: MetricRegistry, health) -> None:
    """Mirror a :class:`ServiceHealth` snapshot into ``registry`` gauges.

    The health envelope's counters are already lifetime totals maintained
    by the service, so they are *set*, not incremented — publishing two
    snapshots back-to-back is idempotent.
    """
    registry.gauge(
        "repro_service_up",
        "1 while the service is serving (status ok or degraded), else 0.",
    ).set(1.0 if health.status in ("ok", "degraded") else 0.0)
    registry.gauge(
        "repro_service_degraded",
        "1 while the service serves with at least one open breaker.",
    ).set(1.0 if health.status == "degraded" else 0.0)
    registry.gauge(
        "repro_service_healthy",
        "1 while the service is fully staffed with no open breakers.",
    ).set(1.0 if health.healthy else 0.0)
    registry.gauge(
        "repro_service_workers_alive", "Worker threads currently alive."
    ).set(health.workers_alive)
    registry.gauge(
        "repro_service_workers_total", "Worker threads configured."
    ).set(health.workers_total)
    queue = health.queue or {}
    registry.gauge(
        "repro_service_queue_depth", "Requests waiting in the admission queue."
    ).set(queue.get("depth", 0))
    registry.gauge(
        "repro_service_queue_capacity", "Admission queue capacity."
    ).set(queue.get("capacity", 0))
    registry.gauge(
        "repro_service_queue_high_water",
        "Deepest the admission queue has been.",
    ).set(queue.get("high_water", 0))
    request_fields = (
        "accepted",
        "rejected",
        "completed",
        "failed",
        "timeouts",
        "cancelled",
        "retries",
    )
    for field_name in request_fields:
        registry.gauge(
            f"repro_service_requests_{field_name}",
            f"Lifetime {field_name} requests reported by healthz.",
        ).set(getattr(health, field_name))
    for field_name in ("breaker_trips", "unhandled_worker_errors"):
        registry.gauge(
            f"repro_service_{field_name}",
            f"Lifetime {field_name.replace('_', ' ')} reported by healthz.",
        ).set(getattr(health, field_name))
    for rung, count in sorted(health.rung_histogram.items()):
        registry.gauge(
            "repro_service_rung_requests",
            "Completed requests per degradation rung.",
            labels={"rung": rung},
        ).set(count)
    for name, snapshot in sorted(health.breakers.items()):
        registry.gauge(
            "repro_service_breaker_open",
            "1 while the named circuit breaker is open.",
            labels={"component": name},
        ).set(0.0 if snapshot.get("state") == "closed" else 1.0)
    if health.plan_cache:
        for key in ("hits", "misses", "entries", "evictions"):
            if key in health.plan_cache:
                registry.gauge(
                    f"repro_service_plan_cache_{key}",
                    f"Plan cache {key} reported by healthz.",
                ).set(health.plan_cache[key])


def publish_cluster_health(registry: MetricRegistry, health) -> None:
    """Mirror a sharded :class:`ClusterHealth` snapshot into ``registry``.

    Like :func:`publish_service_health`, every value in the envelope is a
    lifetime total maintained by the front-end, so gauges are *set* —
    publishing two snapshots back-to-back is idempotent.  (The front-end
    additionally increments ``repro_shard_*_total`` counters at event
    time; those are the rate-able series, these gauges are the state.)
    """
    registry.gauge(
        "repro_shard_cluster_up",
        "1 while at least one shard is up, else 0.",
    ).set(1.0 if health.shards_up > 0 else 0.0)
    registry.gauge(
        "repro_shard_cluster_healthy",
        "1 while every configured shard is up.",
    ).set(1.0 if health.healthy else 0.0)
    registry.gauge(
        "repro_shard_cluster_shards_up", "Shard processes currently up."
    ).set(health.shards_up)
    registry.gauge(
        "repro_shard_cluster_shards_total", "Shard processes configured."
    ).set(health.shards_total)
    for field_name in ("accepted", "rejected", "completed", "failed"):
        registry.gauge(
            f"repro_shard_cluster_requests_{field_name}",
            f"Lifetime {field_name} requests reported by cluster healthz.",
        ).set(getattr(health, field_name))
    for field_name in (
        "failovers",
        "respawns",
        "drains",
        "fallback_served",
        "wire_errors",
    ):
        registry.gauge(
            f"repro_shard_cluster_{field_name}",
            f"Lifetime {field_name.replace('_', ' ')} reported by "
            "cluster healthz.",
        ).set(getattr(health, field_name))
    for shard in health.shards:
        labels = {"shard": shard.shard_id}
        registry.gauge(
            "repro_shard_up",
            "1 while the labelled shard process is up.",
            labels=labels,
        ).set(1.0 if shard.state == "up" else 0.0)
        registry.gauge(
            "repro_shard_state_outstanding",
            "Requests currently assigned to the labelled shard.",
            labels=labels,
        ).set(shard.outstanding)
        registry.gauge(
            "repro_shard_state_respawns",
            "Lifetime respawns of the labelled shard slot.",
            labels=labels,
        ).set(shard.respawns)
        if shard.heartbeat_age_seconds is not None:
            registry.gauge(
                "repro_shard_heartbeat_age_seconds",
                "Seconds since the labelled shard's last heartbeat.",
                labels=labels,
            ).set(shard.heartbeat_age_seconds)


def publish_failure_counts(
    registry: MetricRegistry, counts, labels: Optional[Mapping[str, object]] = None
) -> None:
    """Mirror a bench :class:`FailureCounts` tally into ``registry``.

    Bench tallies are per-run aggregates computed at the end of a
    workload, so each class is *set* as a gauge
    (``repro_failures_<class>``) rather than accumulated.
    """
    for field_name, value in counts.as_dict().items():
        registry.gauge(
            f"repro_failures_{field_name}",
            f"Workload runs that ended in class {field_name!r} "
            "(recovery counters count recoveries, not losses).",
            labels=labels,
        ).set(value)


def publish_enumeration_profile(
    registry: MetricRegistry, profile, labels: Optional[Mapping[str, object]] = None
) -> None:
    """Accumulate an :class:`EnumerationProfile` into ``registry``.

    Publishes the pass/class totals plus the cascade diagnostic: how many
    classes were enumerated more than once (the APCB worst-case signal of
    §IV-D).
    """
    registry.counter(
        "repro_enumeration_passes_total",
        "Enumeration passes over some P_ccp(S).",
        labels=labels,
    ).inc(profile.total_passes)
    registry.counter(
        "repro_enumeration_classes_total",
        "Distinct plan classes whose ccps were enumerated.",
        labels=labels,
    ).inc(profile.distinct_classes)
    registry.counter(
        "repro_enumeration_ccps_total",
        "ccps produced across all enumeration passes.",
        labels=labels,
    ).inc(sum(profile.ccps.values()))
    registry.counter(
        "repro_enumeration_reenumerated_classes_total",
        "Plan classes enumerated more than once (ACB cascade signal).",
        labels=labels,
    ).inc(len(profile.re_enumerated_classes()))
