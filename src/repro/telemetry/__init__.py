"""Unified observability for the repro stack.

One layer, three concerns (see ``docs/telemetry.md``):

* **metrics** — :class:`MetricRegistry` with counters, gauges, and
  fixed-bucket histograms; Prometheus text exposition via
  :meth:`MetricRegistry.expose_text`;
* **tracing** — :class:`Tracer`/:class:`Span` trees per request
  (request → attempt → ladder rung → enumerator run → partitioner pass),
  exported as JSONL via :class:`TraceSink`;
* **bundling** — :class:`Telemetry` carries one registry plus one tracer
  through :class:`~repro.context.OptimizationContext` so every layer
  reaches the same instruments without globals.

The whole layer is determinism-neutral: no randomness, injectable
clocks, and no influence on any plan decision — the golden-equivalence
suite proves armed and disarmed runs produce bit-identical plans.
Adapters for the pre-existing counter silos live in
:mod:`repro.telemetry.adapters` (imported on demand, not here, to keep
this package importable from every layer without cycles).
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)
from repro.telemetry.spans import NULL_SPAN, Span, Tracer, TraceSink

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "Span",
    "Tracer",
    "TraceSink",
    "NULL_SPAN",
    "Telemetry",
]


class Telemetry:
    """One registry + one tracer, threaded together through the stack.

    ``span(name)`` returns a real span when a tracer is attached and the
    shared :data:`NULL_SPAN` otherwise, so instrumented code writes a
    single unconditional ``with telemetry.span(...)`` and pays one ``is
    None`` check when tracing is off.  ``detailed_spans`` gates the
    high-cardinality inner spans (per-partitioner-pass); production
    tracing keeps it off and records one span per enumerator run.
    """

    __slots__ = ("registry", "tracer", "detailed_spans")

    def __init__(
        self,
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
        detailed_spans: bool = False,
    ):
        self.registry = registry if registry is not None else MetricRegistry()
        self.tracer = tracer
        self.detailed_spans = detailed_spans

    def span(self, name: str, **attrs: object):
        """A context-managed span, or :data:`NULL_SPAN` when not tracing."""
        if self.tracer is None:
            return NULL_SPAN
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs: object) -> None:
        """Attach an event to the innermost open span, if any."""
        if self.tracer is None:
            return
        current = self.tracer.current()
        if current is not None:
            current.event(name, **attrs)

    def __repr__(self) -> str:
        traced = "traced" if self.tracer is not None else "untraced"
        return f"Telemetry({self.registry!r}, {traced})"
