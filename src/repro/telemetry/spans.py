"""Structured tracing: spans, the tracer, and the JSONL trace sink.

A :class:`Span` is one timed unit of work with a name, attributes, and
point-in-time events; spans nest into per-request trace trees (request →
retry attempt → ladder rung → enumerator run → partitioner pass).  The
:class:`Tracer` maintains a **thread-local** span stack so the service's
worker threads trace concurrently without sharing state, and hands each
finished root tree to an optional :class:`TraceSink` that appends it as
one JSONL line.

Determinism notes: span timing uses an injectable monotonic ``clock``
(``time.perf_counter`` by default) and nothing in this module draws
randomness or influences control flow — tracing a run must never change
the plan it produces.  Tests inject a counting clock to get stable
durations.

The clock is wall time for humans, not entropy for the optimizer; the
``bench-clock`` lint rule is about timing-dependent *decisions*, which
spans never make.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Callable, Dict, List, Optional

__all__ = ["Span", "Tracer", "TraceSink", "NULL_SPAN"]


class Span:
    """One timed unit of work inside a trace tree.

    Use as a context manager via :meth:`Tracer.span`; entering pushes the
    span onto the calling thread's stack (so nested spans become
    children), exiting pops it and records the duration.  ``set`` attaches
    attributes, ``event`` records timestamped point events (breaker trips,
    cache hits, budget exhaustion).
    """

    __slots__ = (
        "name",
        "attrs",
        "events",
        "children",
        "start",
        "end",
        "status",
        "_tracer",
    )

    def __init__(self, name: str, tracer: Optional["Tracer"] = None):
        self.name = name
        self.attrs: Dict[str, object] = {}
        self.events: List[Dict[str, object]] = []
        self.children: List["Span"] = []
        self.start: float = 0.0
        self.end: Optional[float] = None
        self.status: str = "ok"
        self._tracer = tracer

    def set(self, **attrs: object) -> "Span":
        """Attach attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs: object) -> None:
        """Record a point-in-time event on this span."""
        if self._tracer is not None:
            if len(self.events) >= self._tracer.max_events_per_span:
                return
            at = self._tracer.clock() - self.start
        else:
            at = 0.0
        record: Dict[str, object] = {"name": name, "at": at}
        if attrs:
            record.update(attrs)
        self.events.append(record)

    @property
    def duration(self) -> Optional[float]:
        """Seconds from enter to exit; ``None`` while still open."""
        if self.end is None:
            return None
        return self.end - self.start

    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", exc_type.__name__)
        if self._tracer is not None:
            self._tracer._pop(self)
        return False

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        if self.events:
            record["events"] = [dict(event) for event in self.events]
        if self.children:
            record["children"] = [child.as_dict() for child in self.children]
        return record

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        dur = self.duration
        timing = f"{dur * 1000:.3f} ms" if dur is not None else "open"
        return f"Span({self.name!r}, {timing}, {len(self.children)} children)"


class _NullSpan:
    """Inert stand-in returned when tracing is off.

    Supports the whole :class:`Span` surface as no-ops so instrumented
    code never branches on "is tracing enabled" beyond obtaining its span.
    A single shared instance (:data:`NULL_SPAN`) keeps the disabled path
    allocation-free.
    """

    __slots__ = ()

    name = "null"
    attrs: Dict[str, object] = {}
    events: List[Dict[str, object]] = []
    children: List[Span] = []
    start = 0.0
    end = 0.0
    status = "ok"
    duration = 0.0

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def event(self, name: str, **attrs: object) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def as_dict(self) -> Dict[str, object]:
        return {"name": "null"}

    def walk(self):
        return iter(())

    def __repr__(self) -> str:
        return "NULL_SPAN"


#: Shared inert span used whenever tracing is disabled.
NULL_SPAN = _NullSpan()


class TraceSink:
    """Appends finished root span trees to a file, one JSON object per line.

    Opens the file lazily on first write so constructing a sink (e.g. from
    a CLI flag default) costs nothing, and serializes writes under a lock
    because worker threads finish roots concurrently.
    """

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._file = None
        self.written = 0

    def emit(self, span: Span) -> None:
        line = json.dumps(span.as_dict(), sort_keys=True)
        with self._lock:
            if self._file is None:
                # A streaming JSONL sink cannot use the tmp-file/rename
                # helper (it would clobber earlier lines per emit); a torn
                # final line only truncates the trace being written.
                self._file = open(self.path, "a", encoding="utf-8")  # repro: disable=durable-write
            self._file.write(line + "\n")
            self._file.flush()
            self.written += 1

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        with self._lock:
            return f"TraceSink({self.path!r}, {self.written} traces)"


class Tracer:
    """Builds trace trees from nested :meth:`span` calls.

    Each thread gets its own span stack (``threading.local``), so
    concurrently served requests produce independent trees.  Finished
    roots are retained in :attr:`roots` (bounded by ``max_roots``) and,
    when a ``sink`` is configured, appended to it as JSONL.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        sink: Optional[TraceSink] = None,
        max_roots: int = 4096,
        max_events_per_span: int = 128,
    ):
        self.clock = clock
        self.sink = sink
        self.max_roots = max_roots
        self.max_events_per_span = max_events_per_span
        self._local = threading.local()
        self._roots_lock = threading.Lock()
        self.roots: List[Span] = []
        #: Roots dropped because ``max_roots`` was reached (sink still
        #: receives them; only in-memory retention is bounded).
        self.dropped_roots = 0

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **attrs: object) -> Span:
        """Create a span; ``with tracer.span("x"):`` nests it automatically."""
        span = Span(name, tracer=self)
        if attrs:
            span.attrs.update(attrs)
        return span

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        span.start = self.clock()
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        span.end = self.clock()
        stack = self._stack()
        # Remove by identity, scanning from the top: a generator holding
        # an open span may be abandoned mid-iteration, leaving its span
        # below later, properly closed ones.
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is span:
                del stack[index:]
                break
        else:
            return  # span was never pushed (or already cleaned up)
        if not stack:
            self._finish_root(span)

    def _finish_root(self, root: Span) -> None:
        with self._roots_lock:
            if len(self.roots) < self.max_roots:
                self.roots.append(root)
            else:
                self.dropped_roots += 1
        if self.sink is not None:
            self.sink.emit(root)

    def finished_spans(self) -> List[Span]:
        """Every span in every retained root, depth-first."""
        with self._roots_lock:
            roots = list(self.roots)
        spans: List[Span] = []
        for root in roots:
            spans.extend(root.walk())
        return spans

    def reset(self) -> None:
        """Drop retained roots (the sink's file is untouched)."""
        with self._roots_lock:
            self.roots = []
            self.dropped_roots = 0

    def __repr__(self) -> str:
        with self._roots_lock:
            return f"Tracer({len(self.roots)} roots, sink={self.sink!r})"
