"""Telemetry exposition CLI: ``python -m repro.telemetry.dump``.

Serves a small deterministic workload through the
:class:`~repro.service.OptimizationService` with telemetry armed, then
prints the resulting Prometheus-style exposition (or, with ``--json``,
the registry snapshot).  All four absorbed counter silos appear:

* optimizer counters (``repro_optimizer_*_total``), published per
  completed response by the service;
* service health (``repro_service_*``), published from ``healthz()``;
* the bench failure taxonomy (``repro_failures_*``), tallied over the
  served responses;
* the enumeration profile (``repro_enumeration_*``), from one profiled
  run over the same pool.

``--trace PATH`` additionally writes the per-request span trees as JSONL
— the quickest way to eyeball the request → attempt → ladder-rung →
enumerate hierarchy.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.telemetry import MetricRegistry, Telemetry, Tracer, TraceSink
from repro.telemetry.adapters import (
    publish_enumeration_profile,
    publish_failure_counts,
    publish_optimization_stats,
    publish_service_health,
)

__all__ = ["run_dump", "main"]


def run_dump(
    queries: int = 8,
    seed: int = 7,
    workers: int = 2,
    trace_path: Optional[str] = None,
    detailed: bool = False,
) -> Telemetry:
    """Serve ``queries`` requests with telemetry armed; return the bundle."""
    # Imported here, not at module top: telemetry must stay importable
    # from every layer, including the ones these modules sit on.
    from repro.bench.harness import FailureCounts
    from repro.bench.profiling import InstrumentedPartitioning
    from repro.core.apcb import ApcbPlanGenerator
    from repro.partitioning.registry import get_partitioning
    from repro.service.server import OptimizationService
    from repro.service.soak import build_query_pool

    sink = TraceSink(trace_path) if trace_path else None
    telemetry = Telemetry(
        registry=MetricRegistry(),
        tracer=Tracer(sink=sink),
        detailed_spans=detailed,
    )
    pool = build_query_pool(seed, pool_size=max(1, min(queries, 12)))
    with OptimizationService(
        workers=workers, seed=seed, telemetry=telemetry
    ) as service:
        futures = [
            service.submit(pool[index % len(pool)][1])
            for index in range(queries)
        ]
        responses = [future.result() for future in futures]
        health = service.healthz()

    publish_service_health(telemetry.registry, health)
    publish_failure_counts(
        telemetry.registry,
        FailureCounts(
            timeouts=sum(1 for r in responses if r.status == "timeout"),
            errors=sum(1 for r in responses if r.status == "failed"),
            degraded=sum(1 for r in responses if r.degraded),
            retries=sum(r.retries for r in responses),
            breaker_trips=health.breaker_trips,
        ),
    )

    # One profiled enumeration over a pool query feeds the fourth silo
    # (the per-class enumeration profile the service path doesn't collect).
    profiled = InstrumentedPartitioning(get_partitioning("mincut_conservative"))
    generator = ApcbPlanGenerator(pool[0][1], profiled)
    generator.run()
    publish_enumeration_profile(telemetry.registry, profiled.profile)
    publish_optimization_stats(telemetry.registry, generator.stats)

    if sink is not None:
        sink.close()
    return telemetry


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.dump",
        description="Serve a small workload with telemetry armed and print "
        "the Prometheus-style exposition.",
    )
    parser.add_argument("--queries", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the registry snapshot as JSON instead of exposition text",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="also write per-request span trees as JSONL",
    )
    parser.add_argument(
        "--detailed",
        action="store_true",
        help="record per-partitioner-pass spans (high volume)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    telemetry = run_dump(
        queries=args.queries,
        seed=args.seed,
        workers=args.workers,
        trace_path=args.trace,
        detailed=args.detailed,
    )
    if args.json:
        print(json.dumps(telemetry.registry.snapshot(), indent=2, sort_keys=True))
    else:
        print(telemetry.registry.expose_text(), end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
