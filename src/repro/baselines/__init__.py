"""Bottom-up baselines: DPccp (paper baseline), DPconv, DPsize, DPsub.

DPconv (arXiv 2409.08013) is the subset-convolution fast path for
``C_out``-shaped cost models; DPsize and DPsub are the classic
Moerkotte & Neumann extras.
"""

from repro.baselines.dpccp import DPccp, enumerate_csg, enumerate_csg_cmp_pairs
from repro.baselines.dpconv import DPconv
from repro.baselines.dpsize import DPsize
from repro.baselines.dpsub import DPsub

__all__ = [
    "DPccp",
    "DPconv",
    "DPsize",
    "DPsub",
    "enumerate_csg",
    "enumerate_csg_cmp_pairs",
]
