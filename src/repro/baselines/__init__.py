"""Bottom-up baselines: DPccp (paper baseline), DPsize and DPsub (extras)."""

from repro.baselines.dpccp import DPccp, enumerate_csg, enumerate_csg_cmp_pairs
from repro.baselines.dpsize import DPsize
from repro.baselines.dpsub import DPsub

__all__ = [
    "DPccp",
    "DPsize",
    "DPsub",
    "enumerate_csg",
    "enumerate_csg_cmp_pairs",
]
