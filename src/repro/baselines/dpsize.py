"""DPsize — size-driven bottom-up dynamic programming (extension).

The classic System-R-style generalization analysed in Moerkotte & Neumann
[2]: plans are built in the order of their result-set size, and for each
target size every split ``size = k + (size - k)`` is tried by pairing all
plan classes of size ``k`` with all of size ``size - k``.  Asymptotically
inferior to DPccp (it tests many pairs that are not ccps), but a useful
comparison point and a second, structurally different oracle for tests.

Not part of the paper's evaluation; see DESIGN.md ("extension" entries).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.context.context import OptimizationContext
from repro.cost.model import CostModel
from repro.errors import OptimizationError
from repro.graph import bitset
from repro.plans.join_tree import JoinTree
from repro.plans.memo import MemoTable
from repro.query import Query
from repro.stats.counters import OptimizationStats

__all__ = ["DPsize"]


class DPsize:
    """Bottom-up join ordering, enumerating plans by result size."""

    name = "dpsize"

    def __init__(
        self,
        query: Optional[Query] = None,
        cost_model: Optional[CostModel] = None,
        stats: Optional[OptimizationStats] = None,
        *,
        context: Optional[OptimizationContext] = None,
    ):
        if context is None:
            if query is None:
                raise TypeError("DPsize needs a query (or a ready context=)")
            context = OptimizationContext.for_query(
                query, cost_model=cost_model, stats=stats
            )
        elif query is not None and query is not context.query:
            raise ValueError("query and context disagree; pass one or the other")
        self._context = context
        self._query = context.query
        self._graph = context.query.graph
        self._builder = context.builder
        self._memo = MemoTable(k=context.topk)

    @property
    def memo(self) -> MemoTable:
        return self._memo

    @property
    def stats(self) -> OptimizationStats:
        return self._builder.stats

    def ranked_plans(self):
        """Retained root plans, cheapest first (valid after :meth:`run`)."""
        return self._memo.best_k(self._graph.all_vertices)

    def run(self) -> JoinTree:
        query = self._query
        graph = self._graph
        n = query.n_relations
        # classes_by_size[k] lists the connected plan classes with k members.
        classes_by_size: Dict[int, List[int]] = {1: []}
        for index in range(n):
            leaf = self._builder.leaf(query, index)
            self._memo.register(leaf)
            classes_by_size[1].append(leaf.vertex_set)
        if n == 1:
            return self._memo.best(graph.all_vertices)

        for size in range(2, n + 1):
            found: List[int] = []
            found_set = set()
            for left_size in range(1, size // 2 + 1):
                right_size = size - left_size
                for left in classes_by_size.get(left_size, ()):
                    for right in classes_by_size.get(right_size, ()):
                        if left_size == right_size and left >= right:
                            continue  # unordered pair, visit once
                        # Every candidate pair examined counts as work —
                        # this is exactly DPsize's inefficiency relative
                        # to DPccp, which never tests an invalid pair.
                        self.stats.ccps_enumerated += 1
                        if left & right:
                            continue
                        if not graph.are_connected(left, right):
                            continue  # no cross products
                        self.stats.ccps_considered += 1
                        self._builder.build_ccp(
                            self._memo,
                            self._memo.best(left),
                            self._memo.best(right),
                        )
                        union = left | right
                        if union not in found_set:
                            found_set.add(union)
                            found.append(union)
            classes_by_size[size] = found

        plan = self._memo.best(graph.all_vertices)
        if plan is None:
            raise OptimizationError("DPsize produced no plan for the full query")
        self.stats.plan_classes_built = self._memo.n_plan_classes()
        return plan
