"""DPconv — join-order DP as layered subset convolution (extension).

Stoian & Kipf's DPconv (arXiv 2409.08013, PAPERS.md) observes that for
``C_out``-style cost functions — where the cost of a join operator depends
only on the *union* of the two input sets — the join-ordering recurrence

    DP[S] = c(S) + min over { DP[T] + DP[S \\ T] : emptyset != T != S }

is a subset convolution of the DP table with itself in the (min, +)
semiring, evaluated one cardinality layer at a time::

    DP_s = c + min_{i + j = s} DP_i (*) DP_j        (layer s = |S|)

This reformulation admits super-polynomially faster instantiations than
DPccp's O(3^n) csg-cmp enumeration.  In pure Python we instantiate the
layered convolution directly — a size-indexed sweep over the vertex-set
lattice with a *flat per-size memo layout*: one dense ``dp`` cost array
indexed by bitset plus one ``split`` argmin array, no tree objects, no
dictionary lookups and no cost-model calls inside the innermost loop.  The
win over DPccp is the constant factor of the inner loop (three list
indexings, one add, one compare per split vs. per-ccp ``JoinTree``
construction, statistics lookups and memotable registration), which is
what an order-of-magnitude wall-clock target on clique-12+ needs before
resorting to anything non-pure-Python.

Plan-space equivalence: the sweep visits exactly DPccp's plan space.  A
candidate split contributes only when both halves carry finite DP values,
i.e. both induce connected subgraphs; and any 2-partition of a connected
``S`` into connected halves is crossed by at least one join edge, so every
finite candidate is a csg-cmp pair (no cross products) and every csg-cmp
pair is a finite candidate.  Costs come out bit-identical to DPccp's:
``JoinNode`` accumulates ``(left.cost + right.cost) + operator_cost`` and
the sweep accumulates ``(dp[T] + dp[S ^ T]) + c(S)`` — the same additions
in the same order, and IEEE-754 rounding is monotone, so the minima agree
exactly (guarded by a final reconstruction check).

Eligibility is the :attr:`repro.cost.model.CostModel.cout_shaped` contract
(union-shaped operator cost) plus single-best retention (``topk == 1`` —
ranked retention needs per-class candidate lists the flat layout does not
keep).  :class:`DPconv` *refuses* to run outside that envelope; the
:class:`~repro.core.optimizer.Optimizer` facade is the layer that falls
back to DPccp honestly instead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.baselines.dpccp import enumerate_csg
from repro.context.context import OptimizationContext
from repro.cost.model import CostModel
from repro.errors import OptimizationError
from repro.graph import bitset
from repro.plans.join_tree import JoinTree
from repro.plans.memo import MemoTable
from repro.query import Query
from repro.stats.counters import OptimizationStats

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a package cycle
    from repro.resilience.budget import Budget

__all__ = ["DPconv", "eligible"]

_INFINITY = float("inf")

#: Above this the flat arrays (two lists of 2^n slots) stop being a
#: sensible trade — 2^24 slots is already ~128 MiB of list storage.
_MAX_RELATIONS = 24


def eligible(context: OptimizationContext) -> bool:
    """True when DPconv can serve ``context`` with DPccp-identical costs.

    The three-part envelope: a union-shaped (``C_out``) bound cost model,
    single-best retention (``topk == 1``), and a relation count the dense
    2^n layout can hold.  The :class:`~repro.core.optimizer.Optimizer`
    facade consults this before selecting the fast path and falls back to
    DPccp honestly when it returns False.
    """
    return (
        getattr(context.cost_model, "cout_shaped", False)
        and context.topk == 1
        and context.query.n_relations <= _MAX_RELATIONS
    )


class DPconv:
    """Bottom-up optimal bushy join ordering via layered subset convolution.

    Same plan space and bit-identical optimal costs as :class:`DPccp`, for
    union-shaped (``C_out``) cost models at ``k = 1`` only.  Constructed
    like every other baseline: either from a ``query`` (plus optional cost
    model / stats / budget) or from a ready ``context=``.
    """

    name = "dpconv"

    def __init__(
        self,
        query: Optional[Query] = None,
        cost_model: Optional[CostModel] = None,
        stats: Optional[OptimizationStats] = None,
        budget: Optional["Budget"] = None,
        *,
        context: Optional[OptimizationContext] = None,
    ):
        if context is None:
            if query is None:
                raise TypeError("DPconv needs a query (or a ready context=)")
            context = OptimizationContext.for_query(
                query, cost_model=cost_model, stats=stats, budget=budget
            )
        elif query is not None and query is not context.query:
            raise ValueError("query and context disagree; pass one or the other")
        self._context = context
        self._query = context.query
        self._graph = context.query.graph
        self._provider = context.provider
        self._builder = context.builder
        self._memo = MemoTable(k=context.topk)
        self._budget = budget if budget is not None else context.budget
        self._require_eligible(context)

    @staticmethod
    def _require_eligible(context: OptimizationContext) -> None:
        """Refuse configurations the convolution cannot serve correctly.

        The facade checks :func:`eligible` *before* constructing a DPconv
        and falls back to DPccp; reaching these raises means a caller
        bypassed that check.
        """
        if not getattr(context.cost_model, "cout_shaped", False):
            raise OptimizationError(
                "DPconv requires a C_out-shaped cost model (operator cost a "
                f"function of the union set); {context.cost_model.name!r} "
                "does not declare cout_shaped — use DPccp instead"
            )
        if context.topk != 1:
            raise OptimizationError(
                "DPconv's flat per-size memo retains a single best plan per "
                f"class; ranked retention (topk={context.topk}) needs DPccp"
            )
        if context.query.n_relations > _MAX_RELATIONS:
            raise OptimizationError(
                f"DPconv's dense 2^n layout is capped at {_MAX_RELATIONS} "
                f"relations; got {context.query.n_relations}"
            )

    # ------------------------------------------------------------------

    @property
    def memo(self) -> MemoTable:
        """Classes of the winning plan only — the dp array is the memo."""
        return self._memo

    @property
    def stats(self) -> OptimizationStats:
        return self._builder.stats

    def ranked_plans(self) -> List[JoinTree]:
        """Retained root plans (``[best]``; DPconv runs at ``k=1`` only)."""
        return self._memo.best_k(self._graph.all_vertices)

    # ------------------------------------------------------------------

    def run(self) -> JoinTree:
        """Build and return the optimal join tree for the whole query."""
        query = self._query
        graph = self._graph
        for index in range(query.n_relations):
            self._memo.register(self._builder.leaf(query, index))
        if query.n_relations == 1:
            return self._memo.best(graph.all_vertices)

        dp, split = self._sweep()
        root = graph.all_vertices
        if dp[root] == _INFINITY:
            raise OptimizationError(
                "DPconv produced no plan for the full query (disconnected "
                "query graph?)"
            )
        plan = self._reconstruct(root, split)
        if plan.cost != dp[root]:  # repro: disable=no-float-cost-eq
            # Bit-exactness is the contract: a model that declared
            # cout_shaped but priced joins differently would silently
            # return a mislabeled cost without this check.
            raise OptimizationError(
                f"DPconv reconstruction cost {plan.cost!r} diverges from the "
                f"convolution value {dp[root]!r}; the cost model's "
                "cout_shaped declaration is wrong"
            )
        return plan

    def _sweep(self):
        """The layered (min, +) sweep: fill the flat dp/split arrays.

        Layer ``s`` reads only layers ``1 .. s-1`` — the size-indexed
        evaluation order of the subset convolution — and every connected
        set of size ``s`` takes the pointwise minimum over its splits.
        """
        graph = self._graph
        n = graph.n_vertices
        stats = self.stats
        budget = self._budget
        cardinality = self._provider.cardinality
        bit_count = bitset.bit_count

        layers: List[List[int]] = [[] for _ in range(n + 1)]
        for subset in enumerate_csg(graph):
            layers[bit_count(subset)].append(subset)

        size = graph.all_vertices + 1
        dp = [_INFINITY] * size
        split = [0] * size
        for index in range(n):
            dp[bitset.singleton(index)] = 0.0

        infinity = _INFINITY
        classes_done = n
        for layer_size in range(2, n + 1):
            splits_per_class = (1 << (layer_size - 1)) - 1  # repro: disable=bitset-discipline
            for vertex_set in layers[layer_size]:
                if budget is not None:
                    budget.check(classes_done)
                best = infinity
                arg = 0
                rest = vertex_set & (vertex_set - 1)  # drop the anchor bit
                sub = rest
                # The innermost loop of the fast path: every proper split
                # with the anchor on the complement side, three list
                # indexings + one add + one compare each.  Disconnected
                # halves carry infinite dp and can never win.
                while sub:
                    cand = dp[vertex_set ^ sub] + dp[sub]
                    if cand < best:
                        best = cand
                        arg = sub
                    sub = (sub - 1) & rest
                dp[vertex_set] = best + cardinality(vertex_set)
                split[vertex_set] = arg
                classes_done += 1
                stats.ccps_enumerated += splits_per_class
                stats.ccps_considered += splits_per_class
        stats.plan_classes_built = classes_done - n
        return dp, split

    def _reconstruct(self, root: int, split: List[int]) -> JoinTree:
        """Materialize the winning tree through the shared plan builder.

        Only the ~2n-1 classes on the winning tree become ``JoinTree``
        objects (and memotable entries); cardinalities and operator costs
        are priced by the context's provider and bound model, so the
        returned plan is indistinguishable from one DPccp built.
        """
        memo = self._memo
        builder = self._builder
        stack = [root]
        ordered: List[int] = []
        while stack:
            vertex_set = stack.pop()
            if not vertex_set & (vertex_set - 1):
                continue  # singleton: leaf already registered
            ordered.append(vertex_set)
            sub = split[vertex_set]
            stack.append(vertex_set ^ sub)
            stack.append(sub)
        for vertex_set in reversed(ordered):  # children before parents
            sub = split[vertex_set]
            left = memo.best(vertex_set ^ sub)
            right = memo.best(sub)
            if left is None or right is None:  # pragma: no cover - invariant
                raise OptimizationError(
                    "DPconv reconstruction visited a class before its "
                    "components — split-table bug"
                )
            memo.register(builder.create_tree(left, right))
        return memo.best(root)
