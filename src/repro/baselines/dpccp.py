"""DPccp — bottom-up join enumeration via dynamic programming ([2]).

Moerkotte & Neumann's algorithm enumerates every csg-cmp pair of the query
graph exactly once using the EnumerateCsg / EnumerateCsgRec / EnumerateCmp
recursion and builds optimal plans bottom-up.  In this library it plays the
same role as in the paper: the state-of-the-art baseline whose runtime is
the denominator of every *normed time*, and the oracle that supplies
optimal per-class costs for APCBI_Opt.

Implementation note: the published emission order is compatible with
dynamic programming; we nevertheless bucket pairs by the size of their
union before the DP sweep, which makes the correctness argument local at
the price of materializing the pair list (fine at the sizes pure Python can
enumerate; the overhead is charged to DPccp's measured runtime).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.context.context import OptimizationContext
from repro.cost.model import CostModel
from repro.errors import OptimizationError
from repro.graph import bitset
from repro.graph.query_graph import QueryGraph
from repro.plans.builder import PlanBuilder
from repro.plans.join_tree import JoinTree
from repro.plans.memo import MemoTable
from repro.query import Query
from repro.stats.counters import OptimizationStats

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a package cycle
    from repro.resilience.budget import Budget

__all__ = ["DPccp", "enumerate_csg_cmp_pairs", "enumerate_csg"]


def _neighborhood(graph: QueryGraph, subset: int, exclude: int) -> int:
    """``N(subset) \\ exclude`` within the full graph."""
    return graph.neighborhood(subset) & ~exclude


def _enumerate_csg_rec(
    graph: QueryGraph, subset: int, exclude: int
) -> Iterator[int]:
    """EnumerateCsgRec: emit ``subset`` enlarged by neighborhood subsets."""
    neighbors = _neighborhood(graph, subset, exclude)
    if not neighbors:
        return
    for extension in bitset.iter_subsets(neighbors):
        yield subset | extension
    blocked = exclude | neighbors
    for extension in bitset.iter_subsets(neighbors):
        yield from _enumerate_csg_rec(graph, subset | extension, blocked)


def enumerate_csg(graph: QueryGraph) -> Iterator[int]:
    """EnumerateCsg: every connected subset, each exactly once."""
    n = graph.n_vertices
    for index in range(n - 1, -1, -1):
        start = bitset.singleton(index)
        yield start
        forbidden = bitset.full_set(index + 1)  # B_i: all vertices <= index
        yield from _enumerate_csg_rec(graph, start, forbidden)


def _enumerate_cmp(graph: QueryGraph, subset: int) -> Iterator[int]:
    """EnumerateCmp: connected complements pairing with ``subset``."""
    min_index = bitset.lowest_index(subset)
    forbidden = subset | bitset.full_set(min_index + 1)  # B_min(S1) u S1
    neighbors = _neighborhood(graph, subset, forbidden)
    remaining = neighbors
    # Hot per-csg loop: highest-bit extraction stays inlined.
    while remaining:
        high = 1 << (remaining.bit_length() - 1)  # repro: disable=bitset-discipline
        remaining ^= high
        yield high
        below = (high - 1) & neighbors  # B_i n N
        yield from _enumerate_csg_rec(graph, high, forbidden | below)


def enumerate_csg_cmp_pairs(graph: QueryGraph) -> Iterator[Tuple[int, int]]:
    """Every csg-cmp pair of the graph, each symmetric pair once."""
    for left in enumerate_csg(graph):
        for right in _enumerate_cmp(graph, left):
            yield (left, right)


class DPccp:
    """Bottom-up optimal bushy join ordering without cross products."""

    name = "dpccp"

    def __init__(
        self,
        query: Optional[Query] = None,
        cost_model: Optional[CostModel] = None,
        stats: Optional[OptimizationStats] = None,
        budget: Optional["Budget"] = None,
        *,
        context: Optional[OptimizationContext] = None,
    ):
        if context is None:
            if query is None:
                raise TypeError("DPccp needs a query (or a ready context=)")
            context = OptimizationContext.for_query(
                query, cost_model=cost_model, stats=stats, budget=budget
            )
        elif query is not None and query is not context.query:
            raise ValueError("query and context disagree; pass one or the other")
        self._context = context
        self._query = context.query
        self._graph = context.query.graph
        self._provider = context.provider
        self._builder = context.builder
        self._memo = MemoTable(k=context.topk)
        self._budget = budget if budget is not None else context.budget

    @property
    def memo(self) -> MemoTable:
        return self._memo

    @property
    def stats(self) -> OptimizationStats:
        return self._builder.stats

    def ranked_plans(self) -> List[JoinTree]:
        """Retained root plans, cheapest first (valid after :meth:`run`)."""
        return self._memo.best_k(self._graph.all_vertices)

    def run(self) -> JoinTree:
        """Build and return the optimal join tree for the whole query."""
        query = self._query
        for index in range(query.n_relations):
            self._memo.register(self._builder.leaf(query, index))
        if query.n_relations == 1:
            return self._memo.best(self._graph.all_vertices)

        # Bucket ccps by result size so every sub-plan exists when needed.
        budget = self._budget
        buckets: Dict[int, List[Tuple[int, int]]] = {}
        for left, right in enumerate_csg_cmp_pairs(self._graph):
            if budget is not None:
                budget.check(len(self._memo))
            self.stats.ccps_enumerated += 1
            buckets.setdefault(bitset.bit_count(left | right), []).append(
                (left, right)
            )
        for size in sorted(buckets):
            for left, right in buckets[size]:
                if budget is not None:
                    budget.check(len(self._memo))
                self.stats.ccps_considered += 1
                left_tree = self._memo.best(left)
                right_tree = self._memo.best(right)
                if left_tree is None or right_tree is None:
                    raise OptimizationError(
                        "DPccp visited a ccp before its components were "
                        "planned — enumeration bug"
                    )
                self._builder.build_ccp(self._memo, left_tree, right_tree)

        plan = self._memo.best(self._graph.all_vertices)
        if plan is None:
            raise OptimizationError("DPccp produced no plan for the full query")
        self.stats.plan_classes_built = self._memo.n_plan_classes()
        return plan

    def optimal_class_costs(self) -> Dict[int, float]:
        """Optimal cost per plan class (the APCBI_Opt oracle ``uB`` table).

        Only valid after :meth:`run`.  Singleton classes are included with
        cost 0; harmless, since leaves are returned before ``uB`` lookups.
        """
        return {
            vertex_set: tree.cost for vertex_set, tree in self._memo.entries()
        }
