"""DPsub — subset-driven bottom-up dynamic programming (extension).

The second classic DP variant from Moerkotte & Neumann [2]: iterate over
all vertex subsets in increasing numeric order (which implies subsets come
before supersets) and, for each connected subset, try every subset split
using the Vance & Maier descending-subset trick.  Exponential in the
number of vertices regardless of graph shape, but simple and a good third
oracle: its inner loop structure shares nothing with DPccp or DPsize.

Not part of the paper's evaluation; see DESIGN.md ("extension" entries).
"""

from __future__ import annotations

from typing import Optional

from repro.cost.cout import CoutCostModel
from repro.cost.haas import HaasCostModel
from repro.cost.model import CostModel
from repro.cost.statistics import StatisticsProvider
from repro.errors import OptimizationError
from repro.graph import bitset
from repro.plans.builder import PlanBuilder
from repro.plans.join_tree import JoinTree
from repro.plans.memo import MemoTable
from repro.query import Query
from repro.stats.counters import OptimizationStats

__all__ = ["DPsub"]


class DPsub:
    """Bottom-up join ordering, enumerating all subset splits."""

    name = "dpsub"

    def __init__(
        self,
        query: Query,
        cost_model: Optional[CostModel] = None,
        stats: Optional[OptimizationStats] = None,
    ):
        self._query = query
        self._graph = query.graph
        self._provider = StatisticsProvider(query)
        model = cost_model if cost_model is not None else HaasCostModel()
        if isinstance(model, CoutCostModel):
            model.bind(self._provider)
        self._builder = PlanBuilder(self._provider, model, stats)
        self._memo = MemoTable()

    @property
    def memo(self) -> MemoTable:
        return self._memo

    @property
    def stats(self) -> OptimizationStats:
        return self._builder.stats

    def run(self) -> JoinTree:
        query = self._query
        graph = self._graph
        for index in range(query.n_relations):
            self._memo.register(self._builder.leaf(query, index))
        if query.n_relations == 1:
            return self._memo.best(graph.all_vertices)

        for subset in range(1, graph.all_vertices + 1):
            if not subset & (subset - 1):
                continue  # singleton
            if not graph.is_connected(subset):
                continue
            # Enumerate proper subsets; anchor the lowest vertex in the
            # left side so each unordered split is visited exactly once.
            anchor = bitset.lowest_bit(subset)
            for other in bitset.iter_subsets(subset & ~anchor):
                anchor_side = subset & ~other
                # Every split examined counts as work — DPsub tests all
                # 2^(|S|-1) - 1 splits of every connected subset, which is
                # its inefficiency relative to DPccp.
                self.stats.ccps_enumerated += 1
                if not graph.is_connected(anchor_side):
                    continue
                if not graph.is_connected(other):
                    continue
                if not graph.are_connected(anchor_side, other):
                    continue
                self.stats.ccps_considered += 1
                self._builder.build_tree(
                    self._memo,
                    self._memo.best(anchor_side),
                    self._memo.best(other),
                )

        plan = self._memo.best(graph.all_vertices)
        if plan is None:
            raise OptimizationError("DPsub produced no plan for the full query")
        self.stats.plan_classes_built = self._memo.n_plan_classes()
        return plan
