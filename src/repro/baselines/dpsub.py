"""DPsub — subset-driven bottom-up dynamic programming (extension).

The second classic DP variant from Moerkotte & Neumann [2]: iterate over
all vertex subsets in increasing numeric order (which implies subsets come
before supersets) and, for each connected subset, try every subset split
using the Vance & Maier descending-subset trick.  Exponential in the
number of vertices regardless of graph shape, but simple and a good third
oracle: its inner loop structure shares nothing with DPccp or DPsize.

Not part of the paper's evaluation; see DESIGN.md ("extension" entries).
"""

from __future__ import annotations

from typing import Optional

from repro.context.context import OptimizationContext
from repro.cost.model import CostModel
from repro.errors import OptimizationError
from repro.graph import bitset
from repro.plans.join_tree import JoinTree
from repro.plans.memo import MemoTable
from repro.query import Query
from repro.stats.counters import OptimizationStats

__all__ = ["DPsub"]


class DPsub:
    """Bottom-up join ordering, enumerating all subset splits."""

    name = "dpsub"

    def __init__(
        self,
        query: Optional[Query] = None,
        cost_model: Optional[CostModel] = None,
        stats: Optional[OptimizationStats] = None,
        *,
        context: Optional[OptimizationContext] = None,
    ):
        if context is None:
            if query is None:
                raise TypeError("DPsub needs a query (or a ready context=)")
            context = OptimizationContext.for_query(
                query, cost_model=cost_model, stats=stats
            )
        elif query is not None and query is not context.query:
            raise ValueError("query and context disagree; pass one or the other")
        self._context = context
        self._query = context.query
        self._graph = context.query.graph
        self._builder = context.builder
        self._memo = MemoTable(k=context.topk)

    @property
    def memo(self) -> MemoTable:
        return self._memo

    @property
    def stats(self) -> OptimizationStats:
        return self._builder.stats

    def ranked_plans(self):
        """Retained root plans, cheapest first (valid after :meth:`run`)."""
        return self._memo.best_k(self._graph.all_vertices)

    def run(self) -> JoinTree:
        query = self._query
        graph = self._graph
        for index in range(query.n_relations):
            self._memo.register(self._builder.leaf(query, index))
        if query.n_relations == 1:
            return self._memo.best(graph.all_vertices)

        for subset in range(1, graph.all_vertices + 1):
            if not subset & (subset - 1):
                continue  # singleton
            if not graph.is_connected(subset):
                continue
            # Enumerate proper subsets; anchor the lowest vertex in the
            # left side so each unordered split is visited exactly once.
            anchor = bitset.lowest_bit(subset)
            for other in bitset.iter_subsets(subset & ~anchor):
                anchor_side = subset & ~other
                # Every split examined counts as work — DPsub tests all
                # 2^(|S|-1) - 1 splits of every connected subset, which is
                # its inefficiency relative to DPccp.
                self.stats.ccps_enumerated += 1
                if not graph.is_connected(anchor_side):
                    continue
                if not graph.is_connected(other):
                    continue
                if not graph.are_connected(anchor_side, other):
                    continue
                self.stats.ccps_considered += 1
                self._builder.build_ccp(
                    self._memo,
                    self._memo.best(anchor_side),
                    self._memo.best(other),
                )

        plan = self._memo.best(graph.all_vertices)
        if plan is None:
            raise OptimizationError("DPsub produced no plan for the full query")
        self.stats.plan_classes_built = self._memo.n_plan_classes()
        return plan
