"""Statistics substrate: per-relation stats and the per-query catalog."""

from repro.catalog.catalog import Catalog
from repro.catalog.relation import (
    DEFAULT_PAGE_SIZE,
    DEFAULT_TUPLE_WIDTH,
    RelationStats,
)

__all__ = [
    "Catalog",
    "RelationStats",
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_TUPLE_WIDTH",
]
