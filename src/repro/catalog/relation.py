"""Per-relation statistics.

The cost model of Haas et al. works on pages, so besides the tuple
cardinality we track a tuple width in bytes and derive the page count from a
page size.  Domain sizes are kept because the Steinbrunn-style selectivity
generator (§V-B) derives join selectivities from attribute domain sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import CatalogError

__all__ = ["RelationStats", "DEFAULT_PAGE_SIZE", "DEFAULT_TUPLE_WIDTH"]

#: Bytes per disk page assumed by the I/O cost model.
DEFAULT_PAGE_SIZE = 8192

#: Bytes per tuple when the workload generator does not vary widths.
DEFAULT_TUPLE_WIDTH = 100


@dataclass(frozen=True)
class RelationStats:
    """Statistics for one base relation.

    Parameters
    ----------
    cardinality:
        Number of tuples, must be >= 1.
    tuple_width:
        Width of one tuple in bytes.
    domain_sizes:
        Sizes of the join-attribute domains of this relation.  The
        Steinbrunn selectivity scheme draws one attribute per join edge.
    name:
        Optional human-readable name, used in plan explanations.
    """

    cardinality: float
    tuple_width: int = DEFAULT_TUPLE_WIDTH
    domain_sizes: Tuple[int, ...] = field(default_factory=tuple)
    name: str = ""

    def __post_init__(self) -> None:
        if self.cardinality < 1:
            raise CatalogError(
                f"relation cardinality must be >= 1, got {self.cardinality}"
            )
        if self.tuple_width < 1:
            raise CatalogError(
                f"tuple width must be >= 1 byte, got {self.tuple_width}"
            )
        for size in self.domain_sizes:
            if size < 1:
                raise CatalogError(f"domain size must be >= 1, got {size}")

    def pages(self, page_size: int = DEFAULT_PAGE_SIZE) -> float:
        """Number of pages the relation occupies (at least one)."""
        tuples_per_page = max(1, page_size // self.tuple_width)
        return max(1.0, math.ceil(self.cardinality / tuples_per_page))
