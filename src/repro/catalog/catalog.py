"""The statistics catalog: cardinalities per relation, selectivities per edge.

A :class:`Catalog` is immutable once built and is consulted by the
cardinality estimator and the cost model.  Selectivities are attached to
normalized join edges ``(u, v)`` with ``u < v``; the independence assumption
(selectivities multiply) is applied by the estimator, not here.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

from repro.catalog.relation import RelationStats
from repro.errors import CatalogError
from repro.graph.query_graph import QueryGraph

__all__ = ["Catalog"]


def _normalize(edge: Tuple[int, int]) -> Tuple[int, int]:
    u, v = edge
    return (u, v) if u < v else (v, u)


class Catalog:
    """Statistics for every relation and join edge of one query graph."""

    __slots__ = ("_relations", "_selectivities")

    def __init__(
        self,
        relations: Iterable[RelationStats],
        selectivities: Mapping[Tuple[int, int], float],
    ):
        self._relations = tuple(relations)
        normalized: Dict[Tuple[int, int], float] = {}
        for edge, selectivity in selectivities.items():
            if not 0.0 < selectivity <= 1.0:
                raise CatalogError(
                    f"selectivity of edge {edge} must be in (0, 1], "
                    f"got {selectivity}"
                )
            normalized[_normalize(edge)] = selectivity
        self._selectivities = normalized

    # ------------------------------------------------------------------

    @property
    def n_relations(self) -> int:
        return len(self._relations)

    def relation(self, index: int) -> RelationStats:
        """Statistics of base relation ``index``."""
        try:
            return self._relations[index]
        except IndexError:
            raise CatalogError(f"no relation with index {index}") from None

    def cardinality(self, index: int) -> float:
        return self._relations[index].cardinality

    def selectivity(self, u: int, v: int) -> float:
        """Selectivity of the join predicate on edge ``(u, v)``."""
        try:
            return self._selectivities[_normalize((u, v))]
        except KeyError:
            raise CatalogError(f"no selectivity recorded for edge ({u}, {v})") from None

    def has_selectivity(self, u: int, v: int) -> bool:
        return _normalize((u, v)) in self._selectivities

    @property
    def selectivities(self) -> Dict[Tuple[int, int], float]:
        """A copy of the edge -> selectivity mapping."""
        return dict(self._selectivities)

    # ------------------------------------------------------------------

    def validate_against(self, graph: QueryGraph) -> None:
        """Check that the catalog covers exactly this graph's shape."""
        if self.n_relations != graph.n_vertices:
            raise CatalogError(
                f"catalog has {self.n_relations} relations but the graph "
                f"has {graph.n_vertices} vertices"
            )
        missing = [e for e in graph.edges if e not in self._selectivities]
        if missing:
            raise CatalogError(f"catalog lacks selectivities for edges {missing}")

    def relabel(self, mapping) -> "Catalog":
        """Return a catalog matching :meth:`QueryGraph.relabel` of the graph.

        ``mapping[i]`` is the new index of old vertex ``i``.
        """
        n = self.n_relations
        relations = [None] * n
        for old_index, stats in enumerate(self._relations):
            relations[mapping[old_index]] = stats
        selectivities = {
            _normalize((mapping[u], mapping[v])): s
            for (u, v), s in self._selectivities.items()
        }
        return Catalog(relations, selectivities)

    def __repr__(self) -> str:
        return (
            f"Catalog(n_relations={self.n_relations}, "
            f"n_selectivities={len(self._selectivities)})"
        )
