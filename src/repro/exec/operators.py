"""Tuple-at-a-time join operators over materialized tables.

Rows flowing between operators are dictionaries mapping a relation index
to that relation's original row tuple — simple, order-independent, and
directly comparable across different join trees for the same query.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.exec.data import Database
from repro.graph import bitset

__all__ = ["CompositeRow", "scan", "join_predicates", "hash_join", "nested_loop_join"]

#: A row of an intermediate result: relation index -> base-table row.
CompositeRow = Dict[int, Tuple[int, ...]]


def scan(database: Database, relation: int) -> Iterator[CompositeRow]:
    """Produce one composite row per base-table row."""
    for row in database.table(relation).rows:
        yield {relation: row}


def _join_keys(
    database: Database,
    row: CompositeRow,
    predicates: List[Tuple[Tuple[int, int], int, int]],
    side: int,
) -> Tuple[int, ...]:
    """Extract the join-key vector of one side for the given predicates.

    ``predicates`` holds ``(edge, left_relation, right_relation)`` triples;
    ``side`` selects which relation of each predicate this row covers.
    """
    keys = []
    for edge, left_relation, right_relation in predicates:
        relation = left_relation if side == 0 else right_relation
        column = database.table(relation).column_of(edge)
        keys.append(row[relation][column])
    return tuple(keys)


def join_predicates(
    database: Database, left_set: int, right_set: int
) -> List[Tuple[Tuple[int, int], int, int]]:
    """All query-graph edges crossing the two input sets."""
    predicates = []
    for u, v in database.query.graph.edges_between(left_set, right_set):
        edge = (min(u, v), max(u, v))
        if bitset.contains(left_set, u):
            predicates.append((edge, u, v))
        else:
            predicates.append((edge, v, u))
    return predicates


def hash_join(
    database: Database,
    left_rows: Iterable[CompositeRow],
    right_rows: Iterable[CompositeRow],
    left_set: int,
    right_set: int,
) -> Iterator[CompositeRow]:
    """In-memory hash join on all crossing equality predicates.

    Builds on the left input; a query without a crossing edge would be a
    cross product, which the enumerators never generate — guarded anyway.
    """
    predicates = join_predicates(database, left_set, right_set)
    if not predicates:
        raise ValueError("refusing to execute a cross product")
    buckets: Dict[Tuple[int, ...], List[CompositeRow]] = defaultdict(list)
    for row in left_rows:
        buckets[_join_keys(database, row, predicates, 0)].append(row)
    for right_row in right_rows:
        key = _join_keys(database, right_row, predicates, 1)
        for left_row in buckets.get(key, ()):
            merged = dict(left_row)
            merged.update(right_row)
            yield merged


def nested_loop_join(
    database: Database,
    left_rows: Iterable[CompositeRow],
    right_rows: Iterable[CompositeRow],
    left_set: int,
    right_set: int,
) -> Iterator[CompositeRow]:
    """Naive nested-loop join; the executor's cross-check operator."""
    predicates = join_predicates(database, left_set, right_set)
    if not predicates:
        raise ValueError("refusing to execute a cross product")
    materialized_right = list(right_rows)
    for left_row in left_rows:
        left_key = _join_keys(database, left_row, predicates, 0)
        for right_row in materialized_right:
            if left_key == _join_keys(database, right_row, predicates, 1):
                merged = dict(left_row)
                merged.update(right_row)
                yield merged
