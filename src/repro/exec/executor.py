"""Plan execution and estimate validation.

:func:`execute_plan` runs a join tree produced by any of the optimizers
against a synthesized :class:`~repro.exec.data.Database` and records the
*actual* cardinality of every intermediate result.  Because all plans for
one query compute the same relational result, executing two different
optimal-or-not trees must yield identical row multisets — the strongest
end-to-end correctness check the library has.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from repro.context.context import statistics_for
from repro.exec.data import Database
from repro.exec.operators import CompositeRow, hash_join, nested_loop_join, scan
from repro.plans.join_tree import JoinNode, JoinTree, LeafNode
from repro.plans.validation import check_finite

__all__ = ["ExecutionResult", "execute_plan", "result_signature", "validate_estimates"]


@dataclass
class ExecutionResult:
    """Rows plus per-plan-class actual cardinalities."""

    rows: List[CompositeRow]
    actual_cardinalities: Dict[int, int] = field(default_factory=dict)

    @property
    def n_rows(self) -> int:
        return len(self.rows)


def execute_plan(
    plan: JoinTree, database: Database, use_nested_loops: bool = False
) -> ExecutionResult:
    """Execute ``plan`` bottom-up; see the module docstring.

    Plans are vetted with :func:`repro.plans.validation.check_finite`
    before any operator runs: a tree carrying ``NaN``/``Inf`` cardinalities
    or negative costs (a poisoned cost model, fault injection) raises a
    typed :class:`~repro.plans.validation.PlanValidationError` instead of
    silently producing garbage row counts.
    """
    check_finite(plan)
    result = ExecutionResult(rows=[])
    result.rows = _execute(plan, database, result, use_nested_loops)
    return result


def _execute(
    node: JoinTree,
    database: Database,
    result: ExecutionResult,
    use_nested_loops: bool,
) -> List[CompositeRow]:
    if isinstance(node, LeafNode):
        rows = list(scan(database, node.relation))
    else:
        assert isinstance(node, JoinNode)
        left_rows = _execute(node.left, database, result, use_nested_loops)
        right_rows = _execute(node.right, database, result, use_nested_loops)
        join = nested_loop_join if use_nested_loops else hash_join
        rows = list(
            join(
                database,
                left_rows,
                right_rows,
                node.left.vertex_set,
                node.right.vertex_set,
            )
        )
    result.actual_cardinalities[node.vertex_set] = len(rows)
    return rows


def result_signature(rows: List[CompositeRow]) -> FrozenSet[Tuple[int, ...]]:
    """Order-independent fingerprint of a result multiset.

    Rows are flattened to ``(relation, *values)`` segments sorted by
    relation; duplicate rows are disambiguated with a counter so the
    signature distinguishes multisets, not just sets.
    """
    flattened = []
    for row in rows:
        flattened.append(
            tuple(
                (relation,) + values
                for relation, values in sorted(row.items())
            )
        )
    flattened.sort()
    signature = set()
    previous = None
    count = 0
    for entry in flattened:
        count = count + 1 if entry == previous else 0
        previous = entry
        signature.add((entry, count))
    return frozenset(signature)


def validate_estimates(
    plan: JoinTree, database: Database, tolerance: float = 0.6
) -> Dict[int, Tuple[float, int]]:
    """Execute the plan and compare estimates with actual cardinalities.

    Returns ``{vertex_set: (estimated, actual)}`` for every plan class of
    the tree.  Foreign-key joins reproduce their estimates exactly by
    construction; random joins are unbiased but noisy, and the relative
    noise *compounds multiplicatively* along the join edges of a class —
    so a class with ``k`` internal edges is allowed a deviation ratio of
    ``(1 + tolerance) ** k``.  Classes whose expectation is below 50 rows
    are skipped entirely (a Poisson-ish count of 3 against an estimate of
    2 is sampling noise, not an estimation error).
    """
    graph = database.scaled_query.graph
    provider = statistics_for(database.scaled_query)
    execution = execute_plan(plan, database)
    report: Dict[int, Tuple[float, int]] = {}

    # A class is statistically checkable only if every intermediate the
    # plan builds below it also has a comfortably large expectation: a
    # sub-join expecting 0.5 rows makes every ancestor's actual count
    # all-or-nothing (the exact pathology of sub-1 intermediate
    # cardinalities that §V-B criticizes in the pure random scheme).
    checkable: Dict[int, bool] = {}

    def mark(node: JoinTree) -> bool:
        if isinstance(node, LeafNode):
            checkable[node.vertex_set] = True
            return True
        assert isinstance(node, JoinNode)
        below = mark(node.left) and mark(node.right)
        ok = below and provider.cardinality(node.vertex_set) >= 50
        checkable[node.vertex_set] = ok
        return ok

    mark(plan)
    for vertex_set, actual in execution.actual_cardinalities.items():
        estimated = provider.cardinality(vertex_set)
        report[vertex_set] = (estimated, actual)
        if estimated < 50 or not checkable.get(vertex_set, False):
            continue
        n_edges = sum(1 for _ in graph.edges_within(vertex_set))
        allowed_ratio = (1.0 + tolerance) ** max(1, n_edges)
        if actual == 0:
            ratio = estimated
        else:
            ratio = max(estimated / actual, actual / estimated)
        if ratio > allowed_ratio:
            raise AssertionError(
                f"estimate {estimated:.1f} vs actual {actual} for class "
                f"{vertex_set:#x}: ratio {ratio:.2f} exceeds "
                f"{allowed_ratio:.2f} ({n_edges} edges, tol {tolerance})"
            )
    return report
