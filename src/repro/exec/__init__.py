"""Execution substrate: synthetic data, join operators, plan execution."""

from repro.exec.data import Database, Table, synthesize
from repro.exec.executor import (
    ExecutionResult,
    execute_plan,
    result_signature,
    validate_estimates,
)
from repro.exec.operators import hash_join, nested_loop_join, scan

__all__ = [
    "Database",
    "Table",
    "synthesize",
    "ExecutionResult",
    "execute_plan",
    "result_signature",
    "validate_estimates",
    "scan",
    "hash_join",
    "nested_loop_join",
]
