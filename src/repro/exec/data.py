"""Synthetic data generation matching a query's catalog statistics.

The optimizer works on *estimates*; this module materializes actual
tables whose join behaviour matches those estimates, so plans can be
executed and the cardinality model validated end-to-end:

* every relation gets one join-key column per incident query-graph edge
  (plus an implicit row id);
* a **foreign-key edge** (selectivity ``1/|key side|``) becomes a real
  PK/FK pair: the key side carries the unique values ``0..n-1``, the
  other side draws uniformly from them — the join result size is then
  *exactly* ``|fk side|``;
* any other edge with selectivity ``s`` uses a shared value domain of
  ``round(1/s)`` values sampled uniformly on both sides, giving an
  expected join size of ``|L| * |R| * s`` (exact in expectation, tested
  within statistical tolerance).

Catalog cardinalities can reach 10^6, far beyond what tuple-at-a-time
Python should materialize, so :func:`synthesize` scales all relations
down proportionally to a row budget while preserving the fk structure
(DESIGN.md substitution: the *behaviour*, not the byte count, is what the
execution tests need).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.query import Query

__all__ = ["Table", "Database", "synthesize"]

#: Column index type: tables are lists of tuples, one value per edge key.
Row = Tuple[int, ...]


@dataclass
class Table:
    """One materialized relation.

    ``columns`` maps a normalized query-graph edge to the index of the
    column holding this relation's join key for that edge.
    """

    name: str
    rows: List[Row]
    columns: Dict[Tuple[int, int], int]

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    def column_of(self, edge: Tuple[int, int]) -> int:
        u, v = edge
        return self.columns[(min(u, v), max(u, v))]


@dataclass
class Database:
    """All tables of one query plus the scaled statistics.

    ``scaled_query`` is a :class:`~repro.query.Query` whose catalog
    reflects the *materialized* tables: scaled cardinalities, fk
    selectivities recomputed as ``1/|scaled key side|`` and random-edge
    selectivities snapped to ``1/domain``.  Estimates computed against it
    are directly comparable with executed cardinalities.
    """

    tables: List[Table]
    scale: float
    query: Query
    scaled_query: Query

    def table(self, relation: int) -> Table:
        return self.tables[relation]

    def scaled_cardinality(self, relation: int) -> int:
        return self.tables[relation].n_rows


def _scaled_sizes(query: Query, row_budget: int) -> List[int]:
    """Proportionally shrink cardinalities to fit the row budget."""
    cards = [query.catalog.cardinality(i) for i in range(query.n_relations)]
    total = sum(cards)
    if total <= row_budget:
        return [max(1, round(c)) for c in cards]
    factor = row_budget / total
    return [max(1, round(c * factor)) for c in cards]


def _is_fk_edge(query: Query, u: int, v: int) -> Tuple[bool, int]:
    """Detect foreign-key edges; returns (is_fk, key_side_vertex)."""
    selectivity = query.catalog.selectivity(u, v)
    for key_side in (u, v):
        if abs(selectivity - 1.0 / query.catalog.cardinality(key_side)) < 1e-12:
            return True, key_side
    return False, -1


def synthesize(
    query: Query, row_budget: int = 4000, seed: int = 0
) -> Database:
    """Materialize tables for ``query``; see the module docstring."""
    rng = random.Random(seed)
    sizes = _scaled_sizes(query, row_budget)
    scale = sizes[0] / query.catalog.cardinality(0)

    # Assign one column per incident edge, per relation.
    columns: List[Dict[Tuple[int, int], int]] = [
        {} for _ in range(query.n_relations)
    ]
    for u, v in sorted(query.graph.edges):
        edge = (min(u, v), max(u, v))
        for endpoint in edge:
            columns[endpoint][edge] = len(columns[endpoint])

    # Generate column values edge by edge.
    values: List[List[List[int]]] = [
        [[0] * sizes[relation] for _ in columns[relation]]
        for relation in range(query.n_relations)
    ]
    for u, v in sorted(query.graph.edges):
        edge = (min(u, v), max(u, v))
        is_fk, key_side = _is_fk_edge(query, u, v)
        if is_fk:
            fk_side = v if key_side == u else u
            key_count = sizes[key_side]
            key_column = values[key_side][columns[key_side][edge]]
            for index in range(key_count):
                key_column[index] = index  # a real primary key
            fk_column = values[fk_side][columns[fk_side][edge]]
            for index in range(sizes[fk_side]):
                fk_column[index] = rng.randrange(key_count)
        else:
            selectivity = query.catalog.selectivity(u, v)
            domain = max(1, round(1.0 / selectivity))
            for endpoint in edge:
                column = values[endpoint][columns[endpoint][edge]]
                for index in range(sizes[endpoint]):
                    column[index] = rng.randrange(domain)

    tables = []
    for relation in range(query.n_relations):
        stats = query.catalog.relation(relation)
        rows = [
            tuple(values[relation][c][r] for c in range(len(columns[relation])))
            for r in range(sizes[relation])
        ]
        tables.append(
            Table(
                name=stats.name or f"R{relation}",
                rows=rows,
                columns=dict(columns[relation]),
            )
        )

    # Statistics matching the materialized data (see Database docstring).
    from repro.catalog.catalog import Catalog
    from repro.catalog.relation import RelationStats

    scaled_relations = [
        RelationStats(
            cardinality=float(sizes[relation]),
            tuple_width=query.catalog.relation(relation).tuple_width,
            domain_sizes=query.catalog.relation(relation).domain_sizes,
            name=query.catalog.relation(relation).name,
        )
        for relation in range(query.n_relations)
    ]
    scaled_selectivities = {}
    for u, v in sorted(query.graph.edges):
        is_fk, key_side = _is_fk_edge(query, u, v)
        if is_fk:
            scaled_selectivities[(u, v)] = 1.0 / sizes[key_side]
        else:
            domain = max(1, round(1.0 / query.catalog.selectivity(u, v)))
            scaled_selectivities[(u, v)] = 1.0 / domain
    scaled_query = Query(
        graph=query.graph,
        catalog=Catalog(scaled_relations, scaled_selectivities),
        family=query.family,
        seed=query.seed,
    )
    return Database(
        tables=tables, scale=scale, query=query, scaled_query=scaled_query
    )
