"""Anytime optimization with graceful degradation.

:class:`ResilientOptimizer` wraps the exact
:class:`~repro.core.optimizer.Optimizer` in a *degradation ladder*: when
exact enumeration cannot finish — budget exhausted, component fault,
structurally invalid output — the ladder steps down through progressively
cheaper strategies until one produces a **validated** plan:

1. ``exact`` — budgeted top-down enumeration (optimal when it completes);
2. ``best_so_far`` — the best complete plan the interrupted run registered
   (the memotable root entry, or APCBI's pre-enumeration heuristic tree);
3. the **heuristic ladder** — IKKBZ, then GOO, then QuickPick by default,
   each priced with a fresh cost model and validated;
4. ``structural`` — a cost-model-free greedy tree
   (:func:`~repro.resilience.fallback.structural_fallback_plan`), the last
   resort that survives even a cost model returning ``NaN`` everywhere.

Every returned plan passes finiteness *and* structural validation; every
descent is recorded in a :class:`DegradationReport`.  If no rung yields a
valid plan (e.g. the catalog itself lost a relation), a typed
:class:`~repro.errors.ResilienceError` carrying the report is raised —
never a silent garbage plan, never an unexplained foreign exception.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.context.context import OptimizationContext
from repro.core.advancements import AdvancementConfig
from repro.core.optimizer import OptimizationResult, Optimizer
from repro.cost.haas import HaasCostModel
from repro.cost.model import CostModel
from repro.errors import BudgetExceeded, ReproError, ResilienceError
from repro.heuristics.registry import get_heuristic
from repro.plans.join_tree import JoinTree
from repro.plans.validation import check_finite, validate_plan
from repro.query import Query
from repro.resilience.budget import Budget
from repro.resilience.fallback import structural_fallback_plan
from repro.stats.counters import OptimizationStats
from repro.telemetry import NULL_SPAN, Telemetry

__all__ = [
    "DEFAULT_HEURISTIC_LADDER",
    "DegradationReport",
    "ResilientOptimizer",
    "ResilientResult",
    "RungAttempt",
]

#: Heuristic rung order: strongest guarantees first (IKKBZ is optimal for
#: left-deep trees on acyclic graphs under ASI costs), randomized last.
DEFAULT_HEURISTIC_LADDER: Tuple[str, ...] = ("ikkbz", "goo", "quickpick")

#: Failures a rung may legitimately produce and the ladder absorbs:
#: library errors (including injected faults and budget exhaustion),
#: join-tree construction on bogus cuts (ValueError), arithmetic blowups
#: from poisoned statistics, and runaway recursion on corrupted partitions.
_RECOVERABLE = (ReproError, ValueError, ArithmeticError, RecursionError)


@dataclass(frozen=True)
class RungAttempt:
    """One rung's outcome during a ladder descent."""

    rung: str
    status: str  # "ok" or "failed"
    detail: str = ""

    def format(self) -> str:
        suffix = f": {self.detail}" if self.detail else ""
        return f"{self.rung} -> {self.status}{suffix}"


@dataclass
class DegradationReport:
    """Which rung produced the returned plan, and why the others did not.

    ``cost_gap`` relates the returned plan to the cheapest *heuristic*
    plan observed during the descent (``fallback_cost``): a value below 1
    means the returned plan beat the fallback, 1.0 means the fallback
    itself was returned.  It is ``None`` when no finite fallback cost was
    available (e.g. the cost model was faulty).
    """

    rung: str
    attempts: List[RungAttempt] = field(default_factory=list)
    budget: Optional[dict] = None
    budget_exceeded: Optional[str] = None
    chosen_cost: Optional[float] = None
    fallback_cost: Optional[float] = None

    @property
    def degraded(self) -> bool:
        return self.rung != "exact"

    @property
    def cost_gap(self) -> Optional[float]:
        if (
            self.chosen_cost is None
            or self.fallback_cost is None
            or not self.fallback_cost > 0
        ):
            return None
        return self.chosen_cost / self.fallback_cost

    def describe(self) -> str:
        lines = [f"returned by rung: {self.rung}"]
        if self.budget_exceeded:
            lines.append(f"budget exceeded: {self.budget_exceeded}")
        gap = self.cost_gap
        if gap is not None:
            lines.append(f"cost gap vs. fallback: {gap:.4g}")
        for attempt in self.attempts:
            lines.append(f"  {attempt.format()}")
        return "\n".join(lines)


@dataclass(frozen=True)
class ResilientResult:
    """A validated plan plus the story of how it was obtained."""

    plan: JoinTree
    cost: float
    elapsed: float
    report: DegradationReport
    stats: OptimizationStats
    query: Query
    #: The exact result envelope when the ``exact`` rung succeeded.
    exact: Optional[OptimizationResult] = None
    #: The one :class:`~repro.context.OptimizationContext` every rung of
    #: the descent ran on (shared statistics provider and budget).
    context: Optional[OptimizationContext] = None
    #: Validated ranked plans (rank 1 first) when the run retained more
    #: than the single best (``topk > 1``); empty otherwise.
    ranked_plans: Tuple[JoinTree, ...] = ()

    @property
    def ranked(self) -> Tuple[JoinTree, ...]:
        """The ranked plan stream; ``(plan,)`` for single-best runs."""
        return self.ranked_plans if self.ranked_plans else (self.plan,)

    @property
    def degraded(self) -> bool:
        return self.report.degraded

    @property
    def rung(self) -> str:
        return self.report.rung

    def explain(self) -> str:
        return self.plan.explain()


class ResilientOptimizer:
    """Budgeted, fault-tolerant facade over the exact optimizer.

    Parameters mirror :class:`~repro.core.optimizer.Optimizer`, plus:

    heuristic_ladder:
        Heuristic registry names to fall through, in order.
    structural_fallback:
        Whether the cost-model-free last rung is enabled.
    compare_fallback:
        When the exact rung succeeds, additionally price the first ladder
        heuristic so :attr:`DegradationReport.cost_gap` is populated
        (costs one extra heuristic run per query; off by default).
    budget_factory:
        Zero-argument callable producing a fresh :class:`Budget` per
        :meth:`optimize` call when the caller passes none.
    plan_cache:
        Optional cross-query :class:`~repro.context.PlanCache` handed to
        the exact optimizer (the heuristic rungs never consult it — a
        degraded plan must not poison the cache).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` bundle.  Armed, every
        rung of a descent records a ``ladder_rung`` span (attribute
        ``rung``), budget exhaustion and degradation become span events,
        and the bundle is threaded into the per-query context so the
        enumerators underneath trace too.
    """

    def __init__(
        self,
        enumerator: str = "mincut_conservative",
        pruning: str = "apcbi",
        cost_model_factory: Callable[[], CostModel] = HaasCostModel,
        config: Optional[AdvancementConfig] = None,
        heuristic: str = "goo",
        heuristic_ladder: Sequence[str] = DEFAULT_HEURISTIC_LADDER,
        structural_fallback: bool = True,
        compare_fallback: bool = False,
        budget_factory: Optional[Callable[[], Budget]] = None,
        plan_cache=None,
        telemetry: Optional[Telemetry] = None,
        topk: int = 1,
    ):
        if topk < 1:
            raise ValueError(f"topk must be >= 1, got {topk}")
        self._optimizer = Optimizer(
            enumerator=enumerator,
            pruning=pruning,
            cost_model_factory=cost_model_factory,
            config=config,
            heuristic=heuristic,
            plan_cache=plan_cache,
            telemetry=telemetry,
            topk=topk,
        )
        self._topk = topk
        self._cost_model_factory = cost_model_factory
        self._heuristic_ladder = tuple(heuristic_ladder)
        for name in self._heuristic_ladder:
            get_heuristic(name)  # fail fast on typos
        self._structural_fallback = structural_fallback
        self._compare_fallback = compare_fallback
        self._budget_factory = budget_factory
        self._telemetry = telemetry

    @property
    def optimizer(self) -> Optimizer:
        """The wrapped exact optimizer."""
        return self._optimizer

    def _span(self, name: str, **attrs: object):
        """A telemetry span, or the shared no-op when disarmed."""
        if self._telemetry is None:
            return NULL_SPAN
        return self._telemetry.span(name, **attrs)

    def _event(self, name: str, **attrs: object) -> None:
        if self._telemetry is not None:
            self._telemetry.event(name, **attrs)

    # ------------------------------------------------------------------

    def optimize(
        self,
        query: Query,
        budget: Optional[Budget] = None,
        context: Optional[OptimizationContext] = None,
    ) -> ResilientResult:
        """Return a validated plan for ``query``, degrading as needed.

        ``context`` lets a caller that already owns an
        :class:`~repro.context.OptimizationContext` for this query — the
        optimization service forking one parent context across worker
        threads, a test pinning the substrate — hand it in; by default a
        fresh context is built per call.
        """
        if budget is None and self._budget_factory is not None:
            budget = self._budget_factory()
        started = time.perf_counter()
        report = DegradationReport(rung="exact")
        if context is not None and budget is None:
            budget = context.budget
        if budget is not None:
            budget.start()

        # One context for the whole descent: every rung — exact, salvage,
        # heuristics, comparison pricing — shares this statistics provider
        # and budget, so nothing memoized during an interrupted exact run
        # is recomputed by the rung that rescues it.  If the substrate
        # itself cannot be built (e.g. the catalog lost a relation), no
        # rung could run either — report that as a full ladder failure.
        try:
            if context is None:
                context = OptimizationContext.for_query(
                    query,
                    cost_model=self._cost_model_factory,
                    budget=budget,
                    telemetry=self._telemetry,
                    topk=self._topk,
                )
        except _RECOVERABLE as error:
            report.rung = "none"
            report.attempts.append(
                RungAttempt(
                    "context", "failed", f"{type(error).__name__}: {error}"
                )
            )
            if budget is not None:
                report.budget = budget.snapshot()
            raise ResilienceError(
                "could not build the optimization context for "
                f"{query.describe()}:\n{report.describe()}",
                report=report,
            ) from error
        outcome = self._run_ladder(query, budget, report, context)
        if budget is not None:
            report.budget = budget.snapshot()
        if outcome is not None and report.degraded:
            self._event("degraded", rung=report.rung)
        if outcome is None:
            report.rung = "none"
            raise ResilienceError(
                "every rung of the degradation ladder failed for "
                f"{query.describe()}:\n{report.describe()}",
                report=report,
            )
        plan, stats, exact, ranked = outcome
        elapsed = time.perf_counter() - started
        return ResilientResult(
            plan=plan,
            cost=plan.cost,
            elapsed=elapsed,
            report=report,
            stats=stats,
            query=query,
            exact=exact,
            context=context,
            ranked_plans=ranked,
        )

    # ------------------------------------------------------------------

    def _run_ladder(
        self,
        query: Query,
        budget: Optional[Budget],
        report: DegradationReport,
        context: OptimizationContext,
    ) -> Optional[
        Tuple[
            JoinTree,
            OptimizationStats,
            Optional[OptimizationResult],
            Tuple[JoinTree, ...],
        ]
    ]:
        """Descend the ladder; fills ``report`` as it goes."""
        partial_ranked: Tuple[JoinTree, ...] = ()

        # Rung 1: exact (budgeted) enumeration.
        try:
            with self._span("ladder_rung", rung="exact"):
                result = self._optimizer.optimize(
                    query, budget=budget, context=context
                )
                self._validate(result.plan, query)
        except BudgetExceeded as error:
            report.budget_exceeded = error.reason
            report.attempts.append(RungAttempt("exact", "failed", str(error)))
            # The ranked best-so-far stream (rank 1 first); degenerates to
            # the scalar partial_plan at k=1.
            partial_ranked = tuple(error.partial_ranked)
            if not partial_ranked and error.partial_plan is not None:
                partial_ranked = (error.partial_plan,)
            self._event("budget_exhausted", reason=error.reason)
        except _RECOVERABLE as error:
            report.attempts.append(
                RungAttempt("exact", "failed", f"{type(error).__name__}: {error}")
            )
        else:
            report.rung = "exact"
            report.attempts.append(RungAttempt("exact", "ok"))
            report.chosen_cost = result.cost
            if self._compare_fallback and self._heuristic_ladder:
                fallback = self._try_heuristic(
                    self._heuristic_ladder[0], query, context.fork()
                )
                if fallback is not None:
                    report.fallback_cost = fallback.cost
            return result.plan, result.stats, result, result.ranked_plans

        # Rung 2: best-so-far plans salvaged from the interrupted run,
        # tried in rank order — a poisoned rank-1 tree (e.g. non-finite
        # numbers from a faulting cost model) no longer sinks the rung
        # when a clean rank-2 plan was also retained.
        if partial_ranked:
            salvaged: List[JoinTree] = []
            first_error: Optional[str] = None
            with self._span("ladder_rung", rung="best_so_far"):
                for rank, candidate in enumerate(partial_ranked, start=1):
                    try:
                        self._validate(candidate, query)
                    except _RECOVERABLE as error:
                        if first_error is None:
                            first_error = (
                                f"rank {rank}: {type(error).__name__}: {error}"
                            )
                    else:
                        salvaged.append(candidate)
            if salvaged:
                winner = salvaged[0]
                rank = partial_ranked.index(winner) + 1
                detail = "" if rank == 1 else f"salvaged rank {rank}"
                report.rung = "best_so_far"
                report.attempts.append(RungAttempt("best_so_far", "ok", detail))
                report.chosen_cost = winner.cost
                ranked = tuple(salvaged) if len(partial_ranked) > 1 else ()
                return winner, OptimizationStats(), None, ranked
            report.attempts.append(
                RungAttempt(
                    "best_so_far",
                    "failed",
                    first_error or "no complete plan salvaged",
                )
            )
        else:
            report.attempts.append(
                RungAttempt("best_so_far", "failed", "no complete plan salvaged")
            )

        # Rungs 3..n: the heuristic ladder.  Each rung runs on a fork of
        # the shared context: same provider (statistics memoized by the
        # failed exact rung are reused) and bound model, fresh counters.
        for name in self._heuristic_ladder:
            rung_context = context.fork()
            with self._span("ladder_rung", rung=name):
                plan = self._try_heuristic(name, query, rung_context, report)
            if plan is not None:
                report.rung = name
                report.chosen_cost = plan.cost
                if report.fallback_cost is None:
                    report.fallback_cost = plan.cost
                return plan, rung_context.stats, None, ()

        # Final rung: structure without costs.
        if self._structural_fallback:
            try:
                with self._span("ladder_rung", rung="structural"):
                    plan = structural_fallback_plan(query)
                    validate_plan(plan, query)
            except _RECOVERABLE as error:
                report.attempts.append(
                    RungAttempt(
                        "structural", "failed", f"{type(error).__name__}: {error}"
                    )
                )
            else:
                report.rung = "structural"
                report.attempts.append(RungAttempt("structural", "ok"))
                return plan, OptimizationStats(), None, ()
        return None

    def _try_heuristic(
        self,
        name: str,
        query: Query,
        context: OptimizationContext,
        report: Optional[DegradationReport] = None,
    ) -> Optional[JoinTree]:
        """Run one heuristic rung; returns a validated plan or ``None``."""
        try:
            result = get_heuristic(name).build(query, context.builder)
            self._validate(result.tree, query)
        except _RECOVERABLE as error:
            if report is not None:
                report.attempts.append(
                    RungAttempt(name, "failed", f"{type(error).__name__}: {error}")
                )
            return None
        if report is not None:
            report.attempts.append(RungAttempt(name, "ok"))
        return result.tree

    @staticmethod
    def _validate(plan: JoinTree, query: Query) -> None:
        """Reject non-finite/negative numbers, then structural violations."""
        check_finite(plan)
        validate_plan(plan, query)
