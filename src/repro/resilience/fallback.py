"""Last-resort plan construction without a cost model.

Every upper rung of the degradation ladder prices candidate trees with the
configured cost model — which is exactly the component that may be broken
(raising, or returning ``NaN``/``Inf``) when resilience matters most.  This
module builds a *structurally valid* join tree from nothing but the query
graph and the catalog's cardinality estimates: a greedy
minimum-intermediate-cardinality pairing (GOO's selection rule) that never
invokes the cost model, assembling :class:`~repro.plans.join_tree.JoinNode`
objects directly with operator cost 0.

The resulting tree's *cost* field is therefore meaningless (zero), but its
shape satisfies every invariant :func:`repro.plans.validation.validate_plan`
checks without a cost model: exact relation cover, disjoint connected
inputs, no cross products, provider-consistent cardinalities.  That is the
strongest guarantee any optimizer can honour once its cost model has
failed.
"""

from __future__ import annotations

from typing import List

from repro.context.context import statistics_for
from repro.errors import OptimizationError
from repro.plans.join_tree import JoinNode, JoinTree, LeafNode
from repro.query import Query

__all__ = ["structural_fallback_plan"]


def structural_fallback_plan(query: Query) -> JoinTree:
    """A valid cross-product-free join tree built without a cost model.

    Greedily joins the connected pair of subtrees with the smallest
    estimated result cardinality (ties broken by lowest vertex set, for
    determinism).  Raises :class:`~repro.errors.OptimizationError` if no
    joinable pair exists, which for a connected query graph indicates
    corrupted inputs rather than a planning failure.
    """
    graph = query.graph
    provider = statistics_for(query)
    forest: List[JoinTree] = [
        LeafNode(
            index,
            query.catalog.cardinality(index),
            query.catalog.relation(index).name,
        )
        for index in range(query.n_relations)
    ]
    while len(forest) > 1:
        best_i, best_j = -1, -1
        best_key = (float("inf"), float("inf"))
        for i in range(len(forest)):
            set_i = forest[i].vertex_set
            for j in range(i + 1, len(forest)):
                set_j = forest[j].vertex_set
                if not graph.are_connected(set_i, set_j):
                    continue
                union = set_i | set_j
                key = (provider.cardinality(union), float(union))
                if key < best_key:
                    best_key = key
                    best_i, best_j = i, j
        if best_i < 0:
            raise OptimizationError(
                "structural fallback found no joinable pair; the query "
                "graph or its statistics are corrupted"
            )
        left = forest[best_i]
        right = forest[best_j]
        joined = JoinNode(
            left, right, provider.cardinality(left.vertex_set | right.vertex_set), 0.0
        )
        forest[best_i] = joined
        del forest[best_j]
    return forest[0]
