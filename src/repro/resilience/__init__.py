"""Resilience layer: budgets, fault injection, graceful degradation.

The paper's thesis is that pruned top-down enumeration is *robust* — it
survives query shapes that blow other enumerators up.  This package turns
that robustness into an operational contract:

* :class:`Budget` — cooperative wall-clock / expansion / memo-size limits
  threaded through every plan generator (anytime optimization);
* :class:`ResilientOptimizer` — a degradation ladder (exact → best-so-far
  → IKKBZ → GOO → QuickPick → structural fallback) that always returns a
  validated plan or a typed :class:`~repro.errors.ResilienceError`, plus a
  :class:`DegradationReport` describing what happened;
* :class:`FaultInjector` — seeded, context-manager-based injection of
  cost-model, partitioner and catalog failures, used to *prove* the ladder
  catches each failure mode.

See ``docs/resilience.md`` for the full design.
"""

from repro.errors import BudgetExceeded, InjectedFaultError, ResilienceError
from repro.resilience.budget import Budget
from repro.resilience.fallback import structural_fallback_plan
from repro.resilience.faults import (
    COST_FAULT_MODES,
    IO_FAULT_MODES,
    STORE_FAULT_KINDS,
    FaultInjector,
    StoreFaultInjector,
)
from repro.resilience.optimizer import (
    DEFAULT_HEURISTIC_LADDER,
    DegradationReport,
    ResilientOptimizer,
    ResilientResult,
    RungAttempt,
)

__all__ = [
    "Budget",
    "BudgetExceeded",
    "COST_FAULT_MODES",
    "IO_FAULT_MODES",
    "STORE_FAULT_KINDS",
    "DEFAULT_HEURISTIC_LADDER",
    "DegradationReport",
    "FaultInjector",
    "StoreFaultInjector",
    "InjectedFaultError",
    "ResilienceError",
    "ResilientOptimizer",
    "ResilientResult",
    "RungAttempt",
    "structural_fallback_plan",
]
