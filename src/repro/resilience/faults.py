"""Seeded fault injection for resilience testing.

A :class:`FaultInjector` wraps the three components whose misbehaviour the
degradation ladder must survive:

* the **cost model** — :meth:`FaultInjector.cost_model` returns a wrapper
  that, while the injector is armed, raises
  :class:`~repro.errors.InjectedFaultError` or returns ``NaN``/``Inf``
  instead of a real operator cost;
* the **partitioner** — :meth:`FaultInjector.partitioning` returns a
  wrapper that substitutes a *bogus cut* (an overlapping, non-covering
  pair) for a real ccp;
* the **catalog** — :meth:`FaultInjector.catalog` returns a proxy that
  makes one relation's statistics unavailable
  (:class:`~repro.errors.CatalogError`).

Two invariants make the injector usable in correctness tests:

* **determinism** — all firing decisions come from one ``random.Random``
  seeded at :meth:`arm` time, so a given seed injects the same faults at
  the same call sites on every run;
* **transparency when disarmed** — a wrapper with its injector disarmed is
  a pure pass-through, so wrapped and unwrapped runs are bit-identical
  (covered by tests).

The injector is a context manager; entering arms it (resetting the RNG),
leaving disarms it::

    injector = FaultInjector(seed=7, rate=0.5)
    factory = injector.cost_model_factory(HaasCostModel, mode="nan")
    with injector:
        result = resilient.optimize(query)   # faults active
    clean = resilient.optimize(query)        # pass-through again
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.catalog.catalog import Catalog
from repro.cost.model import CostModel
from repro.cost.statistics import IntermediateStats
from repro.errors import CatalogError, InjectedFaultError
from repro.graph import bitset
from repro.graph.query_graph import QueryGraph
from repro.partitioning.base import PartitioningStrategy
from repro.query import Query

__all__ = [
    "FaultInjector",
    "StoreFaultInjector",
    "COST_FAULT_MODES",
    "IO_FAULT_MODES",
    "STORE_FAULT_KINDS",
]

#: Supported cost-model fault modes.  ``latency`` leaves every returned
#: cost untouched and instead injects a deterministic delay (via the
#: injector's ``sleep`` callable) — the slow-component failure mode that
#: exercises timeout / retry / circuit-breaker paths without corrupting
#: plan choice.
COST_FAULT_MODES = ("raise", "nan", "inf", "latency")

#: Supported ``io`` fault modes for wrapped file objects (:meth:`FaultInjector.file`):
#: ``raise`` fails the write outright, ``torn`` writes a seeded prefix then
#: fails (a crash mid-``write(2)``), ``bitflip`` silently corrupts one
#: seeded bit and reports success (at-rest corruption a CRC must catch).
IO_FAULT_MODES = ("raise", "torn", "bitflip")

#: Store-fault kinds understood by :class:`StoreFaultInjector`: the three
#: ``io`` modes plus ``stale_epoch`` (the store's version stamp goes stale
#: under the writer).
STORE_FAULT_KINDS = IO_FAULT_MODES + ("stale_epoch",)


class FaultInjector:
    """Deterministic, armable source of injected component failures.

    Parameters
    ----------
    seed:
        Seed of the firing RNG; re-seeded on every :meth:`arm` so repeated
        armed runs inject identically.
    rate:
        Probability that an eligible call site fires while armed.
    after:
        Number of eligible calls to let through before any fault may fire
        (lets tests poison a run mid-flight rather than at the first call).
    latency_seconds:
        Delay injected per firing call site in ``latency`` mode.
    sleep:
        The delay primitive for ``latency`` mode, injectable so tests can
        advance a fake clock instead of really sleeping.
    """

    def __init__(
        self,
        seed: int = 0,
        rate: float = 1.0,
        after: int = 0,
        latency_seconds: float = 0.01,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if after < 0:
            raise ValueError(f"after must be >= 0, got {after}")
        if latency_seconds < 0:
            raise ValueError(
                f"latency_seconds must be >= 0, got {latency_seconds}"
            )
        self.seed = seed
        self.rate = rate
        self.after = after
        self.latency_seconds = latency_seconds
        self.sleep = sleep
        self.active = False
        #: Fault-point name -> number of faults actually injected.
        self.injected: Dict[str, int] = {}
        self._rng = random.Random(seed)
        self._eligible_calls = 0

    # -- arming ----------------------------------------------------------

    def arm(self) -> "FaultInjector":
        """Activate injection and reset the RNG / call counters."""
        self.active = True
        self._rng = random.Random(self.seed)
        self._eligible_calls = 0
        self.injected = {}
        return self

    def disarm(self) -> None:
        self.active = False

    def __enter__(self) -> "FaultInjector":
        return self.arm()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.disarm()
        return False

    def _fire(self, point: str) -> bool:
        """One firing decision; only advances RNG state while armed."""
        if not self.active:
            return False
        self._eligible_calls += 1
        if self._eligible_calls <= self.after:
            return False
        if self.rate < 1.0 and self._rng.random() >= self.rate:
            return False
        self.injected[point] = self.injected.get(point, 0) + 1
        return True

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    # -- wrappers --------------------------------------------------------

    def cost_model(self, model: CostModel, mode: str = "raise") -> CostModel:
        """Wrap ``model`` so armed calls fail in the given ``mode``."""
        if mode not in COST_FAULT_MODES:
            raise ValueError(
                f"unknown cost fault mode {mode!r}; available: "
                f"{COST_FAULT_MODES}"
            )
        return _FaultyCostModel(self, model, mode)

    def cost_model_factory(
        self, factory: Callable[[], CostModel], mode: str = "raise"
    ) -> Callable[[], CostModel]:
        """A zero-argument factory producing wrapped models (optimizer API)."""

        def build() -> CostModel:
            return self.cost_model(factory(), mode)

        return build

    def partitioning(self, strategy: PartitioningStrategy) -> PartitioningStrategy:
        """Wrap ``strategy`` so armed partitions can emit a bogus cut."""
        return _FaultyPartitioning(self, strategy)

    def catalog(self, catalog: Catalog, drop: Optional[int] = None) -> Catalog:
        """Wrap ``catalog`` dropping one relation's statistics while armed.

        ``drop`` picks the victim; by default the seeded RNG chooses one at
        wrap time (so the choice, too, is reproducible).
        """
        if drop is None:
            drop = random.Random(self.seed).randrange(max(1, catalog.n_relations))
        return _FaultyCatalog(self, catalog, drop)

    def query(self, query: Query, drop: Optional[int] = None) -> Query:
        """``query`` with its catalog wrapped by :meth:`catalog`."""
        return Query(
            graph=query.graph,
            catalog=self.catalog(query.catalog, drop),
            family=query.family,
            seed=query.seed,
        )

    def file(self, handle, mode: str = "raise"):
        """Wrap a *binary* file object so armed writes fail in ``mode``.

        The wrapper delegates everything except ``write``; with the
        injector disarmed it is a pure pass-through (bit-identical output,
        covered by tests), so it can stay installed permanently.
        """
        if mode not in IO_FAULT_MODES:
            raise ValueError(
                f"unknown io fault mode {mode!r}; available: {IO_FAULT_MODES}"
            )
        return _FaultyFile(self, handle, mode)

    def __repr__(self) -> str:
        state = "armed" if self.active else "disarmed"
        return (
            f"FaultInjector(seed={self.seed}, rate={self.rate}, "
            f"after={self.after}, {state}, injected={self.total_injected})"
        )


class _FaultyCostModel(CostModel):
    """Delegating cost model with injectable join-cost failures."""

    def __init__(self, injector: FaultInjector, inner: CostModel, mode: str):
        self._injector = injector
        self._inner = inner
        self._mode = mode
        self.name = inner.name

    def bind(self, provider) -> "_FaultyCostModel":
        """Delegate binding so a wrapped provider-dependent model works."""
        bound_inner = self._inner.bind(provider)
        if bound_inner is self._inner:
            return self
        return _FaultyCostModel(self._injector, bound_inner, self._mode)

    def _fault_value(self) -> float:
        if self._mode == "raise":
            raise InjectedFaultError(
                "injected cost-model failure (mode=raise)"
            )
        return float("nan") if self._mode == "nan" else float("inf")

    def join_cost(self, outer: IntermediateStats, inner: IntermediateStats) -> float:
        if self._injector._fire("cost_model"):
            if self._mode == "latency":
                # Slow, not wrong: stall for the injected delay, then
                # return the true cost so plan choice is unaffected.
                self._injector.sleep(self._injector.latency_seconds)
                return self._inner.join_cost(outer, inner)
            return self._fault_value()
        return self._inner.join_cost(outer, inner)

    def lower_bound(
        self, left: IntermediateStats, right: IntermediateStats
    ) -> float:
        # Delegate so an inner model's cheap admissible bound survives
        # wrapping; min_join_cost goes through join_cost above and is
        # therefore fault-eligible.  Latency mode keeps the inner bound:
        # its values must stay bit-identical to the clean run's so that
        # injected delays never change which plans get pruned.
        if self._injector.active and self._mode != "latency":
            return self.min_join_cost(left, right)
        return self._inner.lower_bound(left, right)

    def __repr__(self) -> str:
        return f"_FaultyCostModel({self._inner!r}, mode={self._mode!r})"


class _FaultyPartitioning(PartitioningStrategy):
    """Delegating partitioner that can substitute a bogus cut.

    The bogus emission is ``(low, low)`` for the lowest singleton of the
    set: overlapping (both sides identical) and non-covering (the union is
    not the input set) — everything a ccp must not be.  Both sides are
    memoized singletons, so the recursion terminates immediately and the
    failure surfaces as a ``ValueError`` from join-tree construction or as
    a structurally invalid plan, exactly the two paths the validation
    layer must catch.
    """

    def __init__(self, injector: FaultInjector, inner: PartitioningStrategy):
        self._injector = injector
        self._inner = inner
        self.name = inner.name
        self.label = inner.label

    def partitions(
        self, graph: QueryGraph, vertex_set: int
    ) -> Iterator[Tuple[int, int]]:
        if self._injector._fire("partitioning"):
            low = bitset.lowest_bit(vertex_set)
            yield (low, low)
            return
        yield from self._inner.partitions(graph, vertex_set)

    def __repr__(self) -> str:
        return f"_FaultyPartitioning({self._inner!r})"


class _FaultyCatalog(Catalog):
    """Catalog proxy that loses one relation's statistics while armed.

    Subclasses :class:`Catalog` for isinstance compatibility but delegates
    every read to the wrapped instance; the dropped relation only
    disappears while the injector is armed, so disarmed behaviour is
    bit-identical to the plain catalog.
    """

    def __init__(self, injector: FaultInjector, inner: Catalog, drop: int):
        # Deliberately no super().__init__: this proxy owns no data.
        self._injector = injector
        self._inner = inner
        self._drop = drop

    @property
    def dropped_relation(self) -> int:
        return self._drop

    def _guard(self, index: int) -> None:
        if self._injector.active and index == self._drop:
            self._injector.injected["catalog"] = (
                self._injector.injected.get("catalog", 0) + 1
            )
            raise CatalogError(
                f"[injected] statistics for relation R{self._drop} are "
                "unavailable"
            )

    @property
    def n_relations(self) -> int:
        return self._inner.n_relations

    def relation(self, index: int):
        self._guard(index)
        return self._inner.relation(index)

    def cardinality(self, index: int) -> float:
        self._guard(index)
        return self._inner.cardinality(index)

    def selectivity(self, u: int, v: int) -> float:
        self._guard(u)
        self._guard(v)
        return self._inner.selectivity(u, v)

    def has_selectivity(self, u: int, v: int) -> bool:
        return self._inner.has_selectivity(u, v)

    @property
    def selectivities(self):
        return self._inner.selectivities

    def validate_against(self, graph: QueryGraph) -> None:
        self._inner.validate_against(graph)

    def relabel(self, mapping) -> Catalog:
        return _FaultyCatalog(self._injector, self._inner.relabel(mapping), self._drop)

    def __repr__(self) -> str:
        return f"_FaultyCatalog({self._inner!r}, drop=R{self._drop})"


class _FaultyFile:
    """Delegating binary-file wrapper with injectable write failures.

    ``raise`` fails before any byte lands; ``torn`` writes a seeded
    prefix, flushes it (so the partial really is on disk, exactly like a
    crash mid-write) and then fails; ``bitflip`` flips one seeded bit and
    *succeeds* — the silent-corruption case only a checksum can catch.
    Reads, seeks, ``flush``/``fileno``/``close`` all delegate untouched,
    and a disarmed injector makes ``write`` a pure pass-through.
    """

    def __init__(self, injector: FaultInjector, inner, mode: str):
        self._injector = injector
        self._inner = inner
        self._mode = mode

    def write(self, data: bytes) -> int:
        if not data or not self._injector._fire("io"):
            return self._inner.write(data)
        rng = self._injector._rng
        if self._mode == "raise":
            raise InjectedFaultError("injected io failure (mode=raise)")
        if self._mode == "torn":
            cut = rng.randrange(len(data))
            self._inner.write(data[:cut])
            self._inner.flush()
            raise InjectedFaultError(
                f"injected torn write ({cut}/{len(data)} bytes landed)"
            )
        # bitflip: corrupt exactly one bit, then report a clean success.
        corrupted = bytearray(data)
        index = rng.randrange(len(corrupted))
        # This is a byte-level corruption mask, not a relation bitset.
        corrupted[index] ^= 1 << rng.randrange(8)  # repro: disable=bitset-discipline
        return self._inner.write(bytes(corrupted))

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def __enter__(self) -> "_FaultyFile":
        self._inner.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb):
        return self._inner.__exit__(exc_type, exc, tb)

    def __repr__(self) -> str:
        return f"_FaultyFile({self._inner!r}, mode={self._mode!r})"


class StoreFaultInjector:
    """Seeded fault source for the durable plan store.

    Composes the :class:`FaultInjector` ``io`` family with one
    store-specific failure — ``stale_epoch``, the store's version stamp
    going stale under a live writer — behind the duck-typed surface
    :class:`repro.context.store.DurableStore` consumes
    (``wrap_handle`` / ``epoch_fires``).  Same contracts as every other
    injector: deterministic under a seed, pass-through when disarmed,
    armable as a context manager.
    """

    def __init__(
        self,
        seed: int = 0,
        rate: float = 1.0,
        after: int = 0,
        kind: str = "raise",
    ):
        if kind not in STORE_FAULT_KINDS:
            raise ValueError(
                f"unknown store fault kind {kind!r}; available: "
                f"{STORE_FAULT_KINDS}"
            )
        self.kind = kind
        self._injector = FaultInjector(seed=seed, rate=rate, after=after)

    # -- DurableStore surface -------------------------------------------

    def wrap_handle(self, handle):
        """The store's writer handle, fault-wrapped for io kinds."""
        if self.kind in IO_FAULT_MODES:
            return self._injector.file(handle, self.kind)
        return handle

    def epoch_fires(self) -> bool:
        """One stale-epoch firing decision (False for every other kind)."""
        if self.kind != "stale_epoch":
            return False
        return self._injector._fire("store_epoch")

    # -- arming ----------------------------------------------------------

    def arm(self) -> "StoreFaultInjector":
        self._injector.arm()
        return self

    def disarm(self) -> None:
        self._injector.disarm()

    def __enter__(self) -> "StoreFaultInjector":
        return self.arm()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.disarm()
        return False

    @property
    def active(self) -> bool:
        return self._injector.active

    @property
    def injected(self) -> Dict[str, int]:
        return self._injector.injected

    @property
    def total_injected(self) -> int:
        return self._injector.total_injected

    def __repr__(self) -> str:
        return f"StoreFaultInjector(kind={self.kind!r}, {self._injector!r})"
