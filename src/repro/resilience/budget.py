"""Cooperative optimization budgets (the anytime contract).

A :class:`Budget` bounds one optimizer run along three independent axes:

* **wall clock** — a deadline measured with ``time.monotonic`` (immune to
  system clock adjustments mid-run);
* **expansions** — the number of plan-class expansions (``_tdpg`` entries /
  ccp pulls), a deterministic, platform-independent work measure;
* **memo size** — the number of memotable entries, a proxy for memory.

Enforcement is *cooperative*: the plan generators call :meth:`check` at
every expansion and every enumerated ccp, and the budget raises
:class:`~repro.errors.BudgetExceeded` the moment any axis is exhausted.
Between deadline probes the budget only counts (``time.monotonic`` is
cheap, but not free — see ``_DEADLINE_STRIDE``).

Budgets are single-use: they start ticking at the first :meth:`check` (or
an explicit :meth:`start`) and accumulate consumption until discarded.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.errors import BudgetExceeded

__all__ = ["Budget", "BudgetExceeded"]

#: Deadline probes happen every this many :meth:`Budget.check` calls; the
#: counters are enforced on every call.  32 expansions of pure-Python
#: enumeration take far longer than a clock read, so the deadline overshoot
#: this admits is microseconds even on the tightest budgets.
_DEADLINE_STRIDE = 32


class Budget:
    """A wall-clock / expansion / memo-size budget for one optimizer run.

    Parameters
    ----------
    deadline_seconds:
        Wall-clock allowance from :meth:`start`; ``None`` disables the axis.
    max_expansions:
        Maximum number of :meth:`check` calls; ``None`` disables the axis.
    max_memo_entries:
        Maximum memotable size observed at a check; ``None`` disables it.
    clock:
        Monotonic time source, injectable for tests.
    """

    __slots__ = (
        "deadline_seconds",
        "max_expansions",
        "max_memo_entries",
        "_clock",
        "_started_at",
        "_expansions",
        "_last_memo_size",
        "_exhausted_reason",
    )

    def __init__(
        self,
        deadline_seconds: Optional[float] = None,
        max_expansions: Optional[int] = None,
        max_memo_entries: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if deadline_seconds is not None and deadline_seconds < 0:
            raise ValueError(f"deadline must be >= 0, got {deadline_seconds}")
        if max_expansions is not None and max_expansions < 0:
            raise ValueError(f"max_expansions must be >= 0, got {max_expansions}")
        if max_memo_entries is not None and max_memo_entries < 0:
            raise ValueError(
                f"max_memo_entries must be >= 0, got {max_memo_entries}"
            )
        self.deadline_seconds = deadline_seconds
        self.max_expansions = max_expansions
        self.max_memo_entries = max_memo_entries
        self._clock = clock
        self._started_at: Optional[float] = None
        self._expansions = 0
        self._last_memo_size = 0
        self._exhausted_reason: Optional[str] = None

    @classmethod
    def unlimited(cls) -> "Budget":
        """A budget that never fires (useful as a neutral default)."""
        return cls()

    # ------------------------------------------------------------------

    @property
    def unbounded(self) -> bool:
        """True when no axis is constrained (checks can never raise)."""
        return (
            self.deadline_seconds is None
            and self.max_expansions is None
            and self.max_memo_entries is None
        )

    @property
    def started(self) -> bool:
        return self._started_at is not None

    @property
    def expansions(self) -> int:
        """Expansions charged so far."""
        return self._expansions

    @property
    def exhausted_reason(self) -> Optional[str]:
        """Which axis fired (``None`` while the budget still has headroom)."""
        return self._exhausted_reason

    def start(self) -> "Budget":
        """Start the deadline clock (idempotent); returns ``self``."""
        if self._started_at is None:
            self._started_at = self._clock()
        return self

    def elapsed(self) -> float:
        """Wall-clock seconds since :meth:`start` (0 before starting)."""
        if self._started_at is None:
            return 0.0
        return self._clock() - self._started_at

    def remaining_seconds(self) -> Optional[float]:
        """Deadline headroom, or ``None`` when the axis is disabled."""
        if self.deadline_seconds is None:
            return None
        return self.deadline_seconds - self.elapsed()

    # ------------------------------------------------------------------

    def check(self, memo_size: int = 0) -> None:
        """Charge one expansion and raise if any axis is exhausted.

        Called cooperatively from the enumeration hot loops; starts the
        deadline clock on first use.
        """
        if self._started_at is None:
            self._started_at = self._clock()
        self._expansions += 1
        if memo_size > self._last_memo_size:
            self._last_memo_size = memo_size
        if (
            self.max_expansions is not None
            and self._expansions > self.max_expansions
        ):
            self._fail(
                "expansions",
                f"{self._expansions} expansions > cap {self.max_expansions}",
            )
        if (
            self.max_memo_entries is not None
            and memo_size > self.max_memo_entries
        ):
            self._fail(
                "memo",
                f"{memo_size} memo entries > cap {self.max_memo_entries}",
            )
        if self.deadline_seconds is not None and (
            self._expansions % _DEADLINE_STRIDE == 0 or self._expansions == 1
        ):
            elapsed = self._clock() - self._started_at
            if elapsed > self.deadline_seconds:
                self._fail(
                    "deadline",
                    f"{elapsed * 1000:.1f} ms elapsed > "
                    f"{self.deadline_seconds * 1000:.1f} ms deadline",
                )

    def _fail(self, reason: str, detail: str) -> None:
        self._exhausted_reason = reason
        raise BudgetExceeded(reason, detail)

    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Consumption summary for :class:`DegradationReport` / JSON logs."""
        return {
            "deadline_seconds": self.deadline_seconds,
            "max_expansions": self.max_expansions,
            "max_memo_entries": self.max_memo_entries,
            "elapsed_seconds": self.elapsed(),
            "expansions": self._expansions,
            "memo_entries": self._last_memo_size,
            "exhausted": self._exhausted_reason,
        }

    def __repr__(self) -> str:
        parts = []
        if self.deadline_seconds is not None:
            parts.append(f"deadline={self.deadline_seconds * 1000:.0f}ms")
        if self.max_expansions is not None:
            parts.append(f"expansions<={self.max_expansions}")
        if self.max_memo_entries is not None:
            parts.append(f"memo<={self.max_memo_entries}")
        inner = ", ".join(parts) if parts else "unlimited"
        return f"Budget({inner})"
