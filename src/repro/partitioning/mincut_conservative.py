"""MinCutConservative — the paper's novel partitioning algorithm (§III, Fig. 2).

The strategy grows a connected set ``C`` (always containing the start
vertex ``t``, which guarantees each symmetric pair is emitted once) by
members of its neighborhood.  Before recursing it calls GETCONNECTEDPARTS:
when adding a neighbor ``v`` would disconnect the complement into parts
``O_1 .. O_k``, it *conservatively* jumps straight to the enlarged sets
``C' = S \\ O_i`` whose complements are connected again — so, unlike plain
generate-and-test, it never visits a candidate whose complement is
disconnected.  The filter set ``X`` prevents duplicate emissions exactly as
in Fig. 2 (line 10: a processed neighbor is excluded from all later
branches of the same invocation).

Neighbor processing order follows the paper's implementation note
(§IV-D, advancement 6): the next neighbor is the least significant bit of
the remaining neighborhood bitset, which is what makes the graph
renumbering advancement effective.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.graph import bitset
from repro.graph.query_graph import QueryGraph
from repro.partitioning.base import PartitioningStrategy
from repro.partitioning.connected_parts import get_connected_parts

__all__ = ["MinCutConservative"]


class MinCutConservative(PartitioningStrategy):
    """Conservative graph partitioning (Fig. 2)."""

    name = "mincut_conservative"
    label = "TDMcC"

    def partitions(
        self, graph: QueryGraph, vertex_set: int
    ) -> Iterator[Tuple[int, int]]:
        # PARTITION_MinCutConservative: start with C = X = empty; the
        # footnote of Fig. 2 defines N(empty) = {t} with t an arbitrary
        # element of S — we pick the lowest-indexed vertex.
        yield from self._mincut(graph, vertex_set, 0, 0)

    def _mincut(
        self, graph: QueryGraph, s: int, c: int, x: int
    ) -> Iterator[Tuple[int, int]]:
        # Lines 1-2: C = S means the complement is empty; nothing to emit.
        if c == s:
            return
        # Lines 3-4: every invocation with a non-empty C represents one ccp
        # (its complement is connected by construction).
        if c:
            yield (c, s & ~c)
        # Line 5 and the loop of lines 6-10.
        x_prime = x
        if c:
            neighbors = graph.neighborhood(c, s) & ~x
        else:
            neighbors = bitset.lowest_bit(s)  # N(empty) = {t}, t = lowest vertex of S
        # Hot per-ccp loop: lowest-bit extraction stays inlined.
        while neighbors:
            v = neighbors & -neighbors  # repro: disable=bitset-discipline
            neighbors ^= v
            # Line 7: components of S \ (C u {v}).
            parts = get_connected_parts(graph, s, c | v, v)
            # Lines 8-9: one recursive branch per component O_i, continuing
            # with C' = S \ O_i (when the complement stayed connected this
            # is exactly C u {v}).
            # When C u {v} = S, get_connected_parts returns no parts and the
            # loop body recurses zero times (the paper's version recurses
            # once into the immediately-returning C = S state instead).
            for part in parts:
                new_c = s & ~part
                # Fig. 2 states the invariant C n X = empty for every
                # invocation.  A jump branch absorbs the *other* complement
                # components into C'; when one of them contains an
                # already-filtered neighbor, this C' (and its whole subtree)
                # was reached through that neighbor's earlier branch, so
                # descending again would emit duplicates.
                if new_c & x_prime:
                    continue
                yield from self._mincut(graph, s, new_c, x_prime)
            # Line 10: exclude v from all later branches of this invocation.
            x_prime |= v
