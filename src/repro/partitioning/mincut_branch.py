"""MinCutBranch — branch partitioning after Fender & Moerkotte (ICDE 2011).

The 2011 pseudocode is not reprinted in the 2012 paper this library
reproduces, so this is a documented reconstruction (see DESIGN.md §3): a
depth-first branch partitioner with the same correctness contract — grow a
connected ``C`` containing the start vertex, keep the complement connected
by jumping over complement components, filter processed neighbors — but
with the *opposite* traversal choices from MinCutConservative:

* the start vertex ``t`` is the highest-indexed vertex of ``S`` (so each
  symmetric pair is emitted once with the max-index relation inside ``C``),
* neighbors are processed most-significant-bit first,
* complement components are recomputed with a plain sweep instead of the
  early-exit test of Fig. 18 (which is precisely why the paper can claim
  MinCutConservative is "slightly faster").

These choices produce a genuinely different enumeration order, which is
what the paper's robustness experiments exercise, while the emitted *set*
of ccps is identical (property-tested against naive partitioning).
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.graph import bitset
from repro.graph.query_graph import QueryGraph
from repro.partitioning.base import PartitioningStrategy
from repro.partitioning.connected_parts import connected_parts_simple

__all__ = ["MinCutBranch"]


def _iter_bits_descending(value: int) -> Iterator[int]:
    """Yield singleton bitsets of ``value`` from highest to lowest."""
    # Hot per-ccp loop: highest-bit extraction stays inlined.
    while value:
        high = 1 << (value.bit_length() - 1)  # repro: disable=bitset-discipline
        yield high
        value ^= high


class MinCutBranch(PartitioningStrategy):
    """Branch partitioning (reconstruction, MSB-first traversal)."""

    name = "mincut_branch"
    label = "TDMcB"

    def partitions(
        self, graph: QueryGraph, vertex_set: int
    ) -> Iterator[Tuple[int, int]]:
        yield from self._branch(graph, vertex_set, 0, 0)

    def _branch(
        self, graph: QueryGraph, s: int, c: int, x: int
    ) -> Iterator[Tuple[int, int]]:
        if c == s:
            return
        if c:
            yield (c, s & ~c)
        x_prime = x
        if c:
            neighbors = graph.neighborhood(c, s) & ~x
        else:
            neighbors = bitset.highest_bit(s)  # t = highest vertex of S
        for v in _iter_bits_descending(neighbors):
            for part in connected_parts_simple(graph, s, c | v):
                new_c = s & ~part
                # Keep the C n X = empty invariant: a jump that would absorb
                # an already-filtered neighbor duplicates that neighbor's
                # earlier branch (see MinCutConservative for the analysis).
                if new_c & x_prime:
                    continue
                yield from self._branch(graph, s, new_c, x_prime)
            x_prime |= v
