"""Partitioning strategy interface.

A partitioning strategy enumerates ``P_ccp_sym(S)`` — all connected
subgraph / connected complement pairs of a connected vertex set ``S``
(Def. 2.2), with each symmetric pair emitted exactly once.  The generic
top-down plan generators consume this interface; the three MinCut*
algorithms and the naive generate-and-test strategy implement it.

Strategies are stateless with respect to a query: they are constructed once
and handed the graph per call, so a single instance can serve a whole
workload run.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Tuple

from repro.graph.query_graph import QueryGraph

__all__ = ["PartitioningStrategy"]


class PartitioningStrategy(ABC):
    """Enumerates ccps for connected vertex sets of a query graph."""

    #: Registry name (``"naive"``, ``"mincut_lazy"``, ...).
    name = "abstract"

    #: Short display label used by the benchmark tables (``TDMcC`` etc.).
    label = "?"

    @abstractmethod
    def partitions(
        self, graph: QueryGraph, vertex_set: int
    ) -> Iterator[Tuple[int, int]]:
        """Yield every ccp ``(S1, S2)`` for ``vertex_set``, symmetric once.

        ``vertex_set`` must induce a connected subgraph with at least two
        vertices.  The union of each emitted pair is ``vertex_set``, both
        sides induce connected subgraphs, and at least one join edge links
        them (Def. 2.1/2.2).
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
