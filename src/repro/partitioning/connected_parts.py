"""GETCONNECTEDPARTS (Appendix C, Fig. 18).

Given a connected ``S``, a connected ``C`` that is a subset of ``S`` and a
probe set ``T`` (in MinCutConservative always the one-element set holding
the vertex ``v`` just added to ``C``), the routine returns the connected
components ``O_1 .. O_k`` of the complement ``S \\ C``.

It is a twofold strategy: part one is an *improved connection test* that
exploits the invariant that the previous complement ``S \\ (C \\ T)`` was
connected — then it suffices to check that the neighbors of ``T`` inside
the complement can all reach each other.  When that early test discovers a
single reachable group covering all those neighbors, the whole complement
is connected and is returned as one part without ever traversing it fully.
Only when the test fails does part two run a plain component sweep for the
remaining parts.
"""

from __future__ import annotations

from typing import List

from repro.graph.query_graph import QueryGraph

__all__ = ["get_connected_parts", "connected_parts_simple"]


def connected_parts_simple(graph: QueryGraph, s: int, c: int) -> List[int]:
    """Reference implementation: components of ``S \\ C`` by full sweep.

    Used by tests as the oracle for :func:`get_connected_parts` and by the
    reconstructed MinCutLazy strategy, which deliberately re-derives
    connectivity from scratch (see DESIGN.md).
    """
    return graph.connected_components(s & ~c)


def get_connected_parts(graph: QueryGraph, s: int, c: int, t: int) -> List[int]:
    """Fig. 18: components of ``S \\ C``, with the early connectivity test.

    Parameters
    ----------
    graph:
        The query graph.
    s:
        Connected vertex set currently being partitioned.
    c:
        Connected subset of ``s`` (already including the new vertex).
    t:
        Subset of ``c`` whose neighbors seed the test — the vertex just
        moved into ``c``.  Correctness of the early exit relies on
        ``S \\ (C \\ T)`` having been connected.
    """
    complement = s & ~c
    # Line 1: N <- N(T) \ C, restricted to S.
    n = graph.neighborhood(t, s) & ~c
    # Lines 2-3: a single touched neighbor means the old complement minus T
    # stays in one piece.
    if n & (n - 1) == 0:
        return [complement] if complement else []

    # Lines 4-11: expand the indirect neighborhood of one n in N within the
    # complement, generation by generation, until either every element of N
    # was reached (U empty -> connected) or the frontier dies out.
    level_prev = 0
    # L' <- some n in N.  Hot per-ccp helper: the lowest-bit extraction
    # stays inlined here and below.
    level = n & -n  # repro: disable=bitset-discipline
    unreached = n & ~level
    while level_prev != level and unreached:
        delta = level & ~level_prev  # D: the newest generation only
        level_prev = level
        level = level | (graph.neighborhood(delta, complement))
        unreached &= ~level

    # Lines 12-13: all probe neighbors reached -> complement is connected.
    if not unreached:
        return [complement]

    # Line 14 onward: the reached region closed; finish expanding it into a
    # full component, then sweep the remaining probe neighbors.
    parts: List[int] = []
    first = _expand_component(graph, level, complement)
    parts.append(first)

    # Lines 15-24: find the other components seeded by untouched neighbors.
    unreached = n & ~first
    while unreached:
        seed = unreached & -unreached  # repro: disable=bitset-discipline
        component = _expand_component(graph, seed, complement)
        parts.append(component)
        unreached &= ~component
    return parts


def _expand_component(graph: QueryGraph, seed: int, within: int) -> int:
    """Close ``seed`` under adjacency inside ``within`` (lines 19-22)."""
    component = seed
    frontier = seed
    while frontier:
        frontier = graph.neighborhood(frontier, within) & ~component
        component |= frontier
    return component
