"""Naive generate-and-test partitioning (Appendix B, Fig. 17).

Enumerates every non-empty proper subset ``S1`` of ``S`` that does not
contain the highest-indexed vertex (so each symmetric pair appears once,
with the max-index relation always in the complement — the convention the
paper attributes to DeHaan & Tompa's strategies) and emits those whose both
sides induce connected subgraphs.  Exponential in ``|S|``; it exists as the
correctness oracle for the efficient strategies and as a pedagogical
baseline.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.graph import bitset
from repro.graph.query_graph import QueryGraph
from repro.partitioning.base import PartitioningStrategy

__all__ = ["NaivePartitioning"]


class NaivePartitioning(PartitioningStrategy):
    """Subset enumeration + connectivity tests (Fig. 17)."""

    name = "naive"
    label = "TDNaive"

    def partitions(
        self, graph: QueryGraph, vertex_set: int
    ) -> Iterator[Tuple[int, int]]:
        highest = bitset.highest_bit(vertex_set)
        candidates = vertex_set & ~highest
        # Vance & Maier subset enumeration over S minus the anchor vertex;
        # every emitted S1 therefore satisfies max(S1) < max(S2).
        for left in bitset.iter_subsets(candidates):
            right = vertex_set & ~left
            if graph.is_connected(left) and graph.is_connected(right):
                yield (left, right)
