"""MinCutAGaT — advanced generate-and-test partitioning ([5]).

§III-A introduces MinCutConservative as "an improvement of the advanced
generate-and-test approach presented in [5]".  This module implements that
predecessor: grow a connected set ``C`` (containing the start vertex) one
neighbor at a time with the usual duplicate filter ``X``, and *test* the
complement's connectivity at every candidate — emitting when it holds and
recursing regardless.

Unlike the conservative algorithm it therefore visits every connected
subset of ``S`` that contains ``t``, including the exponentially many
whose complement is disconnected; on star queries this is the
"exponential overhead" §III-C describes.  It is included as the fourth
enumeration order for robustness studies and as the pedagogical contrast
to the conservative jump — not as a production strategy.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.graph import bitset
from repro.graph.query_graph import QueryGraph
from repro.partitioning.base import PartitioningStrategy

__all__ = ["MinCutAGaT"]


class MinCutAGaT(PartitioningStrategy):
    """Advanced generate-and-test partitioning (the pre-conservative [5])."""

    name = "mincut_agat"
    label = "TDMcA"

    def partitions(
        self, graph: QueryGraph, vertex_set: int
    ) -> Iterator[Tuple[int, int]]:
        start = bitset.lowest_bit(vertex_set)  # t = lowest vertex of S
        yield from self._grow(graph, vertex_set, start, 0)

    def _grow(
        self, graph: QueryGraph, s: int, c: int, x: int
    ) -> Iterator[Tuple[int, int]]:
        complement = s & ~c
        # Test: emit when the complement is connected (the "test" half).
        if complement and graph.is_connected(complement):
            yield (c, complement)
        # Generate: extend C by every unfiltered neighbor (the "generate"
        # half), excluding each processed neighbor from later branches.
        neighbors = graph.neighborhood(c, s) & ~x
        x_prime = x
        # Hot per-ccp loop: lowest-bit extraction stays inlined.
        while neighbors:
            v = neighbors & -neighbors  # repro: disable=bitset-discipline
            neighbors ^= v
            yield from self._grow(graph, s, c | v, x_prime)
            x_prime |= v
