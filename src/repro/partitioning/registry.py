"""Name -> partitioning strategy registry.

Strategies are stateless, so the registry hands out shared singleton
instances.  ``get_partitioning("mincut_conservative")`` is what the
optimizer facade and the benchmark harness use.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import UnknownAlgorithmError
from repro.partitioning.base import PartitioningStrategy
from repro.partitioning.mincut_agat import MinCutAGaT
from repro.partitioning.mincut_branch import MinCutBranch
from repro.partitioning.mincut_conservative import MinCutConservative
from repro.partitioning.mincut_lazy import MinCutLazy
from repro.partitioning.naive import NaivePartitioning

__all__ = ["get_partitioning", "available_partitionings", "PARTITIONINGS"]

PARTITIONINGS: Dict[str, PartitioningStrategy] = {
    strategy.name: strategy
    for strategy in (
        NaivePartitioning(),
        MinCutAGaT(),
        MinCutLazy(),
        MinCutBranch(),
        MinCutConservative(),
    )
}


def get_partitioning(name: str) -> PartitioningStrategy:
    """Look up a partitioning strategy by registry name."""
    try:
        return PARTITIONINGS[name]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown partitioning strategy {name!r}; "
            f"available: {sorted(PARTITIONINGS)}"
        ) from None


def available_partitionings() -> List[str]:
    """Registry names of all partitioning strategies."""
    return sorted(PARTITIONINGS)
