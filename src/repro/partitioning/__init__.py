"""Partitioning strategies: enumeration of csg-cmp pairs (ccps)."""

from repro.partitioning.base import PartitioningStrategy
from repro.partitioning.connected_parts import (
    connected_parts_simple,
    get_connected_parts,
)
from repro.partitioning.mincut_agat import MinCutAGaT
from repro.partitioning.mincut_branch import MinCutBranch
from repro.partitioning.mincut_conservative import MinCutConservative
from repro.partitioning.mincut_lazy import MinCutLazy
from repro.partitioning.naive import NaivePartitioning
from repro.partitioning.registry import (
    PARTITIONINGS,
    available_partitionings,
    get_partitioning,
)

__all__ = [
    "PartitioningStrategy",
    "NaivePartitioning",
    "MinCutAGaT",
    "MinCutLazy",
    "MinCutBranch",
    "MinCutConservative",
    "get_connected_parts",
    "connected_parts_simple",
    "get_partitioning",
    "available_partitionings",
    "PARTITIONINGS",
]
