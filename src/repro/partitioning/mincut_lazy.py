"""MinCutLazy — after DeHaan & Tompa (SIGMOD 2007).

The original pseudocode is not reprinted in the 2012 paper, so this is a
documented reconstruction (DESIGN.md §3) that preserves the two facts the
evaluation depends on:

* it emits exactly ``P_ccp_sym(S)``, each symmetric pair once
  (property-tested against naive partitioning), and
* it is the *slowest* of the three efficient partitioners, with a cost
  envelope of roughly O(|V|^2) per emitted ccp: every visited state
  re-derives the connected components of its complement from scratch with a
  full sweep, and states are managed lazily through an explicit
  breadth-first work list (whence the different enumeration order: all
  small ``C`` sets are emitted before any larger one).

Structurally it explores the same jump-over-complement-components state
tree as MinCutConservative, but iteratively in FIFO order and without the
early-exit connectivity test of Fig. 18.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, Tuple

from repro.graph import bitset
from repro.graph.query_graph import QueryGraph
from repro.partitioning.base import PartitioningStrategy
from repro.partitioning.connected_parts import connected_parts_simple

__all__ = ["MinCutLazy"]


class MinCutLazy(PartitioningStrategy):
    """Lazy (breadth-first, recompute-everything) partitioning."""

    name = "mincut_lazy"
    label = "TDMcL"

    def partitions(
        self, graph: QueryGraph, vertex_set: int
    ) -> Iterator[Tuple[int, int]]:
        # Work list of (C, X) states; C always contains the start vertex
        # (lowest of S) once non-empty, which keeps symmetric pairs unique.
        work: Deque[Tuple[int, int]] = deque()
        work.append((0, 0))
        while work:
            c, x = work.popleft()
            if c == vertex_set:
                continue
            if c:
                # The lazy strategy trusts nothing it did not just compute:
                # it re-validates both sides with a full traversal before
                # emitting, which is where its O(|V|^2)-per-ccp envelope
                # comes from (DESIGN.md §3).
                complement = vertex_set & ~c
                if not (graph.is_connected(c) and graph.is_connected(complement)):
                    raise AssertionError(
                        "MinCutLazy state invariant violated: both sides of "
                        "an emitted partition must be connected"
                    )
                yield (c, complement)
            x_prime = x
            if c:
                neighbors = graph.neighborhood(c, vertex_set) & ~x
            else:
                neighbors = bitset.lowest_bit(vertex_set)  # t = lowest vertex
            remaining = neighbors
            # Hot per-ccp loop: lowest-bit extraction stays inlined.
            while remaining:
                v = remaining & -remaining  # repro: disable=bitset-discipline
                remaining ^= v
                for part in connected_parts_simple(graph, vertex_set, c | v):
                    new_c = vertex_set & ~part
                    # Keep the C n X = empty invariant: a jump absorbing an
                    # already-filtered neighbor duplicates that neighbor's
                    # earlier branch (see MinCutConservative).
                    if new_c & x_prime:
                        continue
                    work.append((new_c, x_prime))
                x_prime |= v
