"""repro — Effective and Robust Pruning for Top-Down Join Enumeration.

A from-scratch Python reproduction of Fender, Moerkotte, Neumann and Leis
(ICDE 2012): the MinCutConservative partitioning algorithm, the APCBI
branch-and-bound pruning strategy with its six advancements, the APCB / PCB
/ ACB baselines, the MinCutLazy and MinCutBranch enumerators, the DPccp
bottom-up baseline, the GOO heuristic, a Haas-et-al. I/O cost model, the
Steinbrunn-style workload generator and the full measurement harness that
regenerates every table and figure of the paper's evaluation.

Quickstart::

    from repro import random_acyclic_query, optimize

    query = random_acyclic_query(10, seed=42)
    result = optimize(query, enumerator="mincut_conservative", pruning="apcbi")
    print(result.explain())
"""

from repro.catalog import Catalog, RelationStats
from repro.core import (
    AdvancementConfig,
    OptimizationResult,
    Optimizer,
    algorithm_label,
    optimize,
    optimize_topk,
    run_dpccp,
    run_goo,
)
from repro.baselines import DPccp, DPsize, DPsub
from repro.context import (
    OptimizationContext,
    PlanCache,
    fingerprint,
    statistics_for,
)
from repro.cost import CoutCostModel, HaasCostModel, StatisticsProvider
from repro.heuristics import available_heuristics, get_heuristic
from repro.errors import (
    CatalogError,
    DisconnectedGraphError,
    GraphError,
    OptimizationError,
    ReproError,
    UnknownAlgorithmError,
)
from repro.graph import QueryGraph
from repro.partitioning import available_partitionings, get_partitioning
from repro.plans import (
    JoinNode,
    JoinTree,
    LeafNode,
    PlanValidationError,
    check_finite,
    plan_fingerprint,
    validate_plan,
)
from repro.query import Query
from repro.resilience import (
    Budget,
    BudgetExceeded,
    DegradationReport,
    FaultInjector,
    InjectedFaultError,
    ResilienceError,
    ResilientOptimizer,
    ResilientResult,
)
from repro.errors import (
    CircuitOpenError,
    RetriesExhaustedError,
    ServiceError,
    ServiceOverloadError,
    ServiceShutdownError,
)
from repro.service import (
    AdmissionQueue,
    BreakerBoard,
    CircuitBreaker,
    ManualClock,
    OptimizationService,
    OptimizeRequest,
    OptimizeResponse,
    RetryPolicy,
    ServiceHealth,
)
from repro.stats import OptimizationStats
from repro.workload import (
    QueryGenerator,
    WorkloadSuite,
    chain_query,
    clique_query,
    cycle_query,
    default_suite,
    generate_query,
    random_acyclic_query,
    random_cyclic_query,
    star_query,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # queries and statistics
    "Query",
    "QueryGraph",
    "Catalog",
    "RelationStats",
    "StatisticsProvider",
    # optimization context and plan cache
    "OptimizationContext",
    "PlanCache",
    "fingerprint",
    "statistics_for",
    # optimizers
    "optimize",
    "optimize_topk",
    "Optimizer",
    "OptimizationResult",
    "AdvancementConfig",
    "DPccp",
    "DPsize",
    "DPsub",
    "run_dpccp",
    "run_goo",
    "algorithm_label",
    "get_heuristic",
    "available_heuristics",
    # cost models
    "HaasCostModel",
    "CoutCostModel",
    # plans
    "JoinTree",
    "JoinNode",
    "LeafNode",
    "validate_plan",
    "check_finite",
    "plan_fingerprint",
    "PlanValidationError",
    # resilience (anytime optimization and graceful degradation)
    "Budget",
    "BudgetExceeded",
    "DegradationReport",
    "FaultInjector",
    "InjectedFaultError",
    "ResilienceError",
    "ResilientOptimizer",
    "ResilientResult",
    # serving (concurrent optimization service)
    "OptimizationService",
    "OptimizeRequest",
    "OptimizeResponse",
    "AdmissionQueue",
    "RetryPolicy",
    "CircuitBreaker",
    "BreakerBoard",
    "ManualClock",
    "ServiceHealth",
    # workload
    "QueryGenerator",
    "WorkloadSuite",
    "default_suite",
    "generate_query",
    "chain_query",
    "star_query",
    "cycle_query",
    "clique_query",
    "random_acyclic_query",
    "random_cyclic_query",
    # partitioning registry
    "get_partitioning",
    "available_partitionings",
    # stats & errors
    "OptimizationStats",
    "ReproError",
    "GraphError",
    "DisconnectedGraphError",
    "CatalogError",
    "OptimizationError",
    "UnknownAlgorithmError",
    "ServiceError",
    "ServiceOverloadError",
    "ServiceShutdownError",
    "CircuitOpenError",
    "RetriesExhaustedError",
]
