"""Exception hierarchy for the repro library.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "DisconnectedGraphError",
    "CatalogError",
    "OptimizationError",
    "UnknownAlgorithmError",
    "BudgetExceeded",
    "InjectedFaultError",
    "ResilienceError",
    "ServiceError",
    "ServiceOverloadError",
    "ServiceShutdownError",
    "CircuitOpenError",
    "RetriesExhaustedError",
    "TelemetryError",
    "StoreError",
    "StoreCorruptionError",
    "StoreEpochError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for structurally invalid query graphs or vertex sets."""


class DisconnectedGraphError(GraphError):
    """Raised when an operation requires a connected (sub)graph."""


class CatalogError(ReproError):
    """Raised for missing or inconsistent statistics in a catalog."""


class OptimizationError(ReproError):
    """Raised when plan generation fails to produce a complete plan."""


class UnknownAlgorithmError(ReproError, KeyError):
    """Raised when an enumerator or pruning strategy name is not registered."""


class BudgetExceeded(OptimizationError):
    """Raised cooperatively when a :class:`repro.resilience.Budget` runs out.

    ``reason`` names the exhausted dimension (``"deadline"``,
    ``"expansions"`` or ``"memo"``).  The optimizer facade enriches in-flight
    instances with the best complete plan registered so far (``partial_plan``,
    already relabeled into the caller's relation numbering) and the memotable
    size at the point of interruption, so anytime callers can salvage work.
    """

    def __init__(self, reason: str, detail: str = ""):
        message = f"optimization budget exceeded ({reason})"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
        self.reason = reason
        self.detail = detail
        #: Best complete plan for the root at interruption time, if any.
        self.partial_plan = None
        #: All retained complete root plans at interruption time, cheapest
        #: first — the ranked best-so-far stream (``(partial_plan,)`` at
        #: ``k=1``, empty when nothing was registered).
        self.partial_ranked = ()
        #: Memotable entries at interruption time.
        self.memo_entries = 0


class InjectedFaultError(ReproError):
    """Raised by :class:`repro.resilience.FaultInjector` in ``raise`` mode.

    A distinct type so tests and the degradation ladder can tell injected
    failures from organic optimizer bugs.
    """


class ResilienceError(OptimizationError):
    """Raised when every rung of the degradation ladder failed.

    Carries the :class:`repro.resilience.DegradationReport` describing what
    was attempted and why each rung failed.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class ServiceError(ReproError):
    """Base class for errors raised by :mod:`repro.service`."""


class ServiceOverloadError(ServiceError):
    """Raised when the admission queue rejects a request (load shedding).

    Carries the queue state at rejection time so callers (and tests) can
    assert the shedding decision was deterministic: the queue was full,
    with exactly ``queue_depth`` of ``capacity`` slots occupied.
    """

    def __init__(self, queue_depth: int, capacity: int):
        super().__init__(
            f"admission queue full ({queue_depth}/{capacity} requests "
            "queued); request rejected"
        )
        self.queue_depth = queue_depth
        self.capacity = capacity


class ServiceShutdownError(ServiceError):
    """Raised when a request is submitted to (or stranded in) a stopping
    service."""


class CircuitOpenError(ServiceError):
    """Raised when a circuit breaker fast-fails a call to a sick component.

    A *transient* condition: the retry layer backs off and tries again,
    by which time the breaker may have moved to half-open.
    """

    def __init__(self, component: str, retry_after: float):
        super().__init__(
            f"circuit for {component!r} is open; retry in "
            f"{retry_after * 1000:.0f} ms"
        )
        self.component = component
        self.retry_after = retry_after


class RetriesExhaustedError(ServiceError):
    """Raised when every retry attempt failed and no fallback plan exists.

    ``last_error`` preserves the final attempt's failure for diagnosis.
    """

    def __init__(self, attempts: int, last_error=None):
        detail = f": last error: {last_error}" if last_error is not None else ""
        super().__init__(f"all {attempts} attempts failed{detail}")
        self.attempts = attempts
        self.last_error = last_error


class StoreError(ReproError):
    """Raised for durable plan-store failures (write errors, poisoned
    writers, read-only misuse).

    The tiered cache treats every ``StoreError`` as a fail-open signal —
    the request is served from L1/enumeration and only durability is
    lost — so this must never escape :mod:`repro.context.store` callers
    as a request failure.
    """


class StoreCorruptionError(StoreError):
    """Raised when store bytes pass framing but fail to decode.

    Recovery never raises this for on-disk damage (corrupt records are
    quarantined, not propagated); it surfaces only when a CRC-valid
    record is semantically broken — a buggy writer, not a torn disk.
    """


class StoreEpochError(StoreError):
    """Raised when a store's epoch stamp does not match the running
    configuration (cost-model / fingerprint / top-k versioning) — the
    entries are from another world and must not be replayed."""


class TelemetryError(ReproError):
    """Raised for telemetry misuse: bad metric names, type collisions,
    negative counter increments.

    Telemetry must never corrupt an optimization, so these are raised at
    registration/recording time — loudly and early — rather than producing
    a silently wrong exposition.
    """
