"""Exception hierarchy for the repro library.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "DisconnectedGraphError",
    "CatalogError",
    "OptimizationError",
    "UnknownAlgorithmError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for structurally invalid query graphs or vertex sets."""


class DisconnectedGraphError(GraphError):
    """Raised when an operation requires a connected (sub)graph."""


class CatalogError(ReproError):
    """Raised for missing or inconsistent statistics in a catalog."""


class OptimizationError(ReproError):
    """Raised when plan generation fails to produce a complete plan."""


class UnknownAlgorithmError(ReproError, KeyError):
    """Raised when an enumerator or pruning strategy name is not registered."""
