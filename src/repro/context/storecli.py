"""``repro-cache`` — offline tooling for the durable plan store.

Two subcommands:

``repro-cache compact --store-dir DIR``
    Merge the shared ``snapshot.rpl`` (if any) and every
    ``shard-*.rpl`` segment into a fresh snapshot, last-writer-wins per
    key in (snapshot, then segments sorted by name) order.  The new
    snapshot is built in a temp file and renamed into place atomically,
    so shards warming mid-compaction see the old snapshot or the new one,
    never a half-written file.  ``--prune`` truncates the merged segments
    back to empty (header-only) afterwards — only safe while the shards
    are down, which is the whole point of *offline* compaction.

``repro-cache inspect PATH``
    Open a store file read-only (recovery classifies damage but repairs
    nothing) and print its recovery report and keys as JSON.

Every record travels through the same :class:`~repro.context.store.DurableStore`
framing/recovery path the serving tier uses: compaction cannot replay a
record that recovery would quarantine.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Dict, List, Optional

from repro.context.store import (
    DurableStore,
    decode_entry,
    default_store_epoch,
    fsync_directory,
)
from repro.errors import ReproError

__all__ = ["main", "compact_store_dir", "inspect_store"]

SNAPSHOT_NAME = "snapshot.rpl"
SEGMENT_GLOB = "shard-*.rpl"


def compact_store_dir(
    store_dir: str,
    epoch: Optional[str] = None,
    prune: bool = False,
    validate: bool = True,
) -> Dict[str, object]:
    """Merge snapshot + segments into a new snapshot; returns a summary."""
    epoch = epoch if epoch is not None else default_store_epoch()
    snapshot_path = os.path.join(store_dir, SNAPSHOT_NAME)
    segments = sorted(glob.glob(os.path.join(store_dir, SEGMENT_GLOB)))
    sources: List[str] = []
    if os.path.exists(snapshot_path):
        sources.append(snapshot_path)
    sources.extend(segments)

    merged: Dict[str, object] = {}
    reports = []
    for path in sources:
        store = DurableStore(path, epoch=epoch, writable=False)
        reports.append(store.report.as_dict())
        for key, record in store.records.items():
            if validate:
                try:
                    decode_entry(record)
                except ReproError as error:
                    reports[-1].setdefault("undecodable", []).append(
                        {"key": key, "error": str(error)}
                    )
                    continue
            merged[key] = record

    tmp_path = os.path.join(store_dir, f".{SNAPSHOT_NAME}.compacting")
    if os.path.exists(tmp_path):
        os.unlink(tmp_path)
    out = DurableStore(tmp_path, epoch=epoch, writable=True)
    try:
        for key in sorted(merged):
            _, entry = decode_entry(merged[key])
            out.append(key, entry)
    finally:
        out.close()
    os.replace(tmp_path, snapshot_path)
    # Make the rename durable before pruning the data it supersedes.
    fsync_directory(snapshot_path)

    pruned = []
    if prune:
        for path in segments:
            # Reset each merged segment to an empty (header-only) log so
            # its shard restarts with a clean single-writer file; the
            # entries now live in the snapshot.
            os.unlink(path)
            DurableStore(path, epoch=epoch, writable=True).close()
            pruned.append(path)

    return {
        "store_dir": store_dir,
        "snapshot": snapshot_path,
        "epoch": epoch,
        "sources": sources,
        "entries": len(merged),
        "pruned_segments": pruned,
        "recovery": reports,
    }


def inspect_store(path: str, epoch: Optional[str] = None) -> Dict[str, object]:
    """Recovery report + keys for one store file (read-only)."""
    store = DurableStore(path, epoch=epoch, writable=False)
    undecodable = []
    for key, record in sorted(store.records.items()):
        try:
            decode_entry(record)
        except ReproError as error:
            undecodable.append({"key": key, "error": str(error)})
    return {
        "path": path,
        "recovery": store.report.as_dict(),
        "entries": len(store.records),
        "keys": sorted(store.records),
        "undecodable": undecodable,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-cache",
        description="offline durable plan-store tooling (compact / inspect)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compact = sub.add_parser(
        "compact",
        help="merge snapshot + shard segments into a fresh snapshot",
    )
    compact.add_argument("--store-dir", required=True)
    compact.add_argument(
        "--epoch",
        default=None,
        help="expected store epoch (default: the running build's epoch)",
    )
    compact.add_argument(
        "--prune",
        action="store_true",
        help="reset merged segments to empty logs (shards must be down)",
    )

    inspect = sub.add_parser("inspect", help="recovery report for one store file")
    inspect.add_argument("path")
    inspect.add_argument("--epoch", default=None)

    args = parser.parse_args(argv)
    if args.command == "compact":
        summary = compact_store_dir(
            args.store_dir, epoch=args.epoch, prune=args.prune
        )
    else:
        summary = inspect_store(args.path, epoch=args.epoch)
    try:
        print(json.dumps(summary, indent=2, sort_keys=True))
    except BrokenPipeError:
        # `repro-cache inspect big.rpl | head` closes stdout early; the
        # work (compaction!) already happened, so exit clean, not with a
        # traceback.
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
