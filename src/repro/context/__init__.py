"""Shared optimization substrate: per-query context + cross-query cache.

:class:`OptimizationContext` owns the statistics provider, the bound cost
model, the plan builder, the run counters and the budget for one query;
every enumerator, baseline, heuristic rung and facade layer runs on a
context instead of wiring its own copies.  :class:`PlanCache` sits above
the contexts: a canonical :func:`fingerprint` keys an LRU of optimized
plans, so repeated (or isomorphic) queries skip enumeration entirely.
"""

from repro.context.context import OptimizationContext, statistics_for
from repro.context.fingerprint import (
    QUANT_STEPS,
    QueryFingerprint,
    canonical_mapping,
    fingerprint,
    quantize,
)
from repro.context.plancache import (
    DEFAULT_CACHE_CAPACITY,
    CachedPlan,
    PlanCache,
    replay_plan,
)
from repro.context.store import (
    AdmissionPolicy,
    DurableStore,
    RecoveryReport,
    TieredPlanCache,
    atomic_write_text,
    default_store_epoch,
)

__all__ = [
    "OptimizationContext",
    "statistics_for",
    "QueryFingerprint",
    "fingerprint",
    "canonical_mapping",
    "quantize",
    "QUANT_STEPS",
    "PlanCache",
    "CachedPlan",
    "replay_plan",
    "DEFAULT_CACHE_CAPACITY",
    "AdmissionPolicy",
    "DurableStore",
    "RecoveryReport",
    "TieredPlanCache",
    "atomic_write_text",
    "default_store_epoch",
]
