"""The durable L2 plan store and the tiered cache built on it.

The in-process :class:`~repro.context.plancache.PlanCache` (L1) dies with
its process; :class:`DurableStore` is the crash-safe L2 beneath it — an
append-only record log holding one record per ``sig|k{k}|fp`` cache entry.
Crash safety is *by construction*, not by protocol:

* every record is framed as ``u32 length | u32 crc32(payload) | payload``
  (little-endian), so a reader never has to trust anything but arithmetic;
* the first record is a header carrying the **store epoch** — a string
  derived from the cost-model version, the fingerprint scheme (WL rounds +
  quantization steps) and the top-k key semantics.  A log written under a
  different epoch is never replayed: replaying a plan priced by an old
  cost model, or keyed by an incompatible fingerprint, would be silently
  wrong in exactly the way CRCs cannot catch;
* appends go through one fsync-disciplined path (:meth:`DurableStore.append`);
  a failed append *poisons* the writer — the in-file tail may be torn, so
  the only honest continuation is to stop appending and let the next
  open repair the file.

**Open-time recovery** scans the log front to back and keeps the longest
valid prefix: a short frame or a length running past EOF is a *torn tail*
(the crash the log is designed for) and is truncated away; a CRC or JSON
mismatch is *corruption* — the record's bytes are quarantined to a
``<path>.quarantine`` sidecar (never replayed, never silently dropped)
and the file is truncated back to the last good record.  Either way the
store reopens writable with every surviving entry warm.

:class:`TieredPlanCache` stitches the tiers together: L1 stays the plain
LRU; misses consult the recovered warm map (decode + promote to L1);
puts admit to L2 by *cold-work provenance* (:class:`AdmissionPolicy`) so
the log holds plans that were expensive to compute, not every lookup.
Every L2 interaction is guarded by a dedicated circuit breaker and fails
open to L1-only behaviour — an injected or organic store fault may cost
durability, never a wrong plan and never an optimization failure.

Sharded layout (single-writer discipline): each shard appends to its own
``shard-<id>.rpl`` segment and warms from a shared read-only
``snapshot.rpl`` plus its own recovered segment; the offline
``repro-cache compact`` tool (:mod:`repro.context.storecli`) merges
segments into a fresh snapshot.  No file ever has two writers.

:func:`atomic_write_text` is the repo-wide fsync-disciplined helper for
whole-file artifacts (reports, JSON exports); the ``durable-write`` lint
rule points writers here.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.context.fingerprint import QUANT_STEPS
from repro.context.plancache import (
    DEFAULT_CACHE_CAPACITY,
    CachedPlan,
    PlanCache,
)
from repro.errors import (
    ReproError,
    StoreCorruptionError,
    StoreEpochError,
    StoreError,
)
from repro.plans.join_tree import JoinNode, JoinTree, LeafNode

__all__ = [
    "STORE_MAGIC",
    "RECORD_FORMAT_VERSION",
    "default_store_epoch",
    "encode_plan",
    "decode_plan",
    "encode_entry",
    "decode_entry",
    "RecoveryReport",
    "DurableStore",
    "AdmissionPolicy",
    "TieredPlanCache",
    "atomic_write_text",
    "fsync_directory",
]

#: First bytes of every store file; anything else is not a plan log.
STORE_MAGIC = b"RPLG"

#: Bump when the record framing or payload schema changes shape.
RECORD_FORMAT_VERSION = 1

#: ``u32 payload length | u32 crc32(payload)``, little-endian.
_FRAME = struct.Struct("<II")

#: Sanity bound on a single record; a length field beyond this is treated
#: as tail garbage, not as an instruction to allocate gigabytes.
_MAX_RECORD_BYTES = 64 * 1024 * 1024


def default_store_epoch(cost_model_version: str = "haas-v1") -> str:
    """The epoch string new stores are stamped with.

    Every component that could make an old entry *silently wrong* for a
    new reader is folded in: the record schema, the fingerprint scheme
    (WL refinement + ``QUANT_STEPS`` quantization — a different scheme
    changes which queries share a key), the top-k key semantics from the
    ranked-entry work, and the cost-model version (stored trees replay
    through the live cost model, but admission provenance and ranked
    lists are priced under the writer's model).
    """
    return (
        f"record:v{RECORD_FORMAT_VERSION}"
        f"|fp:wl-q{QUANT_STEPS}"
        f"|topk:v1"
        f"|cost:{cost_model_version}"
    )


# ---------------------------------------------------------------------------
# plan (de)serialization — bit-exact via float hex round-trips
# ---------------------------------------------------------------------------


def encode_plan(tree: JoinTree) -> list:
    """Nested-list encoding of a join tree with bit-exact floats.

    Floats travel as ``float.hex()`` strings so a decode → re-encode round
    trip is the identity: the warm-hit bit-identity guarantee starts here.
    """
    if isinstance(tree, LeafNode):
        return ["L", tree.relation, float(tree.cardinality).hex(), tree.name]
    if isinstance(tree, JoinNode):
        return [
            "J",
            encode_plan(tree.left),
            encode_plan(tree.right),
            float(tree.cardinality).hex(),
            float(tree.operator_cost).hex(),
        ]
    raise StoreError(f"cannot encode join-tree node {type(tree).__name__}")


def decode_plan(obj: object) -> JoinTree:
    """Inverse of :func:`encode_plan`; raises :class:`StoreCorruptionError`
    on any structural surprise (a CRC-valid record can still be from a
    buggy writer — never let it crash the reader with a ``TypeError``)."""
    try:
        tag = obj[0]  # type: ignore[index]
        if tag == "L":
            _, relation, cardinality, name = obj  # type: ignore[misc]
            return LeafNode(int(relation), float.fromhex(cardinality), str(name))
        if tag == "J":
            _, left, right, cardinality, operator_cost = obj  # type: ignore[misc]
            return JoinNode(
                decode_plan(left),
                decode_plan(right),
                float.fromhex(cardinality),
                float.fromhex(operator_cost),
            )
    except StoreCorruptionError:
        raise
    except Exception as error:
        raise StoreCorruptionError(f"malformed plan encoding: {error}") from error
    raise StoreCorruptionError(f"unknown plan node tag {obj!r:.40}")


def encode_entry(key: str, entry: CachedPlan) -> Dict[str, object]:
    """Record payload for one cache entry (canonical numbering throughout)."""
    return {
        "key": key,
        "payload": entry.payload,
        "plan": encode_plan(entry.canonical_plan),
        "ranked": [encode_plan(tree) for tree in entry.canonical_ranked],
        "cold_seconds": float(entry.cold_seconds).hex(),
        "expansions": int(entry.expansions),
    }


def decode_entry(record: Dict[str, object]) -> Tuple[str, CachedPlan]:
    """Rebuild ``(key, CachedPlan)`` from a record payload."""
    try:
        key = record["key"]
        payload = record["payload"]
        ranked = record.get("ranked", ())
        cold = float.fromhex(record.get("cold_seconds", "0x0.0p+0"))
        expansions = int(record.get("expansions", 0))
    except Exception as error:
        raise StoreCorruptionError(f"malformed store record: {error}") from error
    if not isinstance(key, str) or not isinstance(payload, str):
        raise StoreCorruptionError("store record key/payload must be strings")
    plan = decode_plan(record.get("plan"))
    canonical_ranked = tuple(decode_plan(item) for item in ranked)
    return key, CachedPlan(
        plan,
        payload,
        canonical_ranked,
        cold_seconds=cold,
        expansions=expansions,
    )


# ---------------------------------------------------------------------------
# fsync-disciplined write helpers
# ---------------------------------------------------------------------------


def fsync_directory(path: str) -> None:
    """fsync the directory holding ``path`` so a rename/create is durable.

    Best-effort: some filesystems refuse ``O_DIRECTORY`` opens; losing the
    directory sync degrades durability of the *name*, never correctness.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:  # repro: disable=no-silent-fallback
        pass  # directory fsync unsupported here; file data is still synced
    finally:
        os.close(fd)


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically and durably.

    The fsync-disciplined whole-file writer the ``durable-write`` lint
    rule demands: data goes to a same-directory temp file, is fsynced,
    and is renamed over the target, so readers see the old contents or
    the new contents — never a torn mix — and a crash straight after
    return cannot lose the write.
    """
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    data = text.encode(encoding)
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:  # repro: disable=no-silent-fallback
            pass  # temp already gone; the original target is untouched
        raise
    fsync_directory(path)


# ---------------------------------------------------------------------------
# the record log
# ---------------------------------------------------------------------------


@dataclass
class RecoveryReport:
    """What one open-time recovery scan found and did."""

    path: str
    #: Entries replayed from the valid prefix (last-wins per key).
    entries_replayed: int = 0
    #: Distinct keys among the replayed entries.
    keys_recovered: int = 0
    #: Records whose CRC or payload failed — preserved in the sidecar.
    quarantined_records: int = 0
    #: True when a partial frame / short payload was truncated away.
    torn_tail: bool = False
    #: True when the header epoch (or magic/header itself) mismatched and
    #: the whole log was set aside rather than replayed.
    stale_epoch: bool = False
    #: Bytes removed from the tail by repair (0 for read-only opens).
    truncated_bytes: int = 0
    #: True when the file did not exist and was freshly created.
    created: bool = False
    #: Recovery wall time (diagnostics only; never part of any decision).
    elapsed_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "entries_replayed": self.entries_replayed,
            "keys_recovered": self.keys_recovered,
            "quarantined_records": self.quarantined_records,
            "torn_tail": self.torn_tail,
            "stale_epoch": self.stale_epoch,
            "truncated_bytes": self.truncated_bytes,
            "created": self.created,
            "elapsed_seconds": self.elapsed_seconds,
        }


class DurableStore:
    """An append-only, CRC-framed, epoch-stamped record log.

    Opening *is* recovery: the constructor scans the existing file,
    truncates a torn tail, quarantines corrupt records, and leaves
    ``self.records`` holding the surviving entries (last-wins per key).

    Parameters
    ----------
    path:
        The log file.  Created (with a fresh header) when missing and
        ``writable``.
    epoch:
        Expected store epoch; a file stamped otherwise is quarantined
        whole and re-created rather than replayed.  Defaults to
        :func:`default_store_epoch`.
    writable:
        ``False`` opens read-only (shared snapshots): recovery still
        classifies damage but repairs nothing on disk and ``append``
        refuses to run.
    fault_injector:
        Optional seeded store-fault source (duck-typed:
        ``wrap_handle(file)`` and ``epoch_fires()`` — see
        :class:`repro.resilience.faults.StoreFaultInjector`).  Wraps only
        the *writer* handle: recovery must stay an honest reader.
    fsync:
        Disable only in tests that measure something other than
        durability; the default is the point of the class.
    """

    def __init__(
        self,
        path: str,
        epoch: Optional[str] = None,
        writable: bool = True,
        fault_injector=None,
        fsync: bool = True,
    ):
        self.path = os.fspath(path)
        self.epoch = epoch if epoch is not None else default_store_epoch()
        self.writable = writable
        self.fsync = fsync
        self._faults = fault_injector
        self._lock = threading.Lock()
        self._handle = None
        self._failed = False
        self.appended = 0
        self.append_errors = 0
        #: key -> decoded record payload dict, last-wins, valid prefix only.
        self.records: "Dict[str, Dict[str, object]]" = {}
        self.report = self._recover()

    # -- recovery -------------------------------------------------------

    def _recover(self) -> RecoveryReport:
        started = time.perf_counter()
        report = RecoveryReport(path=self.path)
        exists = os.path.exists(self.path)
        if not exists:
            if self.writable:
                self._create_fresh()
                report.created = True
            report.elapsed_seconds = time.perf_counter() - started
            self._open_writer()
            return report

        with open(self.path, "rb") as handle:  # repro: disable=durable-write
            data = handle.read()

        good_end, stale = self._scan(data, report)
        if stale:
            # Wrong magic, unreadable header, or a mismatched epoch: the
            # whole file is from another world.  Set it aside untouched
            # (operators can inspect or re-epoch it) and start fresh.
            report.stale_epoch = True
            # Recovery runs from __init__, before any other thread
            # can hold a reference to this store.
            self.records.clear()  # repro: unguarded-ok
            if self.writable:
                os.replace(self.path, f"{self.path}.stale")
                fsync_directory(self.path)
                self._create_fresh()
        elif good_end < len(data) and self.writable:
            report.truncated_bytes = len(data) - good_end
            with open(self.path, "r+b") as handle:  # repro: disable=durable-write
                handle.truncate(good_end)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
        elif good_end < len(data):
            report.truncated_bytes = len(data) - good_end

        report.entries_replayed = self._replayed
        report.keys_recovered = len(self.records)  # repro: unguarded-ok
        report.elapsed_seconds = time.perf_counter() - started
        self._open_writer()
        return report

    def _scan(self, data: bytes, report: RecoveryReport) -> Tuple[int, bool]:
        """Walk the frames; returns (end of valid prefix, stale flag)."""
        self._replayed = 0
        if not data.startswith(STORE_MAGIC):
            return 0, True
        offset = len(STORE_MAGIC)
        header, end = self._read_frame(data, offset)
        if header is None:
            # A file so torn its header never made it to disk carries no
            # epoch promise at all; treat as stale rather than guessing.
            return 0, True
        try:
            meta = json.loads(header)
        except ValueError:
            return 0, True
        if not isinstance(meta, dict) or meta.get("epoch") != self.epoch:
            return 0, True
        offset = end
        while offset < len(data):
            payload, end = self._read_frame(data, offset)
            if payload is None:
                if end < 0:
                    # CRC mismatch: corruption inside the frame.  Preserve
                    # the bytes, then keep only the prefix before it —
                    # anything after an acknowledged-corrupt region is
                    # unordered rubble as far as replay trust goes.
                    self._quarantine(data[offset:], offset, "crc-mismatch")
                    report.quarantined_records += 1
                else:
                    report.torn_tail = True
                return offset, False
            try:
                record = json.loads(payload)
                if not isinstance(record, dict):
                    raise ValueError("record payload is not an object")
                key = record["key"]
                if not isinstance(key, str):
                    raise ValueError("record key is not a string")
            except (ValueError, KeyError) as error:
                # CRC-valid but semantically broken: a buggy or hostile
                # writer, not a torn disk.  Same quarantine discipline.
                self._quarantine(
                    data[offset:end], offset, f"bad-payload: {error}"
                )
                report.quarantined_records += 1
                return offset, False
            self.records[key] = record  # repro: unguarded-ok
            self._replayed += 1
            offset = end
        return offset, False

    @staticmethod
    def _read_frame(data: bytes, offset: int) -> Tuple[Optional[bytes], int]:
        """One frame at ``offset``.

        Returns ``(payload, next_offset)``; ``(None, next_offset)`` for a
        torn tail (short frame/payload or absurd length) and ``(None, -1)``
        for a CRC mismatch.
        """
        if offset + _FRAME.size > len(data):
            return None, len(data)
        length, crc = _FRAME.unpack_from(data, offset)
        if length > _MAX_RECORD_BYTES:
            return None, len(data)
        start = offset + _FRAME.size
        if start + length > len(data):
            return None, len(data)
        payload = data[start : start + length]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            return None, -1
        return payload, start + length

    def _quarantine(self, blob: bytes, offset: int, reason: str) -> None:
        """Preserve rejected bytes in the sidecar; never replay them."""
        line = json.dumps(
            {"offset": offset, "reason": reason, "hex": blob.hex()},
            sort_keys=True,
        )
        # Plain append: the sidecar is evidence, not state — a torn
        # sidecar line loses forensics, never correctness.
        with open(f"{self.path}.quarantine", "a", encoding="utf-8") as handle:  # repro: disable=durable-write
            handle.write(line + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    def _create_fresh(self) -> None:
        header = json.dumps(
            {
                "store": "repro-plan-store",
                "version": RECORD_FORMAT_VERSION,
                "epoch": self.epoch,
            },
            sort_keys=True,
        ).encode("utf-8")
        frame = _FRAME.pack(len(header), zlib.crc32(header) & 0xFFFFFFFF)
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(STORE_MAGIC + frame + header)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
        except BaseException:
            raise
        fsync_directory(self.path)

    def _open_writer(self) -> None:
        if not self.writable:
            return
        handle = open(self.path, "ab")  # repro: disable=durable-write
        if self._faults is not None:
            handle = self._faults.wrap_handle(handle)
        self._handle = handle  # repro: unguarded-ok

    # -- appends --------------------------------------------------------

    def append(self, key: str, entry: CachedPlan) -> None:
        """Durably append one entry; raises :class:`StoreError` on failure.

        A failed append poisons the store: the on-disk tail may be torn,
        so further appends are refused until the next open repairs the
        file.  Callers (the tiered cache) treat every failure as a
        fail-open signal, never as fatal.
        """
        payload = json.dumps(
            encode_entry(key, entry), sort_keys=True
        ).encode("utf-8")
        frame = _FRAME.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
        with self._lock:
            if not self.writable:
                raise StoreError(f"store {self.path} is read-only")
            if self._failed or self._handle is None:
                raise StoreError(
                    f"store {self.path} is poisoned by an earlier failed "
                    "append; reopen to repair"
                )
            if self._faults is not None and self._faults.epoch_fires():
                self._failed = True
                self.append_errors += 1
                raise StoreEpochError(
                    f"[injected] store {self.path} epoch went stale "
                    "under the writer"
                )
            try:
                self._handle.write(frame + payload)
                self._handle.flush()
                if self.fsync:
                    os.fsync(self._handle.fileno())
            except Exception as error:
                self._failed = True
                self.append_errors += 1
                raise StoreError(
                    f"append to {self.path} failed: {error}"
                ) from error
            self.appended += 1
            self.records[key] = json.loads(payload.decode("utf-8"))

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:  # repro: disable=no-silent-fallback
                    pass  # close-time flush of a poisoned handle; repaired at next open
                self._handle = None

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    @property
    def poisoned(self) -> bool:
        with self._lock:
            return self._failed

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "path": self.path,
                "epoch": self.epoch,
                "writable": self.writable,
                "entries": len(self.records),
                "appended": self.appended,
                "append_errors": self.append_errors,
                "poisoned": self._failed,
                "recovery": self.report.as_dict(),
            }

    def __repr__(self) -> str:
        state = "poisoned" if self._failed else "ok"  # repro: unguarded-ok
        return (
            f"DurableStore({self.path!r}, entries={len(self.records)}, "  # repro: unguarded-ok
            f"{state})"
        )


# ---------------------------------------------------------------------------
# admission + the tiered cache
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AdmissionPolicy:
    """Cost-aware L2 admission: persist only work worth re-losing a crash over.

    An entry is admitted when its cold run met *both* thresholds; the
    defaults admit everything.  ``min_expansions`` is the deterministic
    lever (ccp expansions enumerated cold — identical across runs and
    machines); ``min_cold_seconds`` is the operator-facing one.
    """

    min_cold_seconds: float = 0.0
    min_expansions: int = 0

    def admits(self, entry: CachedPlan) -> bool:
        return (
            entry.cold_seconds >= self.min_cold_seconds
            and entry.expansions >= self.min_expansions
        )


class _StoreBreaker:
    """A small dedicated circuit breaker for the L2 store.

    Deliberately self-contained (the service-tier breaker lives above
    this package and importing it here would cycle): ``failure_threshold``
    consecutive failures open the circuit for ``cooldown_seconds``; after
    the cooldown one probe is allowed through, and a success closes it.
    While open, the tiered cache simply behaves as L1-only.
    """

    __slots__ = (
        "failure_threshold",
        "cooldown_seconds",
        "_clock",
        "_lock",
        "_failures",
        "_opened_at",
        "_state",
        "opens",
    )

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_seconds: float = 1.0,
        clock=time.monotonic,
    ):
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at = 0.0
        self._state = "closed"
        self.opens = 0

    def allow(self) -> bool:
        with self._lock:
            if self._state == "closed":
                return True
            if self._clock() - self._opened_at >= self.cooldown_seconds:
                self._state = "half_open"
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = "closed"

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == "half_open" or self._failures >= self.failure_threshold:
                if self._state != "open":
                    self.opens += 1
                self._state = "open"
                self._opened_at = self._clock()

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "opens": self.opens,
                "failure_threshold": self.failure_threshold,
                "cooldown_seconds": self.cooldown_seconds,
            }


class TieredPlanCache(PlanCache):
    """L1 LRU + durable L2, fail-open by construction.

    Drop-in for :class:`PlanCache` everywhere (optimizer, service,
    shards): ``get``/``put`` keep their signatures, and every L2 fault —
    injected or organic — degrades the instance to exactly the L1
    behaviour the rest of the stack was already tested against.

    Use :meth:`open` to build one from a segment path (+ optional shared
    snapshots); the plain constructor accepts an already-opened store.
    """

    __slots__ = (
        "_store",
        "_warm",
        "_warm_lock",
        "_persisted",
        "_admission",
        "_breaker",
        "_telemetry",
        "l2_hits",
        "l2_misses",
        "store_errors",
        "fail_open_skips",
        "admission_skips",
        "decode_errors",
    )

    def __init__(
        self,
        capacity: int = DEFAULT_CACHE_CAPACITY,
        store: Optional[DurableStore] = None,
        warm_records: Optional[Dict[str, Dict[str, object]]] = None,
        admission: Optional[AdmissionPolicy] = None,
        breaker: Optional[_StoreBreaker] = None,
        telemetry=None,
    ):
        super().__init__(capacity)
        self._store = store
        self._warm: Dict[str, Dict[str, object]] = dict(warm_records or {})
        if store is not None:
            self._warm.update(store.records)
        self._warm_lock = threading.Lock()
        self._persisted = set(self._warm)
        self._admission = admission if admission is not None else AdmissionPolicy()
        self._breaker = breaker if breaker is not None else _StoreBreaker()
        self._telemetry = telemetry
        self.l2_hits = 0
        self.l2_misses = 0
        self.store_errors = 0
        self.fail_open_skips = 0
        self.admission_skips = 0
        self.decode_errors = 0
        if telemetry is not None:
            telemetry.registry.counter(
                "repro_cache_store_warm_entries_total",
                "entries recovered warm from the durable store at open",
            ).inc(len(self._warm))

    # -- construction ---------------------------------------------------

    @classmethod
    def open(
        cls,
        path: str,
        capacity: int = DEFAULT_CACHE_CAPACITY,
        epoch: Optional[str] = None,
        snapshot_paths: Sequence[str] = (),
        admission: Optional[AdmissionPolicy] = None,
        fault_injector=None,
        telemetry=None,
        breaker_failure_threshold: int = 3,
        breaker_cooldown_seconds: float = 1.0,
        fsync: bool = True,
    ) -> "TieredPlanCache":
        """Open (recovering) a writable segment plus read-only snapshots.

        Missing snapshots are skipped; a snapshot or segment that cannot
        be opened at all degrades this instance to fewer warm entries or
        to L1-only — opening *never* raises for store-side reasons.
        """
        warm: Dict[str, Dict[str, object]] = {}
        breaker = _StoreBreaker(
            failure_threshold=breaker_failure_threshold,
            cooldown_seconds=breaker_cooldown_seconds,
        )
        for snapshot_path in snapshot_paths:
            if not os.path.exists(snapshot_path):
                continue
            try:
                snapshot = DurableStore(
                    snapshot_path, epoch=epoch, writable=False, fsync=fsync
                )
                warm.update(snapshot.records)
                if telemetry is not None:
                    telemetry.event(
                        "store_snapshot_warmed", **snapshot.report.as_dict()
                    )
            except (ReproError, OSError, ValueError):
                breaker.record_failure()
        store: Optional[DurableStore] = None
        try:
            store = DurableStore(
                path,
                epoch=epoch,
                writable=True,
                fault_injector=fault_injector,
                fsync=fsync,
            )
            if telemetry is not None:
                with telemetry.span("store_open", path=path) as span:
                    span.set(**store.report.as_dict())
        except (ReproError, OSError, ValueError):
            # Fail open: no durable tier, but serving is unaffected.
            breaker.record_failure()
            if telemetry is not None:
                telemetry.registry.counter(
                    "repro_cache_store_errors_total",
                    "durable-store operations that failed (failed open)",
                ).inc()
        cache = cls(
            capacity,
            store=store,
            warm_records=warm,
            admission=admission,
            breaker=breaker,
            telemetry=telemetry,
        )
        if store is None:
            cache.store_errors += 1
        return cache

    # -- metrics helpers ------------------------------------------------

    def _count(self, name: str, help_text: str, amount: int = 1) -> None:
        if self._telemetry is not None:
            self._telemetry.registry.counter(
                f"repro_cache_store_{name}", help_text
            ).inc(amount)

    # -- tiered get/put -------------------------------------------------

    def get(self, key: str) -> Optional[CachedPlan]:
        entry = super().get(key)
        if entry is not None:
            return entry
        with self._warm_lock:
            record = self._warm.get(key)
        if record is None:
            with self._warm_lock:
                self.l2_misses += 1
            return None
        try:
            _, cached = decode_entry(record)
        except (ReproError, OSError) as error:
            # A record that survived the CRC but will not decode: drop it
            # from the warm map (it can never serve) and fail open.
            with self._warm_lock:
                self._warm.pop(key, None)
                self.decode_errors += 1
                self.l2_misses += 1
            self._breaker.record_failure()
            self._count(
                "decode_errors_total",
                "warm records that failed to decode (dropped, failed open)",
            )
            if self._telemetry is not None:
                self._telemetry.event(
                    "store_decode_error", key=key, error=str(error)
                )
            return None
        super().put(key, cached)
        with self._warm_lock:
            self.l2_hits += 1
        self._count("l2_hits_total", "plan-cache hits served from the durable tier")
        return cached.clone()

    def put(self, key: str, entry: CachedPlan) -> None:
        super().put(key, entry)
        if self._store is None:
            return
        if not self._admission.admits(entry):
            with self._warm_lock:
                self.admission_skips += 1
            self._count(
                "admission_skips_total",
                "entries kept L1-only by the admission policy",
            )
            return
        with self._warm_lock:
            if key in self._persisted:
                return
        if not self._breaker.allow():
            with self._warm_lock:
                self.fail_open_skips += 1
            self._count(
                "fail_open_total",
                "L2 writes skipped while the store breaker was open",
            )
            return
        try:
            self._store.append(key, entry)
        except (ReproError, OSError) as error:
            with self._warm_lock:
                self.store_errors += 1
            self._breaker.record_failure()
            self._count(
                "errors_total",
                "durable-store operations that failed (failed open)",
            )
            if self._telemetry is not None:
                self._telemetry.event(
                    "store_append_failed", key=key, error=str(error)
                )
            return
        self._breaker.record_success()
        with self._warm_lock:
            self._persisted.add(key)
            self._warm[key] = self._store.records[key]
        self._count("appends_total", "entries durably appended to the L2 store")

    # -- lifecycle / introspection --------------------------------------

    @property
    def store(self) -> Optional[DurableStore]:
        return self._store

    @property
    def breaker_state(self) -> str:
        return self._breaker.state

    def warm_keys(self) -> List[str]:
        with self._warm_lock:
            return sorted(self._warm)

    def close(self) -> None:
        if self._store is not None:
            self._store.close()

    def snapshot(self) -> Dict[str, object]:
        base = super().snapshot()
        with self._warm_lock:
            base["l2"] = {
                "warm_entries": len(self._warm),
                "hits": self.l2_hits,
                "misses": self.l2_misses,
                "store_errors": self.store_errors,
                "fail_open_skips": self.fail_open_skips,
                "admission_skips": self.admission_skips,
                "decode_errors": self.decode_errors,
                "breaker": self._breaker.snapshot(),
                "store": (
                    self._store.snapshot() if self._store is not None else None
                ),
            }
        return base
