"""The cross-query plan cache.

An LRU of optimized plans keyed by ``(query fingerprint, algorithm
configuration)``.  Entries store the winning join tree **in canonical
vertex numbering** (the fingerprint's relabeling), so a hit can serve any
query isomorphic to the one that populated the entry: :func:`replay_plan`
translates the canonical tree back into the requesting query's numbering
and *re-prices* it through the requesting context's builder.  Replaying
instead of returning the stored tree verbatim keeps two contracts:

* cardinalities and costs on the returned tree come from the requesting
  query's own statistics (quantization admits hits across queries whose
  estimates differ by less than one bucket — the stored numbers would be
  subtly wrong for them, and
  :func:`repro.plans.validation.validate_plan` would rightly reject them);
* for an exact repeat of the same query the replay reproduces the original
  floats bit for bit (same provider arithmetic, same summation order), so
  a warm cache is observationally identical to a cold run — just without
  the exponential enumeration.

The cache is a plain in-process structure with hit/miss/eviction counters;
one instance is typically shared across every
:class:`~repro.core.optimizer.Optimizer` serving a workload.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Sequence

from repro.graph.renumber import invert_mapping
from repro.plans.join_tree import JoinTree, LeafNode

__all__ = ["CachedPlan", "PlanCache", "replay_plan", "DEFAULT_CACHE_CAPACITY"]

#: Default LRU capacity; a cached entry is one join tree (n-1 nodes), so
#: even thousands of entries are cheap next to a single enumeration.
DEFAULT_CACHE_CAPACITY = 512


class CachedPlan:
    """One cache entry: a canonical-numbered optimal tree plus provenance."""

    __slots__ = (
        "canonical_plan",
        "canonical_cost",
        "payload",
        "canonical_ranked",
        "cold_seconds",
        "expansions",
    )

    def __init__(
        self,
        canonical_plan: JoinTree,
        payload: str,
        canonical_ranked: Sequence[JoinTree] = (),
        cold_seconds: float = 0.0,
        expansions: int = 0,
    ):
        self.canonical_plan = canonical_plan
        self.canonical_cost = canonical_plan.cost
        #: The fingerprint payload that keyed this entry (diagnostics).
        self.payload = payload
        #: Canonical-numbered top-k list (rank 1 first) for ranked entries;
        #: empty for single-best entries.  Replayed plan by plan on a hit.
        self.canonical_ranked = tuple(canonical_ranked)
        #: Cold-run provenance: wall time and ccp expansions the original
        #: optimization spent.  Diagnostics and L2 admission only — never
        #: part of any plan decision (the durable tier's
        #: :class:`~repro.context.store.AdmissionPolicy` reads them to
        #: decide whether the entry is worth persisting).
        self.cold_seconds = cold_seconds
        self.expansions = expansions

    def clone(self) -> "CachedPlan":
        """A deep, independent copy (identity relabel of every tree).

        :meth:`PlanCache.get` hands these out so no caller can mutate the
        entry shared by every other thread behind its back.
        """
        indices = self.canonical_plan.relation_indices()
        for tree in self.canonical_ranked:
            indices.extend(tree.relation_indices())
        identity = range(max(indices) + 1)
        return CachedPlan(
            self.canonical_plan.relabel(identity),
            self.payload,
            tuple(tree.relabel(identity) for tree in self.canonical_ranked),
            cold_seconds=self.cold_seconds,
            expansions=self.expansions,
        )

    def __repr__(self) -> str:
        return (
            f"CachedPlan(cost={self.canonical_cost:.6g}, "
            f"set={self.canonical_plan.vertex_set:#x})"
        )


class PlanCache:
    """Thread-safe LRU plan cache with hit / miss / eviction accounting.

    One instance is shared by every optimizer (and, since the optimization
    service arrived, every worker thread) serving a workload, so every
    read-modify-write — the LRU reordering inside :meth:`get`, the
    insert-then-evict inside :meth:`put`, and the counters both maintain —
    happens under a single internal lock.  The critical sections are a few
    dict operations; contention is negligible next to even one replayed
    plan.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently used entry is evicted
        when a ``put`` would exceed it.  ``capacity <= 0`` disables storage
        entirely (every lookup misses) without disturbing callers.
    """

    __slots__ = ("_capacity", "_entries", "_lock", "hits", "misses", "evictions")

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY):
        self._capacity = capacity
        self._entries: "OrderedDict[str, CachedPlan]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str) -> Optional[CachedPlan]:
        """Look up ``key``; counts the hit/miss and refreshes recency.

        Returns a *defensive copy* of the entry, never the live object:
        the cache is shared by every worker thread, and a caller mutating
        the returned trees (or holding them across an eviction) must not
        be able to poison what the next hit replays.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        # Clone outside the lock: the copy walks the whole tree, and the
        # snapshot taken under the lock is already consistent.
        return entry.clone()

    def put(self, key: str, entry: CachedPlan) -> None:
        """Insert/refresh ``key``, evicting the LRU entry beyond capacity."""
        if self._capacity <= 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = entry
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop all entries; counters are preserved (they tell a story)."""
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Hits / lookups, 0.0 before the first lookup.

        Deliberately lock-free: :meth:`snapshot` reads it while already
        holding the (non-reentrant) lock, and a momentarily stale ratio is
        harmless in the reports that consume it.
        """
        lookups = self.hits + self.misses  # repro: unguarded-ok
        return self.hits / lookups if lookups else 0.0  # repro: unguarded-ok

    def snapshot(self) -> Dict[str, object]:
        """Counter summary for JSON reports and benchmark artifacts."""
        with self._lock:
            return {
                "capacity": self._capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hit_rate,
            }

    def __repr__(self) -> str:
        # Diagnostic repr: best-effort lock-free reads so it stays usable
        # from debuggers and log statements even when the cache is busy.
        return (
            f"PlanCache(entries={len(self._entries)}/{self._capacity}, "  # repro: unguarded-ok
            f"hits={self.hits}, misses={self.misses}, "  # repro: unguarded-ok
            f"evictions={self.evictions})"  # repro: unguarded-ok
        )


def replay_plan(canonical_plan: JoinTree, mapping: Sequence[int], context) -> JoinTree:
    """Rebuild a canonical-numbered cached tree for ``context.query``.

    ``mapping`` is the requesting query's fingerprint relabeling
    (``mapping[original] = canonical``); leaves are rebuilt from the
    requesting catalog and joins re-priced through the context's builder,
    so every number on the returned tree is native to the requesting
    query.
    """
    inverse = invert_mapping(mapping)
    builder = context.builder
    query = context.query

    def rebuild(node: JoinTree) -> JoinTree:
        if isinstance(node, LeafNode):
            return builder.leaf(query, inverse[node.relation])
        return builder.create_tree(rebuild(node.left), rebuild(node.right))

    return rebuild(canonical_plan)
