"""Canonical query fingerprints — the cross-query plan-cache key.

Two queries that are the *same optimization problem* must map to the same
key even when their relations are numbered differently: a chain
``R0-R1-R2`` and the same chain entering as ``R2-R0-R1`` should share one
cache entry.  The fingerprint therefore canonically relabels the query
(building on the mapping conventions of :mod:`repro.graph.renumber`:
``mapping[old] = new``, invertible with
:func:`~repro.graph.renumber.invert_mapping`) and hashes the relabeled
shape together with **quantized** statistics:

* cardinalities and selectivities are bucketed on a log2 grid with
  :data:`QUANT_STEPS` steps per octave, so estimates that differ by less
  than one bucket (≈ ``2^(1/QUANT_STEPS)``, about 19% at the default) hit
  the same entry — repeated traffic over near-identical parameter bindings
  is exactly the workload a plan cache exists for;
* a perturbation of at least one full quantization step is guaranteed to
  change the bucket (``round(x + 1) == round(x) + 1``), so materially
  different statistics can never collide.

Canonicalization runs Weisfeiler–Lehman color refinement seeded with the
quantized vertex statistics, then places vertices greedily by (refined
color, adjacency-to-placed signature).  Vertices the refinement cannot
distinguish are interchangeable under every statistic the cost model sees,
so any tie choice yields the same canonical payload; for pathological
regular graphs where that is not the case the failure mode is a cache
*miss* (two isomorphic queries get different keys), never a false hit —
the key hashes the full canonical payload, so equal keys imply genuinely
isomorphic queries with bucket-identical statistics.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, List, Sequence, Tuple

from repro.graph import bitset
from repro.query import Query

__all__ = [
    "QUANT_STEPS",
    "QueryFingerprint",
    "canonical_mapping",
    "fingerprint",
    "quantize",
]

#: Quantization steps per log2 octave.  4 steps ≈ 19% bucket width: coarse
#: enough that sampling noise in repeated estimates stays inside one
#: bucket, fine enough that a materially different selectivity misses.
QUANT_STEPS = 4


def quantize(value: float, steps: int = QUANT_STEPS) -> int:
    """Bucket a positive quantity on a log2 grid with ``steps`` per octave."""
    if value <= 0.0:
        # Degenerate estimates share one sentinel bucket (not a bitset).
        return -(1 << 30)  # repro: disable=bitset-discipline
    return round(math.log2(value) * steps)


class QueryFingerprint:
    """A canonical cache key plus the relabeling that produced it."""

    __slots__ = ("key", "mapping", "payload")

    def __init__(self, key: str, mapping: Tuple[int, ...], payload: str):
        self.key = key
        #: ``mapping[original_index] = canonical_index``.
        self.mapping = mapping
        self.payload = payload

    def __repr__(self) -> str:
        return f"QueryFingerprint({self.key[:12]}…, n={len(self.mapping)})"


def _vertex_seeds(query: Query, steps: int) -> List[Tuple[int, int]]:
    """Initial WL colors: (quantized cardinality, tuple width) per vertex."""
    return [
        (
            quantize(query.catalog.cardinality(index), steps),
            query.catalog.relation(index).tuple_width,
        )
        for index in range(query.n_relations)
    ]


def _refine(query: Query, steps: int) -> List[int]:
    """Weisfeiler–Lehman refinement; returns a stable color per vertex."""
    graph = query.graph
    n = query.n_relations
    qsel: Dict[Tuple[int, int], int] = {
        (u, v): quantize(query.catalog.selectivity(u, v), steps)
        for u, v in graph.edges
    }

    def edge_bucket(u: int, v: int) -> int:
        return qsel[(u, v) if u < v else (v, u)]

    def ranked(raw: Sequence) -> List[int]:
        # Rank colors by their *sorted structural value*, never by first
        # occurrence: first-seen ids would depend on the original vertex
        # numbering, which is exactly what the fingerprint must ignore.
        order = {value: rank for rank, value in enumerate(sorted(set(raw)))}
        return [order[value] for value in raw]

    colors = ranked(_vertex_seeds(query, steps))
    for _ in range(n):
        raw = []
        for vertex in range(n):
            signature = tuple(
                sorted(
                    (colors[neighbor], edge_bucket(vertex, neighbor))
                    for neighbor in bitset.iter_bits(graph.adjacency(vertex))
                )
            )
            raw.append((colors[vertex], signature))
        refined = ranked(raw)
        if refined == colors:
            break
        colors = refined
    return colors


def canonical_mapping(query: Query, steps: int = QUANT_STEPS) -> List[int]:
    """A deterministic, numbering-independent relabeling of the query.

    Returns ``mapping[original_index] = canonical_index`` in the
    :mod:`repro.graph.renumber` convention, so
    ``query.relabel(canonical_mapping(query))`` is the canonical form and
    :func:`~repro.graph.renumber.invert_mapping` translates back.
    """
    graph = query.graph
    n = query.n_relations
    colors = _refine(query, steps)
    qsel: Dict[Tuple[int, int], int] = {
        (u, v): quantize(query.catalog.selectivity(u, v), steps)
        for u, v in graph.edges
    }

    def edge_bucket(u: int, v: int) -> int:
        return qsel[(u, v) if u < v else (v, u)]

    position: Dict[int, int] = {}
    remaining = set(range(n))
    while remaining:
        best_vertex = -1
        best_key: Tuple = ()
        # Sorted so equal-key ties break on the lowest vertex id rather
        # than set iteration order — the canonical numbering must not
        # depend on hash-table layout.
        for vertex in sorted(remaining):
            placed_adjacency = tuple(
                sorted(
                    (position[neighbor], edge_bucket(vertex, neighbor))
                    for neighbor in bitset.iter_bits(graph.adjacency(vertex))
                    if neighbor in position
                )
            )
            # Vertices already attached to the placed prefix come first
            # (keeps the prefix connected); among those, lowest refined
            # color, then lexicographically smallest attachment.
            key = (0 if placed_adjacency else 1, colors[vertex], placed_adjacency)
            if best_vertex < 0 or key < best_key:
                best_vertex, best_key = vertex, key
        position[best_vertex] = len(position)
        remaining.remove(best_vertex)

    mapping = [0] * n
    for original, canonical in position.items():
        mapping[original] = canonical
    return mapping


def fingerprint(query: Query, steps: int = QUANT_STEPS) -> QueryFingerprint:
    """Fingerprint ``query``: canonical key + the relabeling used.

    The key is the SHA-256 of the canonical payload — vertex statistics and
    edge selectivities after canonical relabeling and quantization — so two
    queries share a key iff their canonical forms coincide bucket for
    bucket.
    """
    mapping = canonical_mapping(query, steps)
    seeds = _vertex_seeds(query, steps)
    vertices = [None] * query.n_relations  # type: List
    for original, canonical in enumerate(mapping):
        vertices[canonical] = seeds[original]
    edges = sorted(
        (
            min(mapping[u], mapping[v]),
            max(mapping[u], mapping[v]),
            quantize(query.catalog.selectivity(u, v), steps),
        )
        for u, v in query.graph.edges
    )
    payload = (
        f"n={query.n_relations};steps={steps};"
        f"V={vertices!r};E={edges!r}"
    )
    key = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return QueryFingerprint(key, tuple(mapping), payload)
