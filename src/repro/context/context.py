"""The per-query optimization context — the substrate under every enumerator.

Before this module existed, every plan generator, bottom-up baseline,
heuristic rung and facade call constructed its own
:class:`~repro.cost.statistics.StatisticsProvider` and
:class:`~repro.plans.builder.PlanBuilder`, so nothing computed while
optimizing one query — memoized subproblem statistics above all — survived
into the next layer, let alone the next query.  An
:class:`OptimizationContext` bundles everything that is *per query but
shared across components*:

* the statistics provider (memoized cardinality/width/page estimates per
  vertex set — the subproblem statistics every cost model and lower-bound
  estimator consumes);
* the cost model, **bound to that provider** (see
  :meth:`repro.cost.model.CostModel.bind` — binding produces a
  context-local model, so one model instance can safely parameterize many
  contexts);
* the plan builder (CREATETREE/BUILDTREE) wired to both;
* the run counters (:class:`~repro.stats.counters.OptimizationStats`);
* the optional cooperative :class:`~repro.resilience.Budget`;
* the optional :class:`~repro.telemetry.Telemetry` bundle (metric
  registry + tracer), threaded read-only so every layer records into the
  same instruments.

The context is immutable in the sense that its components never change
identity after construction; the provider cache and the counters mutate
*inside* it.  Derived contexts (:meth:`relabeled`, :meth:`fork`) share
exactly the pieces that must be shared — stats and budget across a
renumbering, provider and model across an oracle pre-pass — and nothing
else.

This module is also the **only** place in the library allowed to construct
``StatisticsProvider`` and ``PlanBuilder`` directly (enforced by the
``context-discipline`` lint rule); everything else goes through
:func:`statistics_for` or a context.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Union

from repro.catalog.relation import DEFAULT_PAGE_SIZE
from repro.cost.haas import HaasCostModel
from repro.cost.model import CostModel
from repro.cost.statistics import StatisticsProvider
from repro.plans.builder import PlanBuilder
from repro.query import Query
from repro.stats.counters import OptimizationStats

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a package cycle
    from repro.resilience.budget import Budget
    from repro.telemetry import Telemetry

__all__ = ["OptimizationContext", "statistics_for"]


def statistics_for(
    query: Query, page_size: int = DEFAULT_PAGE_SIZE
) -> StatisticsProvider:
    """The blessed constructor for a statistics provider.

    Components that need estimates but no cost model (plan validation, the
    structural fallback, the executor's estimate checker) call this instead
    of constructing :class:`StatisticsProvider` themselves, keeping every
    construction site inside ``repro/context/``.
    """
    return StatisticsProvider(query, page_size)


class OptimizationContext:
    """Everything one query's optimization shares across components.

    Construct via :meth:`for_query`; the raw constructor is internal (it
    trusts that the pieces are mutually consistent).
    """

    __slots__ = (
        "_query",
        "_provider",
        "_cost_model",
        "_builder",
        "_budget",
        "_telemetry",
        "_topk",
    )

    def __init__(
        self,
        query: Query,
        provider: StatisticsProvider,
        cost_model: CostModel,
        builder: PlanBuilder,
        budget: Optional["Budget"] = None,
        telemetry: Optional["Telemetry"] = None,
        topk: int = 1,
    ):
        if topk < 1:
            raise ValueError(f"topk must be >= 1, got {topk}")
        self._query = query
        self._provider = provider
        self._cost_model = cost_model
        self._builder = builder
        self._budget = budget
        self._telemetry = telemetry
        self._topk = topk

    @classmethod
    def for_query(
        cls,
        query: Query,
        cost_model: Union[CostModel, Callable[[], CostModel], None] = None,
        stats: Optional[OptimizationStats] = None,
        budget: Optional["Budget"] = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        telemetry: Optional["Telemetry"] = None,
        topk: int = 1,
    ) -> "OptimizationContext":
        """Build a fresh context for ``query``.

        ``cost_model`` may be an instance, a zero-argument factory, or
        ``None`` (Haas et al., the paper's model).  Whatever it is, the
        context binds it to its own provider via
        :meth:`~repro.cost.model.CostModel.bind`, so provider-dependent
        models (``C_out``) never alias state across queries.

        ``telemetry`` (a :class:`repro.telemetry.Telemetry` bundle) rides
        along read-only; components reach it via :attr:`telemetry` to
        record spans and metrics.  ``None`` — the default — means fully
        disarmed instrumentation.

        ``topk`` is the ranked-retention width every memotable built for
        this context uses (see :class:`~repro.plans.memo.MemoTable`);
        ``1`` — the default — is the paper's single-best behavior.
        """
        provider = StatisticsProvider(query, page_size)
        if cost_model is None:
            model: CostModel = HaasCostModel()
        elif isinstance(cost_model, CostModel):
            model = cost_model
        else:
            model = cost_model()
        model = model.bind(provider)
        builder = PlanBuilder(
            provider, model, stats if stats is not None else OptimizationStats()
        )
        return cls(query, provider, model, builder, budget, telemetry, topk)

    # -- components --------------------------------------------------------

    @property
    def query(self) -> Query:
        return self._query

    @property
    def provider(self) -> StatisticsProvider:
        """Memoized per-vertex-set statistics (the subproblem cache)."""
        return self._provider

    @property
    def cost_model(self) -> CostModel:
        """The cost model bound to this context's provider."""
        return self._cost_model

    @property
    def builder(self) -> PlanBuilder:
        return self._builder

    @property
    def stats(self) -> OptimizationStats:
        return self._builder.stats

    @property
    def budget(self) -> Optional["Budget"]:
        return self._budget

    @property
    def telemetry(self) -> Optional["Telemetry"]:
        """The observability bundle, or ``None`` when disarmed."""
        return self._telemetry

    @property
    def topk(self) -> int:
        """Ranked plans retained per plan class (1 = single-best)."""
        return self._topk

    # -- derived contexts ---------------------------------------------------

    def relabeled(self, mapping) -> "OptimizationContext":
        """Context for the renumbered query (§IV-D advancement 6).

        The relabeled query gets its own provider and bound model (vertex
        sets mean different relations now), but **shares** this context's
        counters and budget: the renumbered enumeration is the same logical
        run, so its work is charged to the same stats and the same
        allowance.
        """
        query = self._query.relabel(mapping)
        provider = StatisticsProvider(query, self._provider.page_size)
        model = self._cost_model.bind(provider)
        builder = PlanBuilder(provider, model, self._builder.stats)
        return OptimizationContext(
            query,
            provider,
            model,
            builder,
            self._budget,
            self._telemetry,
            self._topk,
        )

    def fork(
        self,
        stats: Optional[OptimizationStats] = None,
        budget: Optional["Budget"] = None,
    ) -> "OptimizationContext":
        """Same query, provider and model — fresh counters.

        Used for side computations whose work must *not* pollute the main
        run's counters (APCBI_Opt's untimed DPccp oracle pre-pass, §V-C)
        while still profiting from the shared subproblem statistics.  The
        budget defaults to this context's budget (the oracle shares the
        caller's wall-clock allowance) and can be overridden.
        """
        builder = PlanBuilder(
            self._provider,
            self._cost_model,
            stats if stats is not None else OptimizationStats(),
        )
        return OptimizationContext(
            self._query,
            self._provider,
            self._cost_model,
            builder,
            budget if budget is not None else self._budget,
            self._telemetry,
            self._topk,
        )

    def __repr__(self) -> str:
        return (
            f"OptimizationContext({self._query.describe()}, "
            f"model={self._cost_model.name}, "
            f"stats_cached={self._provider.cache_size()})"
        )
