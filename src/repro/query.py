"""The :class:`Query` bundle: a graph plus its statistics catalog.

This is the unit all optimizers in this library consume.  It also carries
light metadata (family name, seed) so workload suites and the benchmark
harness can report where a query came from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.catalog.catalog import Catalog
from repro.graph.query_graph import QueryGraph

__all__ = ["Query"]


@dataclass(frozen=True)
class Query:
    """A connected query graph together with its statistics.

    Attributes
    ----------
    graph:
        The (connected) query graph.
    catalog:
        Cardinalities and selectivities matching the graph.
    family:
        Workload family label (``"chain"``, ``"star"``, ...), informational.
    seed:
        RNG seed used to generate the query, informational.
    """

    graph: QueryGraph
    catalog: Catalog
    family: str = ""
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self.catalog.validate_against(self.graph)
        self.graph.require_connected(self.graph.all_vertices)

    @property
    def n_relations(self) -> int:
        return self.graph.n_vertices

    def relabel(self, mapping: Sequence[int]) -> "Query":
        """Renumber relations; used by advancement 6 (graph re-mapping)."""
        return Query(
            graph=self.graph.relabel(mapping),
            catalog=self.catalog.relabel(mapping),
            family=self.family,
            seed=self.seed,
        )

    def describe(self) -> str:
        """One-line human-readable description for logs."""
        label = self.family or "query"
        return (
            f"{label}(n={self.n_relations}, edges={len(self.graph.edges)}, "
            f"seed={self.seed})"
        )
