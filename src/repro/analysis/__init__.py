"""Repo-specific static analysis (the ``repro-lint`` gate).

The reproduction's correctness rests on conventions the interpreter never
checks: vertex sets are plain ints that only :mod:`repro.graph.bitset` may
bit-twiddle, every RNG must be explicitly seeded (the Steinbrunn workload is
only reproducible if it is), costs must never be compared with ``==``, and
every concrete strategy must be registered to appear in the benchmark
matrix.  This package enforces those contracts with a small AST-based lint
engine:

* :mod:`repro.analysis.diagnostics` — the :class:`Diagnostic` record and its
  text / JSON renderings;
* :mod:`repro.analysis.pragmas` — ``# repro: disable=<rule>`` suppression;
* :mod:`repro.analysis.registry` — the rule registry;
* :mod:`repro.analysis.engine` — file walker + rule runner;
* :mod:`repro.analysis.rules` — one module per rule;
* :mod:`repro.analysis.cli` — the ``python -m repro.analysis`` /
  ``repro-lint`` entry point.

See ``docs/static_analysis.md`` for the rule catalogue and output schema.
"""

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import LintResult, ModuleContext, Project, run_analysis
from repro.analysis.pragmas import PragmaTable
from repro.analysis.registry import Rule, all_rules, get_rule, register_rule

__all__ = [
    "Diagnostic",
    "LintResult",
    "ModuleContext",
    "PragmaTable",
    "Project",
    "Rule",
    "all_rules",
    "get_rule",
    "register_rule",
    "run_analysis",
]
