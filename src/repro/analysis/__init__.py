"""Repo-specific static analysis (the ``repro-lint`` gate).

The reproduction's correctness rests on conventions the interpreter never
checks: vertex sets are plain ints that only :mod:`repro.graph.bitset` may
bit-twiddle, every RNG must be explicitly seeded (the Steinbrunn workload is
only reproducible if it is), costs must never be compared with ``==``, and
every concrete strategy must be registered to appear in the benchmark
matrix.  This package enforces those contracts with a two-tier AST-based
lint engine — per-file rules plus whole-program passes over a project-wide
symbol table and call graph:

* :mod:`repro.analysis.diagnostics` — the :class:`Diagnostic` record and its
  text / JSON renderings;
* :mod:`repro.analysis.sarif` — SARIF 2.1.0 rendering for CI upload;
* :mod:`repro.analysis.pragmas` — ``# repro: disable=<rule>`` suppression
  plus the ``guarded-by(...)`` / ``unguarded-ok`` concurrency pragmas;
* :mod:`repro.analysis.registry` — the rule and pass registries;
* :mod:`repro.analysis.engine` — file walker + rule/pass runner with a
  process-wide parse cache;
* :mod:`repro.analysis.symbols` — the :class:`ProgramIndex` (modules,
  imports, classes, hierarchy units);
* :mod:`repro.analysis.callgraph` — static project call graph;
* :mod:`repro.analysis.rules` — one module per per-file rule;
* :mod:`repro.analysis.passes` — one module per whole-program pass;
* :mod:`repro.analysis.gitchanged` — changed-file discovery for
  ``--changed-only``;
* :mod:`repro.analysis.cli` — the ``python -m repro.analysis`` /
  ``repro-lint`` entry point.

See ``docs/static_analysis.md`` for the rule catalogue and output schema.
"""

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import LintResult, ModuleContext, Project, run_analysis
from repro.analysis.pragmas import PragmaTable
from repro.analysis.registry import (
    Pass,
    Rule,
    all_passes,
    all_rules,
    get_pass,
    get_rule,
    register_pass,
    register_rule,
)
from repro.analysis.symbols import ProgramIndex

__all__ = [
    "Diagnostic",
    "LintResult",
    "ModuleContext",
    "Pass",
    "PragmaTable",
    "ProgramIndex",
    "Project",
    "Rule",
    "all_passes",
    "all_rules",
    "get_pass",
    "get_rule",
    "register_pass",
    "register_rule",
    "run_analysis",
]
