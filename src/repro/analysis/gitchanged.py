"""Changed-file discovery for ``--changed-only`` incremental lint runs.

Asks git for files that differ from a base ref (default ``origin/main``)
plus untracked files, and returns them as resolved absolute paths.  Any
git failure — not a repo, ref missing, git not installed — returns
``None`` so the caller can fall back to a full run; an incremental lint
that silently checks nothing would be worse than a slow one.
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import List, Optional, Set

__all__ = ["DEFAULT_CHANGED_REF", "changed_python_files"]

DEFAULT_CHANGED_REF = "origin/main"


def _git(args: List[str], cwd: Path) -> Optional[str]:
    try:
        completed = subprocess.run(
            ["git", *args],
            cwd=str(cwd),
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout


def changed_python_files(
    ref: str = DEFAULT_CHANGED_REF, cwd: Optional[Path] = None
) -> Optional[Set[Path]]:
    """Python files changed since ``ref`` (tracked diffs plus untracked).

    Returns resolved absolute paths, or ``None`` when git is unavailable
    or the ref does not resolve — callers should then lint everything.
    """
    base = (cwd or Path.cwd()).resolve()
    toplevel_out = _git(["rev-parse", "--show-toplevel"], base)
    if toplevel_out is None:
        return None
    toplevel = Path(toplevel_out.strip())
    diff_out = _git(["diff", "--name-only", ref, "--"], base)
    if diff_out is None:
        return None
    untracked_out = _git(["ls-files", "--others", "--exclude-standard"], base)
    if untracked_out is None:
        return None
    changed: Set[Path] = set()
    for line in diff_out.splitlines() + untracked_out.splitlines():
        name = line.strip()
        if name.endswith(".py"):
            changed.add((toplevel / name).resolve())
    return changed
