"""Rule and pass registries.

Rules self-register at import time via the :func:`register_rule` decorator;
:mod:`repro.analysis.rules` imports every rule module so that loading the
package populates the registry.  Whole-program passes do the same through
:func:`register_pass` / :mod:`repro.analysis.passes`.  Mirrors the
partitioning/heuristic registries elsewhere in the repo: a plain dict plus
typo-friendly lookup errors.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Type

from repro.errors import ReproError

__all__ = [
    "Rule",
    "Pass",
    "UnknownRuleError",
    "register_rule",
    "register_pass",
    "all_rules",
    "all_passes",
    "get_rule",
    "get_pass",
]


class UnknownRuleError(ReproError):
    """Raised when a ``--select``/``--ignore``/``--passes`` names an id that
    is not registered."""


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` (kebab-case, stable — it appears in pragmas and CI
    logs) and ``description``, and override one of the two hooks depending on
    ``scope``:

    * ``scope = "module"`` — :meth:`check_module` is called once per parsed
      file and yields diagnostics for that file;
    * ``scope = "project"`` — :meth:`check_project` is called once with the
      whole file set, for cross-file contracts (registry completeness).
    """

    id: str = ""
    description: str = ""
    scope: str = "module"

    def check_module(self, module) -> Iterable:
        """Yield :class:`~repro.analysis.diagnostics.Diagnostic`s for one file."""
        return ()

    def check_project(self, project) -> Iterable:
        """Yield diagnostics that need the whole file set."""
        return ()


class Pass(Rule):
    """Base class for whole-program analysis passes.

    Passes run after the per-file rules, against a
    :class:`~repro.analysis.symbols.ProgramIndex` — the project-wide symbol
    table and call graph — so they can reason across modules (lock
    discipline through helper methods, taint through imported functions).
    They are selected with ``--passes`` rather than ``--select`` because
    they cost a whole-program index build, and their ids share the pragma
    namespace with rules (``# repro: disable=guarded-by`` works).
    """

    scope = "program"

    def check_program(self, program) -> Iterable:
        """Yield diagnostics computed over the whole program index."""
        return ()


_RULES: Dict[str, Type[Rule]] = {}
_PASSES: Dict[str, Type[Pass]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    if not cls.id:
        raise ValueError(f"rule class {cls.__name__} has no id")
    if cls.id in _RULES or cls.id in _PASSES:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    _RULES[cls.id] = cls
    return cls


def register_pass(cls: Type[Pass]) -> Type[Pass]:
    """Class decorator adding a whole-program pass to the pass registry."""
    if not cls.id:
        raise ValueError(f"pass class {cls.__name__} has no id")
    if cls.id in _PASSES or cls.id in _RULES:
        raise ValueError(f"duplicate pass id {cls.id!r}")
    _PASSES[cls.id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    import repro.analysis.rules  # noqa: F401  (registers on import)

    return [_RULES[rule_id]() for rule_id in sorted(_RULES)]


def all_passes() -> List[Pass]:
    """Fresh instances of every registered whole-program pass, sorted by id."""
    import repro.analysis.passes  # noqa: F401  (registers on import)

    return [_PASSES[pass_id]() for pass_id in sorted(_PASSES)]


def get_rule(rule_id: str) -> Rule:
    """Instantiate one rule by id."""
    import repro.analysis.rules  # noqa: F401  (registers on import)

    try:
        return _RULES[rule_id]()
    except KeyError:
        raise UnknownRuleError(
            f"unknown lint rule {rule_id!r}; available: {sorted(_RULES)}"
        ) from None


def get_pass(pass_id: str) -> Pass:
    """Instantiate one whole-program pass by id."""
    import repro.analysis.passes  # noqa: F401  (registers on import)

    try:
        return _PASSES[pass_id]()
    except KeyError:
        raise UnknownRuleError(
            f"unknown analysis pass {pass_id!r}; available: {sorted(_PASSES)}"
        ) from None
