"""Rule registry.

Rules self-register at import time via the :func:`register_rule` decorator;
:mod:`repro.analysis.rules` imports every rule module so that loading the
package populates the registry.  Mirrors the partitioning/heuristic
registries elsewhere in the repo: a plain dict plus typo-friendly lookup
errors.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Type

from repro.errors import ReproError

__all__ = ["Rule", "UnknownRuleError", "register_rule", "all_rules", "get_rule"]


class UnknownRuleError(ReproError):
    """Raised when a ``--select``/``--ignore`` names a rule that is not registered."""


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` (kebab-case, stable — it appears in pragmas and CI
    logs) and ``description``, and override one of the two hooks depending on
    ``scope``:

    * ``scope = "module"`` — :meth:`check_module` is called once per parsed
      file and yields diagnostics for that file;
    * ``scope = "project"`` — :meth:`check_project` is called once with the
      whole file set, for cross-file contracts (registry completeness).
    """

    id: str = ""
    description: str = ""
    scope: str = "module"

    def check_module(self, module) -> Iterable:
        """Yield :class:`~repro.analysis.diagnostics.Diagnostic`s for one file."""
        return ()

    def check_project(self, project) -> Iterable:
        """Yield diagnostics that need the whole file set."""
        return ()


_RULES: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    if not cls.id:
        raise ValueError(f"rule class {cls.__name__} has no id")
    if cls.id in _RULES:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    _RULES[cls.id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    import repro.analysis.rules  # noqa: F401  (registers on import)

    return [_RULES[rule_id]() for rule_id in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule:
    """Instantiate one rule by id."""
    import repro.analysis.rules  # noqa: F401  (registers on import)

    try:
        return _RULES[rule_id]()
    except KeyError:
        raise UnknownRuleError(
            f"unknown lint rule {rule_id!r}; available: {sorted(_RULES)}"
        ) from None
