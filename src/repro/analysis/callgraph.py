"""Project call graph: the second half of the whole-program tier.

Built over the :class:`~repro.analysis.symbols.ProgramIndex`, the
:class:`CallGraph` resolves call expressions to project functions/methods
and materializes the edge sets both flagship passes need:

* the ``guarded-by`` pass asks "who calls this helper method, and with
  which locks held?" — it uses :meth:`resolve_call` during its own walk and
  the reverse edges to propagate lock-held contexts to private helpers;
* the ``determinism`` pass runs a returns-nondeterminism fixpoint over the
  forward edges, so ``def now(): return time.time()`` in one module taints
  ``now()`` calls in every other module.

Resolution is deliberately static and conservative: ``self.m()`` resolves
to every override of ``m`` in the receiver's hierarchy unit, bare and
dotted names resolve through the per-module import tables, and anything
else (callable attributes, higher-order calls) resolves to nothing rather
than guessing.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.analysis.symbols import ClassInfo, FunctionInfo, ProgramIndex

__all__ = ["CallGraph"]


def _dotted(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        prefix = _dotted(node.value)
        return None if prefix is None else f"{prefix}.{node.attr}"
    return None


class CallGraph:
    """Forward and reverse call edges between project functions."""

    def __init__(self, program: ProgramIndex):
        self.program = program
        #: caller qualname -> sorted callee qualnames.
        self.edges: Dict[str, List[str]] = {}
        #: callee qualname -> sorted caller qualnames.
        self.callers: Dict[str, List[str]] = {}
        self._unit_of: Dict[str, List[ClassInfo]] = {}
        for unit in program.hierarchy_units():
            for cls in unit:
                self._unit_of[cls.qualname] = unit
        self._build()

    def _build(self) -> None:
        forward: Dict[str, set] = {}
        for info in self._all_functions():
            callees = set()
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    for target in self.resolve_call(info, node.func):
                        callees.add(target.qualname)
            forward[info.qualname] = callees
        self.edges = {name: sorted(callees) for name, callees in forward.items()}
        reverse: Dict[str, set] = {}
        for caller, callees in forward.items():
            for callee in callees:
                reverse.setdefault(callee, set()).add(caller)
        self.callers = {name: sorted(callers) for name, callers in reverse.items()}

    def _all_functions(self) -> List[FunctionInfo]:
        functions = [
            self.program.functions[name] for name in sorted(self.program.functions)
        ]
        for qualname in sorted(self.program.classes):
            cls = self.program.classes[qualname]
            for name in sorted(cls.methods):
                functions.append(cls.methods[name])
        return functions

    def unit_of(self, cls: ClassInfo) -> List[ClassInfo]:
        """The hierarchy unit containing ``cls``."""
        return self._unit_of.get(cls.qualname, [cls])

    def resolve_call(
        self, caller: FunctionInfo, func: ast.expr
    ) -> List[FunctionInfo]:
        """Project functions a call expression may invoke (possibly empty)."""
        # self.m(...) — every override in the receiver's hierarchy unit.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and caller.cls is not None
        ):
            return self.program.resolve_methods(
                self.unit_of(caller.cls), func.attr
            )
        name = _dotted(func)
        if name is None:
            return []
        resolved = self.program.resolve_function(caller.module, name)
        if resolved is not None:
            return [resolved]
        # Cls.method / imported-Cls.method (unbound call through the class).
        if "." in name:
            cls_part, _, method = name.rpartition(".")
            cls_info = self.program.resolve_class(caller.module, cls_part)
            if cls_info is not None:
                return self.program.resolve_methods(
                    self.unit_of(cls_info), method
                )
        return []

    def __repr__(self) -> str:
        edge_count = sum(len(callees) for callees in self.edges.values())
        return f"CallGraph({len(self.edges)} nodes, {edge_count} edges)"
