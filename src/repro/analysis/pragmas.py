"""``# repro:`` pragma parsing.

Four forms are recognized.  The first two mirror the usual linter
suppression conventions:

``# repro: disable=rule-a,rule-b``
    Suppresses the named rules on the physical line carrying the comment.

``# repro: disable-file=rule-a``
    Anywhere in the file, suppresses the named rules for the whole file.

The other two are *intent annotations* consumed by the whole-program
``guarded-by`` pass (see ``docs/static_analysis.md``):

``# repro: guarded-by(<lock-attr>)``
    On a line assigning an attribute, declares that the attribute is
    protected by ``self.<lock-attr>`` — the pass then enforces the guard
    even where inference alone would not.

``# repro: unguarded-ok``
    On a line accessing a guarded attribute, records that the lock-free
    access is deliberate (e.g. an approximate read in a ``__repr__``).

``all`` is accepted in place of a rule id and suppresses every rule.
Pragmas are parsed from raw source lines (not the AST) so they also work on
lines that carry no statement.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Set

__all__ = ["PragmaTable", "parse_pragmas"]

#: Rule ids are kebab-case; the list stops at the first token that is not a
#: rule id or comma, so trailing prose after a pragma is harmless.
_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)

#: ``# repro: guarded-by(_lock)`` — declares the lock guarding the
#: attribute assigned on this line.
_GUARDED_BY_RE = re.compile(
    r"#\s*repro:\s*guarded-by\(\s*(?P<lock>[A-Za-z_][A-Za-z0-9_]*)\s*\)"
)

#: ``# repro: unguarded-ok`` — a deliberate lock-free access.
_UNGUARDED_OK_RE = re.compile(r"#\s*repro:\s*unguarded-ok")


class PragmaTable:
    """Per-file suppression and annotation table built from pragma comments."""

    __slots__ = ("_by_line", "_file_wide", "_guards", "_unguarded_ok")

    def __init__(self) -> None:
        self._by_line: Dict[int, Set[str]] = {}
        self._file_wide: Set[str] = set()
        self._guards: Dict[int, str] = {}
        self._unguarded_ok: Set[int] = set()

    def add_line(self, line: int, rules: Iterable[str]) -> None:
        self._by_line.setdefault(line, set()).update(rules)

    def add_file_wide(self, rules: Iterable[str]) -> None:
        self._file_wide.update(rules)

    def add_guard(self, line: int, lock: str) -> None:
        self._guards[line] = lock

    def add_unguarded_ok(self, line: int) -> None:
        self._unguarded_ok.add(line)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True when ``rule`` is disabled at ``line`` (1-based)."""
        if "all" in self._file_wide or rule in self._file_wide:
            return True
        at_line = self._by_line.get(line)
        if not at_line:
            return False
        return "all" in at_line or rule in at_line

    def guard_at(self, line: int) -> "str | None":
        """The lock name declared by ``guarded-by(...)`` on ``line``."""
        return self._guards.get(line)

    def guard_declarations(self) -> Dict[int, str]:
        """All ``guarded-by`` declarations, line -> lock attribute name."""
        return dict(self._guards)

    def is_unguarded_ok(self, line: int) -> bool:
        """True when ``line`` carries an ``unguarded-ok`` annotation."""
        return line in self._unguarded_ok

    def __bool__(self) -> bool:
        return bool(
            self._by_line or self._file_wide or self._guards or self._unguarded_ok
        )


def parse_pragmas(source_lines: Iterable[str]) -> PragmaTable:
    """Scan raw source lines for pragma comments."""
    table = PragmaTable()
    for lineno, text in enumerate(source_lines, start=1):
        if "repro:" not in text:
            continue
        guard = _GUARDED_BY_RE.search(text)
        if guard is not None:
            table.add_guard(lineno, guard.group("lock"))
        if _UNGUARDED_OK_RE.search(text):
            table.add_unguarded_ok(lineno)
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = {part.strip() for part in match.group("rules").split(",")}
        rules.discard("")
        if not rules:
            continue
        if match.group("kind") == "disable-file":
            table.add_file_wide(rules)
        else:
            table.add_line(lineno, rules)
    return table
