"""``# repro: disable=<rule>`` pragma parsing.

Two forms are recognized, mirroring the usual linter conventions:

``# repro: disable=rule-a,rule-b``
    Suppresses the named rules on the physical line carrying the comment.

``# repro: disable-file=rule-a``
    Anywhere in the file, suppresses the named rules for the whole file.

``all`` is accepted in place of a rule id and suppresses every rule.
Pragmas are parsed from raw source lines (not the AST) so they also work on
lines that carry no statement.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Set

__all__ = ["PragmaTable", "parse_pragmas"]

#: Rule ids are kebab-case; the list stops at the first token that is not a
#: rule id or comma, so trailing prose after a pragma is harmless.
_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)


class PragmaTable:
    """Per-file suppression table built from pragma comments."""

    __slots__ = ("_by_line", "_file_wide")

    def __init__(self) -> None:
        self._by_line: Dict[int, Set[str]] = {}
        self._file_wide: Set[str] = set()

    def add_line(self, line: int, rules: Iterable[str]) -> None:
        self._by_line.setdefault(line, set()).update(rules)

    def add_file_wide(self, rules: Iterable[str]) -> None:
        self._file_wide.update(rules)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True when ``rule`` is disabled at ``line`` (1-based)."""
        if "all" in self._file_wide or rule in self._file_wide:
            return True
        at_line = self._by_line.get(line)
        if not at_line:
            return False
        return "all" in at_line or rule in at_line

    def __bool__(self) -> bool:
        return bool(self._by_line or self._file_wide)


def parse_pragmas(source_lines: Iterable[str]) -> PragmaTable:
    """Scan raw source lines for pragma comments."""
    table = PragmaTable()
    for lineno, text in enumerate(source_lines, start=1):
        if "repro:" not in text:
            continue
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = {part.strip() for part in match.group("rules").split(",")}
        rules.discard("")
        if not rules:
            continue
        if match.group("kind") == "disable-file":
            table.add_file_wide(rules)
        else:
            table.add_line(lineno, rules)
    return table
