"""File walker, rule runner, and whole-program pass driver.

:func:`run_analysis` turns a list of files/directories into a
:class:`Project` of parsed modules, runs every selected rule, then (when
``passes`` are given) builds a :class:`~repro.analysis.symbols.ProgramIndex`
over the project and runs each whole-program pass.  Pragma-suppressed
diagnostics are filtered and the rest come back sorted in a
:class:`LintResult`.  Files that fail to parse produce a ``syntax-error``
pseudo-diagnostic rather than aborting the run, so one broken file cannot
hide violations in the rest of the tree.

Parsing is memoized in a process-wide cache keyed by resolved path and
validated by ``(st_mtime_ns, st_size)``, so repeated runs in one process
(the test suite, editor integrations, rule-by-rule CLI invocations) parse
each unchanged file once.
"""

from __future__ import annotations

import ast
import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.pragmas import PragmaTable, parse_pragmas
from repro.analysis.registry import Pass, Rule, all_rules

__all__ = [
    "ModuleContext",
    "Project",
    "LintResult",
    "run_analysis",
    "iter_python_files",
    "clear_parse_cache",
    "parse_cache_stats",
]

#: Directory names never descended into.
_SKIPPED_DIRS = {
    "__pycache__",
    ".git",
    ".hypothesis",
    ".pytest_cache",
    "build",
    "dist",
}


@dataclass
class ModuleContext:
    """One parsed source file plus everything rules need to inspect it."""

    path: Path
    display_path: str
    source: str
    lines: List[str]
    tree: ast.Module
    pragmas: PragmaTable

    @property
    def posix(self) -> str:
        """Resolved absolute path with ``/`` separators, for suffix checks."""
        return self.path.as_posix()

    @property
    def is_test_file(self) -> bool:
        """True for files under a ``tests`` directory or named ``test_*.py``."""
        return "tests" in self.path.parts or self.path.name.startswith("test_")

    @property
    def is_bench_file(self) -> bool:
        """True for the benchmark harness and the pytest-bench suites."""
        return any(part in ("bench", "benchmarks") for part in self.path.parts)


@dataclass
class Project:
    """The full set of modules one analysis run looks at."""

    modules: List[ModuleContext] = field(default_factory=list)

    def find_by_suffix(self, suffix: str) -> Optional[ModuleContext]:
        """First module whose posix path ends with ``suffix`` (or ``None``)."""
        for module in self.modules:
            if module.posix.endswith(suffix):
                return module
        return None


@dataclass
class LintResult:
    """Outcome of one analysis run."""

    diagnostics: List[Diagnostic]
    files_checked: int

    @property
    def ok(self) -> bool:
        return not self.diagnostics


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    """Yield ``.py`` files under ``paths``, skipping build/VCS directories."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIPPED_DIRS.intersection(candidate.parts):
                    yield candidate


#: resolved path -> ((st_mtime_ns, st_size), parsed module).
_PARSE_CACHE: Dict[Path, Tuple[Tuple[int, int], ModuleContext]] = {}
_CACHE_STATS = {"hits": 0, "misses": 0}


def clear_parse_cache() -> None:
    """Drop every cached parse (tests use this for cold/warm comparisons)."""
    _PARSE_CACHE.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


def parse_cache_stats() -> Dict[str, int]:
    """A snapshot of hit/miss counters since the last clear."""
    return dict(_CACHE_STATS)


def _load_module(path: Path, display_path: str) -> ModuleContext:
    resolved = path.resolve()
    try:
        stat = resolved.stat()
        stamp: Optional[Tuple[int, int]] = (stat.st_mtime_ns, stat.st_size)
    except OSError:
        stamp = None
    if stamp is not None:
        cached = _PARSE_CACHE.get(resolved)
        if cached is not None and cached[0] == stamp:
            _CACHE_STATS["hits"] += 1
            module = cached[1]
            if module.display_path != display_path:
                # Same file reached under a different spelling (cwd change,
                # explicit path vs. directory walk): reuse the parse, refresh
                # the label diagnostics are reported under.
                module = dataclasses.replace(module, display_path=display_path)
            return module
    _CACHE_STATS["misses"] += 1
    source = resolved.read_text(encoding="utf-8")
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(resolved))
    module = ModuleContext(
        path=resolved,
        display_path=display_path,
        source=source,
        lines=lines,
        tree=tree,
        pragmas=parse_pragmas(lines),
    )
    if stamp is not None:
        _PARSE_CACHE[resolved] = (stamp, module)
    return module


def _display_path(path: Path, cwd: Path) -> str:
    try:
        return path.resolve().relative_to(cwd).as_posix()
    except ValueError:
        return path.as_posix()


def run_analysis(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    passes: Optional[Sequence[Pass]] = None,
) -> LintResult:
    """Lint ``paths`` (files or directories) with ``rules`` (default: all).

    ``passes`` are whole-program passes run over a
    :class:`~repro.analysis.symbols.ProgramIndex` built from the same
    project; pass ``passes=[]`` (or omit) to run per-file rules only.
    Diagnostics come back sorted by location with pragma-suppressed entries
    removed; ``syntax-error`` diagnostics are emitted for unparsable files
    and cannot be suppressed.
    """
    if rules is None:
        rules = all_rules()
    cwd = Path.cwd().resolve()
    project = Project()
    diagnostics: List[Diagnostic] = []
    files_checked = 0
    seen = set()
    for path in iter_python_files([Path(p) for p in paths]):
        resolved = path.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        files_checked += 1
        display = _display_path(path, cwd)
        try:
            project.modules.append(_load_module(path, display))
        except SyntaxError as error:
            diagnostics.append(
                Diagnostic(
                    path=display,
                    line=error.lineno or 1,
                    col=(error.offset or 1),
                    rule="syntax-error",
                    message=f"file does not parse: {error.msg}",
                )
            )

    pragma_tables: Dict[str, PragmaTable] = {
        module.display_path: module.pragmas for module in project.modules
    }

    raw: List[Diagnostic] = []
    for rule in rules:
        if rule.scope == "project":
            raw.extend(rule.check_project(project))
        else:
            for module in project.modules:
                raw.extend(rule.check_module(module))

    if passes:
        from repro.analysis.symbols import ProgramIndex

        program = ProgramIndex(project)
        for program_pass in passes:
            raw.extend(program_pass.check_program(program))

    for diagnostic in raw:
        table = pragma_tables.get(diagnostic.path)
        if table is not None and table.is_suppressed(diagnostic.rule, diagnostic.line):
            continue
        diagnostics.append(diagnostic)

    return LintResult(diagnostics=sorted(diagnostics), files_checked=files_checked)
