"""File walker and rule runner.

:func:`run_analysis` turns a list of files/directories into a
:class:`Project` of parsed modules, runs every selected rule, filters
pragma-suppressed diagnostics and returns a :class:`LintResult`.  Files that
fail to parse produce a ``syntax-error`` pseudo-diagnostic rather than
aborting the run, so one broken file cannot hide violations in the rest of
the tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.pragmas import PragmaTable, parse_pragmas
from repro.analysis.registry import Rule, all_rules

__all__ = ["ModuleContext", "Project", "LintResult", "run_analysis"]

#: Directory names never descended into.
_SKIPPED_DIRS = {
    "__pycache__",
    ".git",
    ".hypothesis",
    ".pytest_cache",
    "build",
    "dist",
}


@dataclass
class ModuleContext:
    """One parsed source file plus everything rules need to inspect it."""

    path: Path
    display_path: str
    source: str
    lines: List[str]
    tree: ast.Module
    pragmas: PragmaTable

    @property
    def posix(self) -> str:
        """Resolved absolute path with ``/`` separators, for suffix checks."""
        return self.path.as_posix()

    @property
    def is_test_file(self) -> bool:
        """True for files under a ``tests`` directory or named ``test_*.py``."""
        return "tests" in self.path.parts or self.path.name.startswith("test_")

    @property
    def is_bench_file(self) -> bool:
        """True for the benchmark harness and the pytest-bench suites."""
        return any(part in ("bench", "benchmarks") for part in self.path.parts)


@dataclass
class Project:
    """The full set of modules one analysis run looks at."""

    modules: List[ModuleContext] = field(default_factory=list)

    def find_by_suffix(self, suffix: str) -> Optional[ModuleContext]:
        """First module whose posix path ends with ``suffix`` (or ``None``)."""
        for module in self.modules:
            if module.posix.endswith(suffix):
                return module
        return None


@dataclass
class LintResult:
    """Outcome of one analysis run."""

    diagnostics: List[Diagnostic]
    files_checked: int

    @property
    def ok(self) -> bool:
        return not self.diagnostics


def _iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIPPED_DIRS.intersection(candidate.parts):
                    yield candidate


def _load_module(path: Path, display_path: str) -> ModuleContext:
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    return ModuleContext(
        path=path.resolve(),
        display_path=display_path,
        source=source,
        lines=lines,
        tree=tree,
        pragmas=parse_pragmas(lines),
    )


def _display_path(path: Path, cwd: Path) -> str:
    try:
        return path.resolve().relative_to(cwd).as_posix()
    except ValueError:
        return path.as_posix()


def run_analysis(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Lint ``paths`` (files or directories) with ``rules`` (default: all).

    Diagnostics come back sorted by location with pragma-suppressed entries
    removed; ``syntax-error`` diagnostics are emitted for unparsable files
    and cannot be suppressed.
    """
    if rules is None:
        rules = all_rules()
    cwd = Path.cwd().resolve()
    project = Project()
    diagnostics: List[Diagnostic] = []
    files_checked = 0
    seen = set()
    for path in _iter_python_files([Path(p) for p in paths]):
        resolved = path.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        files_checked += 1
        display = _display_path(path, cwd)
        try:
            project.modules.append(_load_module(path, display))
        except SyntaxError as error:
            diagnostics.append(
                Diagnostic(
                    path=display,
                    line=error.lineno or 1,
                    col=(error.offset or 1),
                    rule="syntax-error",
                    message=f"file does not parse: {error.msg}",
                )
            )

    pragma_tables: Dict[str, PragmaTable] = {
        module.display_path: module.pragmas for module in project.modules
    }

    raw: List[Diagnostic] = []
    for rule in rules:
        if rule.scope == "project":
            raw.extend(rule.check_project(project))
        else:
            for module in project.modules:
                raw.extend(rule.check_module(module))

    for diagnostic in raw:
        table = pragma_tables.get(diagnostic.path)
        if table is not None and table.is_suppressed(diagnostic.rule, diagnostic.line):
            continue
        diagnostics.append(diagnostic)

    return LintResult(diagnostics=sorted(diagnostics), files_checked=files_checked)
