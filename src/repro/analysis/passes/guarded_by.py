"""``guarded-by`` — interprocedural lock-discipline inference.

The repo's determinism and soak certifications assume the threaded
subsystems (service worker pool, telemetry registry, plan cache) follow a
simple discipline: every attribute that is mutated under a class's lock is
*always* accessed under that lock.  A per-file rule cannot check this —
the mutation, the lock, and the offending read are routinely in different
methods, sometimes different modules (a subclass inheriting a guarded
attribute).  This pass can:

1. **Lock domains.**  Classes are grouped into hierarchy units (a base
   class plus every project subclass); a unit that assigns
   ``self.X = threading.Lock()`` / ``RLock()`` / ``Condition(...)``
   becomes a lock domain.  ``Condition(self._lock)`` aliases: holding the
   condition holds the wrapped lock.
2. **Lock-context propagation.**  Each method is walked once, recording
   which locks are textually held (``with self._lock:``) at every
   ``self.<attr>`` access and every ``self.<method>()`` call site.  A
   fixpoint then computes each method's *entry* context: the intersection
   of the locks held at all its call sites — so a private helper only ever
   called under the lock is analyzed as lock-held, while any public method
   (callable from outside) is assumed to start lock-free.
3. **Guard inference.**  An attribute is *guarded by* lock ``L`` when a
   ``# repro: guarded-by(L)`` pragma declares it, or when inference finds
   at least one guarded write and at least two guarded accesses outside
   ``__init__`` — construction happens-before publication, so ``__init__``
   is exempt throughout.
4. **Flagging.**  Every access to a guarded attribute outside its lock is
   reported, unless the line carries ``# repro: unguarded-ok`` (the escape
   hatch for deliberate lock-free reads) or a ``disable=guarded-by``
   pragma.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Pass, register_pass
from repro.analysis.symbols import (
    ClassInfo,
    FunctionInfo,
    ProgramIndex,
    class_level_assign_lines,
)

__all__ = ["GuardedBy"]

#: Callables whose result, assigned to ``self.<attr>``, makes a lock attr.
_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}

#: Receiver methods that mutate the receiver in place.
_MUTATORS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "move_to_end",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "setdefault",
    "sort",
    "update",
}

#: Methods exempt from inference and flagging: construction (and teardown)
#: happen-before (after) concurrent publication.
_EXEMPT_METHODS = {"__init__", "__new__", "__post_init__", "__del__"}

#: Fixpoint sentinel: entry context not yet known.
_TOP = None

#: Statement containers that hold nested statements (3.9-compatible: the
#: ``match`` statement's case arm only exists on 3.10+).
_ARM_NODES = tuple(
    node_type
    for node_type in (
        getattr(ast, "excepthandler", None),
        getattr(ast, "match_case", None),
    )
    if node_type is not None
)


class _Access:
    """One ``self.<attr>`` data access inside a method body."""

    __slots__ = ("attr", "is_write", "line", "col", "local_held", "method")

    def __init__(self, attr, is_write, line, col, local_held, method):
        self.attr = attr
        self.is_write = is_write
        self.line = line
        self.col = col
        self.local_held = local_held
        self.method = method


class _UnitFacts:
    """Everything collected from one hierarchy unit's method bodies."""

    def __init__(self):
        #: lock attr -> every lock attr holding it implies (incl. itself).
        self.locks: Dict[str, frozenset] = {}
        #: attr -> (lock name, declaration line, module) from pragmas.
        self.declared: Dict[str, Tuple[str, int, object]] = {}
        self.accesses: List[_Access] = []
        #: callee method name -> [(caller qualname, locks held at site)].
        self.callsites: Dict[str, List[Tuple[str, frozenset]]] = {}
        self.methods: List[FunctionInfo] = []


def _is_self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _call_last_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class _MethodWalker:
    """Single-method walk recording accesses and call sites per held-set."""

    def __init__(self, facts: _UnitFacts, method: FunctionInfo, unit_methods):
        self.facts = facts
        self.method = method
        self.unit_methods = unit_methods  # name -> FunctionInfo list
        self.pragmas = method.module.pragmas

    def walk(self) -> None:
        held = frozenset()
        for stmt in self.method.node.body:
            self._stmt(stmt, held)

    # -- statements ----------------------------------------------------

    def _stmt(self, node: ast.stmt, held: frozenset) -> None:
        if isinstance(node, ast.With) or isinstance(node, ast.AsyncWith):
            acquired = set(held)
            for item in node.items:
                attr = _is_self_attr(item.context_expr)
                if attr is not None and attr in self.facts.locks:
                    acquired |= self.facts.locks[attr]
                else:
                    self._expr(item.context_expr, held)
            inner = frozenset(acquired)
            for child in node.body:
                self._stmt(child, inner)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._assignment(node, held)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested function may run long after the enclosing lock is
            # released; analyze its body lock-free.
            for child in node.body:
                self._stmt(child, frozenset())
        elif isinstance(node, ast.ClassDef):
            return
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._stmt(child, held)
                elif isinstance(child, ast.expr):
                    self._expr(child, held)
                elif isinstance(child, _ARM_NODES):
                    for sub in ast.iter_child_nodes(child):
                        if isinstance(sub, ast.stmt):
                            self._stmt(sub, held)
                        elif isinstance(sub, ast.expr):
                            self._expr(sub, held)

    def _assignment(self, node: ast.stmt, held: frozenset) -> None:
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
            value = node.value
        else:  # AugAssign: read-modify-write
            targets, value = [node.target], node.value
            attr = _is_self_attr(node.target)
            if attr is not None:
                self._record(attr, False, node.target, held)
        if value is not None:
            self._expr(value, held)
        for target in targets:
            self._target(target, held, node.lineno)

    def _target(self, node: ast.expr, held: frozenset, line: int) -> None:
        attr = _is_self_attr(node)
        if attr is not None:
            self._declare_from_pragma(attr, line)
            self._record(attr, True, node, held)
            return
        if isinstance(node, ast.Subscript):
            base_attr = _is_self_attr(node.value)
            if base_attr is not None:
                self._record(base_attr, True, node.value, held)
            else:
                self._expr(node.value, held)
            self._expr(node.slice, held)
            return
        if isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                self._target(element, held, line)
            return
        if isinstance(node, ast.Starred):
            self._target(node.value, held, line)
            return
        self._expr(node, held)

    def _declare_from_pragma(self, attr: str, line: int) -> None:
        lock = self.pragmas.guard_at(line)
        if lock is not None and attr not in self.facts.declared:
            self.facts.declared[attr] = (lock, line, self.method.module)

    # -- expressions ---------------------------------------------------

    def _expr(self, node: ast.expr, held: frozenset) -> None:
        if isinstance(node, ast.Call):
            self._call(node, held)
            return
        attr = _is_self_attr(node)
        if attr is not None:
            self._record(attr, False, node, held)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child, held)

    def _call(self, node: ast.Call, held: frozenset) -> None:
        func = node.func
        handled_func = False
        receiver_attr = None
        if isinstance(func, ast.Attribute):
            receiver_attr = _is_self_attr(func.value)
        if receiver_attr is not None:
            # self.<attr>.<method>(...): a mutator counts as a write to
            # the attribute, anything else as a read.
            self._record(
                receiver_attr, func.attr in _MUTATORS, func.value, held
            )
            handled_func = True
        else:
            direct = _is_self_attr(func)
            if direct is not None:
                if direct in self.unit_methods:
                    self.facts.callsites.setdefault(direct, []).append(
                        (self.method.qualname, held)
                    )
                else:
                    self._record(direct, False, func, held)
                handled_func = True
        if not handled_func:
            self._expr(func, held)
        for arg in node.args:
            self._expr(arg, held)
        for keyword in node.keywords:
            self._expr(keyword.value, held)

    def _record(
        self, attr: str, is_write: bool, node: ast.AST, held: frozenset
    ) -> None:
        if attr in self.facts.locks:
            return
        methods = self.unit_methods.get(attr)
        if methods is not None and not is_write:
            if any(m.is_property for m in methods):
                # Property access executes the property body: a call site.
                self.facts.callsites.setdefault(attr, []).append(
                    (self.method.qualname, held)
                )
                return
            return  # bound-method reference, not a data access
        self.facts.accesses.append(
            _Access(
                attr,
                is_write,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0) + 1,
                held,
                self.method,
            )
        )


def _collect_locks(facts: _UnitFacts) -> None:
    """Find ``self.X = threading.Lock()``-style assignments (any method)."""
    direct: Dict[str, Optional[str]] = {}  # lock attr -> aliased attr
    for method in facts.methods:
        for node in ast.walk(method.node):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            callee = _call_last_name(node.value.func)
            if callee not in _LOCK_FACTORIES:
                continue
            alias = None
            if callee == "Condition" and node.value.args:
                alias = _is_self_attr(node.value.args[0])
            for target in node.targets:
                attr = _is_self_attr(target)
                if attr is not None:
                    direct[attr] = alias
    for attr, alias in direct.items():
        implied = {attr}
        if alias is not None and alias in direct:
            implied.add(alias)
        facts.locks[attr] = frozenset(implied)


def _collect_class_level_declarations(
    unit: List[ClassInfo], facts: _UnitFacts
) -> None:
    """Class-body ``X: int  # repro: guarded-by(_lock)`` declarations."""
    for cls in sorted(unit, key=lambda c: c.qualname):
        if cls.module.is_test_file:
            continue
        lines = class_level_assign_lines(cls)
        for attr in sorted(lines):
            lock = cls.module.pragmas.guard_at(lines[attr])
            if lock is not None and attr not in facts.declared:
                facts.declared[attr] = (lock, lines[attr], cls.module)


def _entry_contexts(facts: _UnitFacts) -> Dict[str, frozenset]:
    """Fixpoint: locks guaranteed held when each method starts executing."""
    entries: Dict[str, object] = {m.qualname: _TOP for m in facts.methods}
    by_name: Dict[str, List[FunctionInfo]] = {}
    for method in facts.methods:
        by_name.setdefault(method.name, []).append(method)
    qual_sites: Dict[str, List[Tuple[str, frozenset]]] = {}
    for callee_name, sites in facts.callsites.items():
        for method in by_name.get(callee_name, []):
            qual_sites.setdefault(method.qualname, []).extend(sites)

    changed = True
    while changed:
        changed = False
        for method in facts.methods:
            contexts: List[frozenset] = []
            if method.is_public or method.is_property:
                contexts.append(frozenset())
            for caller_qual, local_held in qual_sites.get(method.qualname, ()):
                caller_entry = entries.get(caller_qual, _TOP)
                if caller_entry is _TOP:
                    continue
                contexts.append(frozenset(caller_entry) | local_held)
            if not contexts:
                if not qual_sites.get(method.qualname):
                    # Private and never called in-unit: assume lock-free.
                    contexts.append(frozenset())
                else:
                    continue  # callers not yet resolved this round
            new = contexts[0]
            for context in contexts[1:]:
                new = new & context
            if entries[method.qualname] is _TOP or entries[method.qualname] != new:
                entries[method.qualname] = new
                changed = True
    return {
        qual: (frozenset() if entry is _TOP else entry)
        for qual, entry in entries.items()
    }


@register_pass
class GuardedBy(Pass):
    id = "guarded-by"
    description = (
        "attributes mutated under a class's lock must always be accessed "
        "under it (inferred or declared via `# repro: guarded-by(<lock>)`; "
        "escape hatch `# repro: unguarded-ok`)"
    )

    def check_program(self, program: ProgramIndex):
        for unit in program.hierarchy_units():
            yield from self._check_unit(program, unit)

    def _check_unit(self, program: ProgramIndex, unit: List[ClassInfo]):
        facts = _UnitFacts()
        facts.methods = [
            method
            for method in program.unit_methods(unit)
            if not method.module.is_test_file
        ]
        if not facts.methods:
            return
        _collect_locks(facts)
        if not facts.locks:
            return
        unit_methods: Dict[str, List[FunctionInfo]] = {}
        for method in facts.methods:
            unit_methods.setdefault(method.name, []).append(method)
        for method in facts.methods:
            _MethodWalker(facts, method, unit_methods).walk()
        _collect_class_level_declarations(unit, facts)
        yield from self._check_declarations(facts)
        entries = _entry_contexts(facts)
        inferred = self._infer(facts, entries)
        yield from self._flag(facts, entries, inferred)

    def _check_declarations(self, facts: _UnitFacts):
        for attr in sorted(facts.declared):
            lock, line, module = facts.declared[attr]
            if lock not in facts.locks:
                yield Diagnostic(
                    path=module.display_path,
                    line=line,
                    col=1,
                    rule=self.id,
                    message=(
                        f"`# repro: guarded-by({lock})` on attribute "
                        f"{attr!r} names no lock attribute of this class "
                        f"(known locks: {sorted(facts.locks) or 'none'})"
                    ),
                )

    def _held(self, access: _Access, entries: Dict[str, frozenset]) -> frozenset:
        return access.local_held | entries.get(
            access.method.qualname, frozenset()
        )

    def _infer(
        self, facts: _UnitFacts, entries: Dict[str, frozenset]
    ) -> Dict[str, Tuple[str, int, int]]:
        """attr -> (lock, guarded writes, guarded accesses) by inference."""
        writes: Dict[Tuple[str, str], int] = {}
        totals: Dict[Tuple[str, str], int] = {}
        for access in facts.accesses:
            if access.method.name in _EXEMPT_METHODS:
                continue
            held = self._held(access, entries)
            for lock in held:
                if lock not in facts.locks:
                    continue
                key = (access.attr, lock)
                totals[key] = totals.get(key, 0) + 1
                if access.is_write:
                    writes[key] = writes.get(key, 0) + 1
        inferred: Dict[str, Tuple[str, int, int]] = {}
        attrs = sorted({attr for attr, _ in totals})
        for attr in attrs:
            if attr in facts.declared:
                continue
            candidates = []
            for lock in sorted(facts.locks):
                write_count = writes.get((attr, lock), 0)
                total_count = totals.get((attr, lock), 0)
                if write_count >= 1 and total_count >= 2:
                    candidates.append((total_count, write_count, lock))
            if candidates:
                # Deterministic choice: most evidence, ties broken by name.
                total_count, write_count, lock = max(
                    candidates, key=lambda c: (c[0], c[1], c[2])
                )
                inferred[attr] = (lock, write_count, total_count)
        return inferred

    def _flag(
        self,
        facts: _UnitFacts,
        entries: Dict[str, frozenset],
        inferred: Dict[str, Tuple[str, int, int]],
    ):
        for access in sorted(
            facts.accesses,
            key=lambda a: (a.method.module.display_path, a.line, a.col),
        ):
            if access.method.name in _EXEMPT_METHODS:
                continue
            declared = facts.declared.get(access.attr)
            if declared is not None:
                lock, basis = declared[0], "declared `# repro: guarded-by`"
                if lock not in facts.locks:
                    continue  # already reported as a bad declaration
            elif access.attr in inferred:
                lock, write_count, total_count = inferred[access.attr]
                basis = (
                    f"inferred: {total_count} guarded accesses, "
                    f"{write_count} guarded writes"
                )
            else:
                continue
            if lock in self._held(access, entries):
                continue
            module = access.method.module
            if module.pragmas.is_unguarded_ok(access.line):
                continue
            action = "written" if access.is_write else "read"
            yield Diagnostic(
                path=module.display_path,
                line=access.line,
                col=access.col,
                rule=self.id,
                message=(
                    f"attribute {access.attr!r} is guarded by "
                    f"'self.{lock}' ({basis}) but {action} here without "
                    f"holding it; wrap in `with self.{lock}:` or mark a "
                    "deliberate lock-free access with "
                    "`# repro: unguarded-ok`"
                ),
            )
