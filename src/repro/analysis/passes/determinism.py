"""``determinism`` — whole-program nondeterminism taint analysis.

The golden-equivalence suite and the chaos soak check *dynamically* that
optimization is bit-exact deterministic: a request's plan is a function of
its query and seed only.  This pass checks the same invariant statically:

**Sources** produce tainted values:

* direct clock reads — ``time.time()`` / ``monotonic()`` /
  ``perf_counter()`` and friends called directly (the sanctioned pattern
  is an *injectable* clock: ``clock: Callable = time.monotonic`` passed as
  a default and called as ``self._clock()``, which this pass does not
  taint);
* global-state randomness — module-level ``random.*`` functions and
  unseeded ``random.Random()``;
* OS entropy — ``os.urandom``, ``uuid.uuid1/uuid4``, ``secrets.*``
  (flagged outright: they have no legitimate use here);
* ``hash()`` — string hashing is ``PYTHONHASHSEED``-randomized across
  processes;
* ``set`` iteration — iterating a set literal / comprehension /
  ``set(...)`` value is order-nondeterministic and flagged outright
  unless consumed order-insensitively (``sorted``, ``min``, ``sum``, ...);
* thread-pool completion order — ``concurrent.futures.as_completed``
  (flagged outright: consume results in submission order instead);
* **calls to project functions that return any of the above** — the
  whole-program part: a returns-nondeterminism fixpoint over the call
  graph taints ``now()`` in every module when ``def now(): return
  time.time()`` is defined in one.

**Sinks** are plan-affecting state; a tainted value reaching one is a
diagnostic: memo/cache/table subscript stores, cache ``put``/``get``
keys, comparisons against ``.cost``, RNG seeding (``Random(tainted)`` /
``.seed(tainted)``), assignments to seed/key/fingerprint/memo-named
variables, and returns from fingerprint/cache-key functions.

Suppression is the ordinary pragma: ``# repro: disable=determinism``.
Test files are exempt (they assert on wall time freely).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Pass, register_pass
from repro.analysis.symbols import FunctionInfo, ProgramIndex

__all__ = ["Determinism"]

#: Clock reads: taint, but no outright flag (timing stats are legitimate).
_CLOCKS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
}

#: Wall-clock suffixes (``datetime.datetime.now()`` however imported).
_CLOCK_SUFFIXES = ("datetime.now", "datetime.utcnow", "date.today")

#: Module-level random functions (global RNG state): taint.
_GLOBAL_RANDOM = {
    "random.random",
    "random.randrange",
    "random.randint",
    "random.uniform",
    "random.choice",
    "random.choices",
    "random.shuffle",
    "random.sample",
    "random.getrandbits",
    "random.gauss",
}

#: Flagged outright wherever they appear (plus tainting their result).
_FLAGGED_SOURCES = {
    "os.urandom": "os.urandom() draws OS entropy",
    "uuid.uuid1": "uuid.uuid1() depends on host and clock",
    "uuid.uuid4": "uuid.uuid4() draws OS entropy",
    "concurrent.futures.as_completed": (
        "as_completed() yields in thread-completion order"
    ),
}

#: Calling these with an unordered collection is order-insensitive.
_ORDER_SAFE = {"sorted", "min", "max", "sum", "len", "any", "all", "bool"}

#: Set-algebra methods that keep a collection unordered.
_SET_METHODS = {
    "union",
    "difference",
    "intersection",
    "symmetric_difference",
    "copy",
}

#: Plan-affecting container names (subscript-store sinks).
_STATE_RE = re.compile(r"(^|_)(memo|cache|table)s?(_|$)", re.IGNORECASE)

#: Key-like binding names (assignment sinks).
_KEYNAME_RE = re.compile(r"(^|_)(seed|key|fingerprint|memo)s?(_|$)")

#: Key-producing functions (argument and return sinks).
_KEYFUNC_RE = re.compile(r"(fingerprint|cache_key|plan_key|canonical)")

#: Cost-bearing operands in comparisons.
_COST_RE = re.compile(r"(^|_)costs?($|_)")


def _dotted(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        prefix = _dotted(node.value)
        return None if prefix is None else f"{prefix}.{node.attr}"
    return None


def _is_cost_operand(node: ast.expr) -> bool:
    if isinstance(node, ast.Attribute):
        return bool(_COST_RE.search(node.attr))
    if isinstance(node, ast.Name):
        return bool(_COST_RE.search(node.id))
    return False


class _Value:
    """Abstract value: a taint origin (or None) plus set-unorderedness."""

    __slots__ = ("origin", "unordered")

    def __init__(self, origin: Optional[str] = None, unordered: bool = False):
        self.origin = origin
        self.unordered = unordered

    @property
    def tainted(self) -> bool:
        return self.origin is not None


_CLEAN = _Value()


def _merge(values: Sequence[_Value]) -> _Value:
    origin = None
    for value in values:
        if value.origin is not None:
            origin = value.origin
            break
    return _Value(origin, any(value.unordered for value in values))


class _FunctionAnalysis:
    """One pass over one function body (or a module's top level)."""

    def __init__(
        self,
        program: ProgramIndex,
        func: FunctionInfo,
        nondet: Set[str],
        diagnostics: Optional[List[Diagnostic]],
    ):
        self.program = program
        self.func = func
        self.module = func.module
        self.nondet = nondet
        self.diagnostics = diagnostics
        self.env: Dict[str, str] = {}
        self.unordered: Set[str] = set()
        self.returns_tainted = False

    # -- plumbing ------------------------------------------------------

    def _canonical(self, func_expr: ast.expr) -> Optional[str]:
        """Dotted call target with the first segment expanded via imports."""
        name = _dotted(func_expr)
        if name is None:
            return None
        imports = self.program.imports.get(
            self.program.module_names.get(self.module.display_path, ""), {}
        )
        if name in imports:
            return imports[name]
        head, _, rest = name.partition(".")
        if head in imports and imports[head] != head:
            return f"{imports[head]}.{rest}" if rest else imports[head]
        return name

    def _emit(self, node: ast.AST, message: str) -> None:
        if self.diagnostics is None:
            return
        self.diagnostics.append(
            Diagnostic(
                path=self.module.display_path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule="determinism",
                message=message,
            )
        )

    def _bind(self, target: ast.expr, value: _Value, node: ast.AST) -> None:
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ) and target.value.id == "self":
            name = f"self.{target.attr}"
        if name is not None:
            bare = name.rsplit(".", 1)[-1]
            if value.tainted and _KEYNAME_RE.search(bare):
                self._emit(
                    node,
                    f"nondeterministic value ({value.origin}) assigned to "
                    f"{bare!r}; seeds, keys and fingerprints must be "
                    "derived from the query and the run's seed only",
                )
            if value.tainted:
                self.env[name] = value.origin
            else:
                self.env.pop(name, None)
            if value.unordered:
                self.unordered.add(name)
            else:
                self.unordered.discard(name)
        elif isinstance(target, ast.Subscript):
            self._subscript_store(target, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, _Value(value.origin, False), node)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, value, node)

    def _subscript_store(self, target: ast.Subscript, value: _Value) -> None:
        base_name = None
        if isinstance(target.value, ast.Name):
            base_name = target.value.id
        elif isinstance(target.value, ast.Attribute):
            base_name = target.value.attr
        key = self._eval(target.slice)
        if base_name is not None and _STATE_RE.search(base_name):
            offender = key if key.tainted else value
            if offender.tainted:
                role = "key" if key.tainted else "value"
                self._emit(
                    target,
                    f"nondeterministic {role} ({offender.origin}) stored "
                    f"into {base_name!r}; memo/cache state must be a "
                    "function of the query and seed only",
                )

    # -- statements ----------------------------------------------------

    def run(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are analyzed as their own functions
        if isinstance(node, ast.Assign):
            value = self._eval(node.value)
            for target in node.targets:
                self._bind(target, value, node)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._bind(node.target, self._eval(node.value), node)
        elif isinstance(node, ast.AugAssign):
            combined = _merge([self._eval(node.target), self._eval(node.value)])
            self._bind(node.target, combined, node)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                value = self._eval(node.value)
                if value.tainted:
                    self.returns_tainted = True
                    if self.func.name != "<module>" and _KEYFUNC_RE.search(
                        self.func.name
                    ):
                        self._emit(
                            node,
                            f"{self.func.name}() returns a nondeterministic "
                            f"value ({value.origin}); key/fingerprint "
                            "functions must be pure",
                        )
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            iterated = self._eval(node.iter)
            self._flag_unordered_iteration(node.iter, iterated)
            self._bind(node.target, _Value(iterated.origin, False), node)
            for child in node.body:
                self._stmt(child)
            for child in node.orelse:
                self._stmt(child)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                value = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, value, node)
            for child in node.body:
                self._stmt(child)
        elif isinstance(node, ast.Try):
            for child in node.body:
                self._stmt(child)
            for handler in node.handlers:
                for child in handler.body:
                    self._stmt(child)
            for child in node.orelse:
                self._stmt(child)
            for child in node.finalbody:
                self._stmt(child)
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._stmt(child)
                elif isinstance(child, ast.expr):
                    self._eval(child)

    def _flag_unordered_iteration(
        self, iter_expr: ast.expr, iterated: _Value
    ) -> None:
        if iterated.unordered:
            self._emit(
                iter_expr,
                "iteration over a set has nondeterministic order; iterate "
                "sorted(...) or use an ordered container",
            )

    # -- expressions ---------------------------------------------------

    def _eval(self, node: ast.expr) -> _Value:
        if isinstance(node, ast.Name):
            return _Value(self.env.get(node.id), node.id in self.unordered)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                key = f"self.{node.attr}"
                return _Value(self.env.get(key), key in self.unordered)
            return self._eval(node.value)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, (ast.Set,)):
            return _Value(
                _merge([self._eval(e) for e in node.elts]).origin, True
            )
        if isinstance(node, ast.SetComp):
            return _Value(self._eval_comprehension(node), True)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return _Value(self._eval_comprehension(node), False)
        if isinstance(node, ast.DictComp):
            self._eval_comprehension(node)
            return _CLEAN
        if isinstance(node, ast.Compare):
            return self._eval_compare(node)
        if isinstance(node, ast.BinOp):
            return _merge([self._eval(node.left), self._eval(node.right)])
        if isinstance(node, ast.BoolOp):
            return _merge([self._eval(v) for v in node.values])
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return _merge([self._eval(node.body), self._eval(node.orelse)])
        if isinstance(node, ast.Subscript):
            base = self._eval(node.value)
            self._eval(node.slice)
            return _Value(base.origin, False)
        if isinstance(node, (ast.Tuple, ast.List)):
            return _Value(
                _merge([self._eval(e) for e in node.elts]).origin, False
            )
        if isinstance(node, ast.Dict):
            parts = [self._eval(v) for v in node.values if v is not None]
            parts += [self._eval(k) for k in node.keys if k is not None]
            return _Value(_merge(parts).origin if parts else None, False)
        if isinstance(node, ast.JoinedStr):
            return _Value(
                _merge(
                    [
                        self._eval(v.value)
                        for v in node.values
                        if isinstance(v, ast.FormattedValue)
                    ]
                ).origin
                if node.values
                else None,
                False,
            )
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.Lambda):
            return _CLEAN
        # Constants and anything unmodeled: clean.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child)
        return _CLEAN

    def _eval_comprehension(self, node) -> Optional[str]:
        origin = None
        for generator in node.generators:
            iterated = self._eval(generator.iter)
            self._flag_unordered_iteration(generator.iter, iterated)
            self._bind(generator.target, _Value(iterated.origin, False), node)
            if iterated.origin and origin is None:
                origin = iterated.origin
            for condition in generator.ifs:
                self._eval(condition)
        if isinstance(node, ast.DictComp):
            parts = [self._eval(node.key), self._eval(node.value)]
        else:
            parts = [self._eval(node.elt)]
        element = _merge(parts)
        return element.origin or origin

    def _eval_compare(self, node: ast.Compare) -> _Value:
        sides = [node.left] + list(node.comparators)
        values = [self._eval(side) for side in sides]
        cost_sides = [_is_cost_operand(side) for side in sides]
        if any(cost_sides):
            for side_cost, value in zip(cost_sides, values):
                if not side_cost and value.tainted:
                    self._emit(
                        node,
                        f"nondeterministic value ({value.origin}) compared "
                        "against a plan cost; cost decisions must replay "
                        "identically",
                    )
                    break
        return _Value(_merge(values).origin, False)

    def _eval_call(self, node: ast.Call) -> _Value:
        arg_values = [self._eval(arg) for arg in node.args]
        arg_values += [self._eval(kw.value) for kw in node.keywords]
        args = _merge(arg_values) if arg_values else _CLEAN
        canonical = self._canonical(node.func)
        last = canonical.rsplit(".", 1)[-1] if canonical else None
        receiver = _CLEAN
        if isinstance(node.func, ast.Attribute):
            receiver = self._eval(node.func.value)
        elif not isinstance(node.func, ast.Name):
            receiver = self._eval(node.func)

        line = getattr(node, "lineno", 0)
        if canonical in _CLOCKS:
            return _Value(f"{canonical}() at line {line}", False)
        if canonical is not None and canonical.endswith(_CLOCK_SUFFIXES):
            return _Value(f"{canonical}() at line {line}", False)
        if canonical in _GLOBAL_RANDOM:
            return _Value(f"global-state {canonical}() at line {line}", False)
        if canonical in _FLAGGED_SOURCES:
            self._emit(
                node,
                f"{_FLAGGED_SOURCES[canonical]}; a replay cannot reproduce "
                "it — derive the value deterministically instead",
            )
            return _Value(f"{canonical}() at line {line}", False)
        if canonical is not None and canonical.startswith("secrets."):
            self._emit(
                node,
                f"{canonical}() draws OS entropy; a replay cannot "
                "reproduce it — derive the value deterministically instead",
            )
            return _Value(f"{canonical}() at line {line}", False)
        if canonical == "hash":
            return _Value(
                f"hash() at line {line} (PYTHONHASHSEED-dependent)", False
            )
        if canonical is not None and (
            canonical == "random.Random" or canonical.endswith(".Random")
        ):
            if args.tainted:
                self._emit(
                    node,
                    f"RNG seeded from a nondeterministic value "
                    f"({args.origin}); seed from the request's seed chain "
                    "instead",
                )
                return _CLEAN
            if not node.args and not node.keywords:
                return _Value(f"unseeded Random() at line {line}", False)
            return _CLEAN
        if last == "seed" and args.tainted:
            self._emit(
                node,
                f"RNG seeded from a nondeterministic value ({args.origin}); "
                "seed from the request's seed chain instead",
            )
            return _CLEAN
        if (
            isinstance(node.func, ast.Attribute)
            and last in ("put", "get")
            and args.tainted
        ):
            receiver_name = _dotted(node.func.value) or ""
            if "cache" in receiver_name.lower():
                self._emit(
                    node,
                    f"nondeterministic value ({args.origin}) used in "
                    f"{receiver_name}.{last}(); cache keys and entries "
                    "must be a function of the query and seed only",
                )
        if last is not None and _KEYFUNC_RE.search(last) and args.tainted:
            self._emit(
                node,
                f"nondeterministic value ({args.origin}) passed to "
                f"{last}(); key/fingerprint inputs must be deterministic",
            )
        if canonical in _ORDER_SAFE:
            return _Value(args.origin, False)
        if canonical in ("set", "frozenset"):
            return _Value(args.origin, True)
        if canonical in ("list", "tuple"):
            # list(s)/tuple(s) of a set materializes the unstable order.
            if args.unordered:
                self._emit(
                    node,
                    f"{canonical}() materializes a set's nondeterministic "
                    "iteration order; wrap in sorted(...) instead",
                )
            return _Value(args.origin, False)
        project_origin = self._project_call_origin(node)
        if project_origin is not None:
            return _Value(project_origin, False)
        unordered = receiver.unordered and last in _SET_METHODS
        return _Value(args.origin or receiver.origin, unordered)

    def _project_call_origin(self, node: ast.Call) -> Optional[str]:
        callgraph = self.program.callgraph()
        for target in callgraph.resolve_call(self.func, node.func):
            if target.qualname in self.nondet:
                return (
                    f"call to {target.name}() at line "
                    f"{getattr(node, 'lineno', 0)} "
                    f"(returns a nondeterministic value)"
                )
        return None


def _analysis_functions(program: ProgramIndex) -> List[FunctionInfo]:
    """Every function, method, and module top level worth analyzing."""
    functions: List[FunctionInfo] = []
    for dotted in sorted(program.modules):
        module = program.modules[dotted]
        if module.is_test_file:
            continue
        functions.append(
            FunctionInfo(
                "<module>", f"{dotted}::<module>", module, module.tree, None, False
            )
        )
        for name in sorted(program.module_functions.get(dotted, {})):
            functions.append(program.module_functions[dotted][name])
        for cls_name in sorted(program.module_classes.get(dotted, {})):
            cls = program.module_classes[dotted][cls_name]
            for method_name in sorted(cls.methods):
                functions.append(cls.methods[method_name])
    return functions


def _body_of(func: FunctionInfo) -> Sequence[ast.stmt]:
    if func.name == "<module>":
        return [
            stmt
            for stmt in func.node.body
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
    return func.node.body


@register_pass
class Determinism(Pass):
    id = "determinism"
    description = (
        "nondeterminism sources (wall clocks, global RNG, OS entropy, set "
        "iteration, completion order) must not flow into plan-affecting "
        "state (memos, cache keys, cost comparisons, seeds, fingerprints)"
    )

    #: Fixpoint cap; nondet-return chains deeper than this are vanishingly
    #: unlikely and the set only ever grows, so truncation is safe.
    max_rounds = 6

    def check_program(self, program: ProgramIndex):
        functions = _analysis_functions(program)
        nondet: Set[str] = set()
        for _ in range(self.max_rounds):
            grew = False
            for func in functions:
                if func.qualname in nondet or func.name == "<module>":
                    continue
                analysis = _FunctionAnalysis(program, func, nondet, None)
                analysis.run(_body_of(func))
                if analysis.returns_tainted:
                    nondet.add(func.qualname)
                    grew = True
            if not grew:
                break
        diagnostics: List[Diagnostic] = []
        for func in functions:
            analysis = _FunctionAnalysis(program, func, nondet, diagnostics)
            analysis.run(_body_of(func))
        seen = set()
        for diagnostic in sorted(diagnostics):
            if diagnostic in seen:
                continue
            seen.add(diagnostic)
            yield diagnostic
