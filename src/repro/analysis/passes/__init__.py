"""One module per whole-program pass; importing registers all of them."""

from repro.analysis.passes import (  # noqa: F401
    determinism,
    guarded_by,
)

__all__ = [
    "determinism",
    "guarded_by",
]
