"""``bench-clock`` — benchmark code must time with ``time.perf_counter``.

``time.time()`` is wall-clock: NTP slews and coarse resolution make the
paper's normed-time measurements (§V-C) noisy or outright wrong.  Inside
``repro/bench/`` and ``benchmarks/`` only ``perf_counter`` (or
``perf_counter_ns``/``monotonic`` for coarse progress reporting) may be
used.  Non-benchmark code may legitimately want wall-clock timestamps, so
the rule only fires on bench paths.
"""

from __future__ import annotations

import ast

from repro.analysis.asthelpers import diagnostic_at, dotted_name
from repro.analysis.registry import Rule, register_rule

__all__ = ["BenchClock"]

_BANNED = {"time.time", "time.clock"}


@register_rule
class BenchClock(Rule):
    id = "bench-clock"
    description = (
        "benchmark code must use time.perf_counter(), never time.time()"
    )

    def check_module(self, module):
        if not module.is_bench_file:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                bad = sorted(
                    alias.name
                    for alias in node.names
                    if alias.name in ("time", "clock")
                )
                if bad:
                    yield diagnostic_at(
                        module,
                        node,
                        self.id,
                        f"`from time import {', '.join(bad)}` imports a "
                        "wall clock into benchmark code; use perf_counter",
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _BANNED:
                    yield diagnostic_at(
                        module,
                        node,
                        self.id,
                        f"{name}() is wall-clock; benchmark timing must use "
                        "time.perf_counter()",
                    )
