"""``no-bare-except`` — a bare ``except:`` swallows everything.

Bare handlers catch ``KeyboardInterrupt``/``SystemExit`` and hide optimizer
bugs as silently-wrong plans.  Catch a concrete exception (the repo has a
:class:`repro.errors.ReproError` hierarchy for exactly this) or at minimum
``Exception``.
"""

from __future__ import annotations

import ast

from repro.analysis.asthelpers import diagnostic_at
from repro.analysis.registry import Rule, register_rule

__all__ = ["NoBareExcept"]


@register_rule
class NoBareExcept(Rule):
    id = "no-bare-except"
    description = "bare `except:` clauses are forbidden; name an exception type"

    def check_module(self, module):
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield diagnostic_at(
                    module,
                    node,
                    self.id,
                    "bare `except:` catches KeyboardInterrupt/SystemExit too; "
                    "catch ReproError or a concrete exception type",
                )
