"""``all-exports`` — ``__all__`` must agree with the module's public defs.

Both directions are checked, for modules that declare ``__all__``:

* every name listed in ``__all__`` must actually be defined (or imported)
  at module top level — a stale entry breaks ``from module import *`` and
  the API docs generated from it;
* every public (non-underscore) top-level function and class must appear in
  ``__all__`` — an unlisted def is an accidental API.

Modules without ``__all__`` (scripts, ``__main__`` shims, tests) are left
alone.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from repro.analysis.asthelpers import diagnostic_at
from repro.analysis.registry import Rule, register_rule

__all__ = ["AllExports"]


def _find_all(tree: ast.Module) -> Optional[Tuple[ast.stmt, List[str]]]:
    """The ``__all__`` assignment and its entries, when statically readable."""
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(
            isinstance(target, ast.Name) and target.id == "__all__"
            for target in targets
        ):
            continue
        if not isinstance(value, (ast.List, ast.Tuple)):
            return None
        names = []
        for element in value.elts:
            if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
                return None
            names.append(element.value)
        return node, names
    return None


def _top_level_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    names.update(
                        element.id
                        for element in target.elts
                        if isinstance(element, ast.Name)
                    )
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, (ast.If, ast.Try)):
            # typing/fallback blocks: collect defs one level down.
            for sub in ast.walk(node):
                if isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    names.add(sub.name)
    return names


@register_rule
class AllExports(Rule):
    id = "all-exports"
    description = (
        "__all__ entries must be defined, and public top-level defs must be "
        "listed in __all__"
    )

    def check_module(self, module):
        if module.is_test_file or module.path.name == "__main__.py":
            return
        found = _find_all(module.tree)
        if found is None:
            return
        all_node, exported = found
        defined = _top_level_names(module.tree)
        for name in exported:
            if name not in defined:
                yield diagnostic_at(
                    module,
                    all_node,
                    self.id,
                    f"__all__ lists {name!r} but the module never defines it",
                )
        exported_set = set(exported)
        for node in module.tree.body:
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if node.name.startswith("_") or node.name in exported_set:
                continue
            yield diagnostic_at(
                module,
                node,
                self.id,
                f"public top-level {node.name!r} is missing from __all__; "
                "export it or prefix it with an underscore",
            )
