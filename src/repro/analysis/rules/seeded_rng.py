"""``seeded-rng`` — every RNG must be an explicitly seeded ``random.Random``.

The paper's Steinbrunn workload (§V-B) is only reproducible when every draw
comes from a seeded generator threaded through the call chain.  Three
spellings break that:

* ``random.Random()`` with no seed argument — nondeterministic fallback;
* module-level calls such as ``random.randrange(...)`` — hidden global
  state that any import order or library call can perturb;
* ``from random import randrange`` — the same global state in disguise.

``random.Random(seed)`` and ``rng.randrange(...)`` on a threaded instance
are the sanctioned forms.  ``random.SystemRandom`` is flagged too: it is
unseedable by construction.
"""

from __future__ import annotations

import ast
from typing import Set

from repro.analysis.asthelpers import diagnostic_at, dotted_name
from repro.analysis.registry import Rule, register_rule

__all__ = ["SeededRng"]

#: Attributes of the ``random`` module that are fine to reference.
_ALLOWED_ATTRS = {"Random"}


def _random_aliases(tree: ast.Module) -> Set[str]:
    """Names the ``random`` module is bound to in this file."""
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    aliases.add(alias.asname or "random")
    return aliases


@register_rule
class SeededRng(Rule):
    id = "seeded-rng"
    description = (
        "RNGs must be explicitly seeded random.Random instances; module-level "
        "random.* calls and bare random.Random() are nondeterministic"
    )

    def check_module(self, module):
        aliases = _random_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = sorted(
                    alias.name
                    for alias in node.names
                    if alias.name not in _ALLOWED_ATTRS
                )
                if bad:
                    yield diagnostic_at(
                        module,
                        node,
                        self.id,
                        f"`from random import {', '.join(bad)}` uses the "
                        "global RNG; thread a seeded random.Random instead",
                    )
                continue
            if not isinstance(node, ast.Call) or not aliases:
                continue
            name = dotted_name(node.func)
            if name is None or "." not in name:
                continue
            prefix, attr = name.rsplit(".", 1)
            if prefix not in aliases:
                continue
            if attr == "Random":
                if not node.args and not node.keywords:
                    yield diagnostic_at(
                        module,
                        node,
                        self.id,
                        "unseeded random.Random(); pass an explicit seed so "
                        "workloads stay reproducible",
                    )
            else:
                yield diagnostic_at(
                    module,
                    node,
                    self.id,
                    f"module-level random.{attr}() uses hidden global state; "
                    "call it on a seeded random.Random instance",
                )
