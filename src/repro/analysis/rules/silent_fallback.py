"""``no-silent-fallback`` — an except body of only ``pass``/``continue``.

Swallowing an exception without recording anything turns failures into
silently-wrong results: a cost model that blew up looks exactly like one
that priced the plan, a skipped query looks like a measured one.  The
resilience layer (``repro.resilience``) exists precisely so that failures
are *recorded* — a degradation report, a ``failures`` entry in the
measurement, a typed re-raise — never dropped.  Handlers must do at least
one observable thing: log, count, substitute a sentinel, or re-raise.
"""

from __future__ import annotations

import ast

from repro.analysis.asthelpers import diagnostic_at
from repro.analysis.registry import Rule, register_rule

__all__ = ["NoSilentFallback"]


@register_rule
class NoSilentFallback(Rule):
    id = "no-silent-fallback"
    description = (
        "except handlers must not silently drop the error "
        "(body of only pass/continue)"
    )

    def check_module(self, module):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if all(isinstance(stmt, (ast.Pass, ast.Continue)) for stmt in node.body):
                yield diagnostic_at(
                    module,
                    node,
                    self.id,
                    "except handler swallows the error without recording it; "
                    "count/report the failure (see repro.resilience) or re-raise",
                )
