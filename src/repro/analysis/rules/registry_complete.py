"""``registry-complete`` — every concrete strategy must be registered.

The Fig. 7–15 benchmark matrix is driven entirely by the name registries
(``PARTITIONINGS``, ``HEURISTICS``, ``PRUNING_STRATEGIES``): a concrete
subclass that never reaches its registry silently drops out of every
experiment.  This project-scope rule walks the class hierarchy across all
analyzed files and reports concrete subclasses of the registered base
classes whose names never appear in the corresponding registry module.

Test files are exempt (test doubles subclass the bases freely), as are
underscore-private and abstract classes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Set

from repro.analysis.asthelpers import decorator_name, diagnostic_at, identifiers_in
from repro.analysis.registry import Rule, register_rule

__all__ = ["RegistryComplete"]


@dataclass(frozen=True)
class _Spec:
    base: str
    registry_suffix: str
    registry_name: str


#: Base class -> the module whose source must mention each concrete subclass.
_SPECS = (
    _Spec("PartitioningStrategy", "repro/partitioning/registry.py", "PARTITIONINGS"),
    _Spec("JoinHeuristic", "repro/heuristics/registry.py", "HEURISTICS"),
    _Spec("PlanGeneratorBase", "repro/core/optimizer.py", "PRUNING_STRATEGIES"),
)

_ABSTRACT_DECORATORS = {"abstractmethod", "abstractproperty"}
_ABSTRACT_BASES = {"ABC", "ABCMeta", "Protocol"}


@dataclass
class _ClassInfo:
    name: str
    module: object
    node: ast.ClassDef
    bases: Set[str]
    is_abstract: bool


def _base_names(node: ast.ClassDef) -> Set[str]:
    names = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
        elif isinstance(base, ast.Subscript):  # Generic[...] style bases
            value = base.value
            if isinstance(value, ast.Name):
                names.add(value.id)
            elif isinstance(value, ast.Attribute):
                names.add(value.attr)
    return names


def _is_abstract(node: ast.ClassDef) -> bool:
    if _ABSTRACT_BASES.intersection(_base_names(node)):
        return True
    for statement in node.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in statement.decorator_list:
                if decorator_name(decorator) in _ABSTRACT_DECORATORS:
                    return True
    return False


def _collect_classes(project) -> Dict[str, List[_ClassInfo]]:
    classes: Dict[str, List[_ClassInfo]] = {}
    for module in project.modules:
        if module.is_test_file:
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                classes.setdefault(node.name, []).append(
                    _ClassInfo(
                        name=node.name,
                        module=module,
                        node=node,
                        bases=_base_names(node),
                        is_abstract=_is_abstract(node),
                    )
                )
    return classes


def _descendants(root: str, classes: Dict[str, List[_ClassInfo]]) -> List[_ClassInfo]:
    """All classes deriving (transitively, by name) from ``root``."""
    reached = {root}
    found: List[_ClassInfo] = []
    changed = True
    while changed:
        changed = False
        for infos in classes.values():
            for info in infos:
                if info.name in reached:
                    continue
                if info.bases & reached:
                    reached.add(info.name)
                    found.append(info)
                    changed = True
    return found


@register_rule
class RegistryComplete(Rule):
    id = "registry-complete"
    description = (
        "concrete PartitioningStrategy / JoinHeuristic / PlanGeneratorBase "
        "subclasses must be referenced by their registry module"
    )
    scope = "project"

    def check_project(self, project):
        classes = _collect_classes(project)
        for spec in _SPECS:
            subclasses = [
                info
                for info in _descendants(spec.base, classes)
                if not info.is_abstract and not info.name.startswith("_")
            ]
            if not subclasses:
                continue
            registry_module = project.find_by_suffix(spec.registry_suffix)
            registered = (
                identifiers_in(registry_module.tree)
                if registry_module is not None
                else set()
            )
            for info in subclasses:
                if info.name in registered:
                    continue
                where = (
                    f"{spec.registry_suffix} ({spec.registry_name})"
                    if registry_module is not None
                    else f"{spec.registry_suffix} (not among the analyzed "
                    "files, so registration cannot be verified)"
                )
                yield diagnostic_at(
                    info.module,
                    info.node,
                    self.id,
                    f"concrete {spec.base} subclass {info.name!r} is not "
                    f"referenced in {where}; register it so it appears in "
                    "the benchmark matrix",
                )
