"""One module per lint rule; importing this package registers all of them."""

from repro.analysis.rules import (  # noqa: F401
    all_exports,
    bare_except,
    bench_clock,
    bitset_discipline,
    context_discipline,
    durable_write,
    float_cost_eq,
    metric_discipline,
    mutable_default,
    registry_complete,
    seeded_rng,
    silent_fallback,
)

__all__ = [
    "all_exports",
    "bare_except",
    "bench_clock",
    "bitset_discipline",
    "context_discipline",
    "durable_write",
    "float_cost_eq",
    "metric_discipline",
    "mutable_default",
    "registry_complete",
    "seeded_rng",
    "silent_fallback",
]
