"""``durable-write`` — library file writes must be crash-safe.

The durable plan store's whole contract is that a crash can never leave
a half-written file behind, and that guarantee only holds if *every*
write path in ``src/repro`` goes through the fsync-disciplined helpers:
:func:`repro.context.store.atomic_write_text` (tmp file → fsync →
rename → directory fsync) for whole-file artifacts, or a
:class:`~repro.context.store.DurableStore` for append-only records.  A
bare ``open(path, "w")`` or ``Path.write_text`` sprinkled anywhere else
re-introduces exactly the torn-file window recovery exists to close.

The rule fires on ``open()``/``.open()`` calls whose mode constant
contains any of ``w``/``a``/``x``/``+`` and on any ``.write_text`` /
``.write_bytes`` call, in non-test modules under ``src/repro``.  The
store module itself is exempt (it *is* the helper), and intentionally
non-durable writers — e.g. the benchmark checkpoint writer, where a torn
checkpoint merely restarts one grid cell — opt out per line with
``# repro: disable=durable-write``.
"""

from __future__ import annotations

import ast

from repro.analysis.asthelpers import diagnostic_at, dotted_name
from repro.analysis.registry import Rule, register_rule

__all__ = ["DurableWrite"]

_WRITE_FLAGS = set("wax+")
_MODE_CHARS = set("rwaxbt+")
#: Module-level open functions whose mode is the second positional arg.
_OPEN_FUNCTIONS = {"open", "io.open", "os.fdopen"}
#: The helper module is where the discipline lives; it may hold raw handles.
_EXEMPT_SUFFIX = "/repro/context/store.py"


def _mode_constant(node: ast.Call, position: int):
    """The call's mode argument, if it is a plausible constant mode string."""
    candidate = None
    for keyword in node.keywords:
        if keyword.arg == "mode":
            candidate = keyword.value
            break
    if candidate is None and len(node.args) > position:
        candidate = node.args[position]
    if (
        isinstance(candidate, ast.Constant)
        and isinstance(candidate.value, str)
        and 0 < len(candidate.value) <= 3
        and set(candidate.value) <= _MODE_CHARS
    ):
        return candidate.value
    return None


@register_rule
class DurableWrite(Rule):
    id = "durable-write"
    description = (
        "file writes under src/repro must go through the fsync-disciplined "
        "store helpers (atomic_write_text / DurableStore)"
    )

    def check_module(self, module):
        if "/src/repro/" not in module.posix or module.is_test_file:
            return
        if module.posix.endswith(_EXEMPT_SUFFIX):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _OPEN_FUNCTIONS:
                mode = _mode_constant(node, 1)
                if mode is not None and _WRITE_FLAGS & set(mode):
                    yield diagnostic_at(
                        module,
                        node,
                        self.id,
                        f"{name}(..., {mode!r}) writes without the tmp-file/"
                        "fsync/rename discipline; use repro.context.store."
                        "atomic_write_text (or a DurableStore) so a crash "
                        "cannot leave a torn file",
                    )
            elif isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                if attr in ("write_text", "write_bytes"):
                    yield diagnostic_at(
                        module,
                        node,
                        self.id,
                        f".{attr}() is not crash-safe (no tmp-file rename, "
                        "no fsync); use repro.context.store.atomic_write_text",
                    )
                elif attr == "open":
                    mode = _mode_constant(node, 0)
                    if mode is not None and _WRITE_FLAGS & set(mode):
                        yield diagnostic_at(
                            module,
                            node,
                            self.id,
                            f".open({mode!r}) writes without the tmp-file/"
                            "fsync/rename discipline; use repro.context."
                            "store.atomic_write_text so a crash cannot "
                            "leave a torn file",
                        )
