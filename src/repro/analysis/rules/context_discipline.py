"""``context-discipline`` — the substrate is built in repro/context/ only.

:class:`~repro.cost.statistics.StatisticsProvider` and
:class:`~repro.plans.builder.PlanBuilder` are the per-query substrate that
:class:`~repro.context.OptimizationContext` owns.  Constructing either
directly anywhere else re-opens the aliasing and duplicated-state bugs the
context refactor removed (a cost model bound to the wrong provider, a
builder whose counters nobody reads).  Library code must go through
``OptimizationContext.for_query`` or
:func:`~repro.context.statistics_for`; only ``repro/context/`` itself, the
defining modules, and tests may call the constructors.
"""

from __future__ import annotations

import ast
from typing import Iterable, Tuple

from repro.analysis.asthelpers import diagnostic_at
from repro.analysis.registry import Rule, register_rule

__all__ = ["ContextDiscipline"]

#: Class names whose direct construction is reserved to repro/context/.
_GUARDED = ("StatisticsProvider", "PlanBuilder")

#: Path fragments where construction is legitimate: the context package
#: itself and the modules that define the guarded classes.
_ALLOWED_FRAGMENTS = (
    "repro/context/",
    "repro/cost/statistics.py",
    "repro/plans/builder.py",
)


def _findings(tree: ast.Module) -> Iterable[Tuple[ast.AST, str]]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in _GUARDED:
            yield node, (
                f"direct {name}(...) construction outside repro/context/; "
                "use OptimizationContext.for_query() or "
                "repro.context.statistics_for() instead"
            )


@register_rule
class ContextDiscipline(Rule):
    id = "context-discipline"
    description = (
        "StatisticsProvider/PlanBuilder may only be constructed inside "
        "repro/context/ (everything else goes through OptimizationContext "
        "or statistics_for)"
    )

    def check_module(self, module):
        if module.is_test_file:
            return
        if any(fragment in module.posix for fragment in _ALLOWED_FRAGMENTS):
            return
        for node, message in _findings(module.tree):
            yield diagnostic_at(module, node, self.id, message)
