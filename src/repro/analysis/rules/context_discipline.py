"""``context-discipline`` — the substrate is built in repro/context/ only.

:class:`~repro.cost.statistics.StatisticsProvider` and
:class:`~repro.plans.builder.PlanBuilder` are the per-query substrate that
:class:`~repro.context.OptimizationContext` owns.  Constructing either
directly anywhere else re-opens the aliasing and duplicated-state bugs the
context refactor removed (a cost model bound to the wrong provider, a
builder whose counters nobody reads).  Library code must go through
``OptimizationContext.for_query`` or
:func:`~repro.context.statistics_for`; only ``repro/context/`` itself, the
defining modules, and tests may call the constructors.

:class:`~repro.plans.memo.MemoTable` joined the guarded set with the top-k
refactor: a memo constructed outside the plan generators cannot see the
context's ``topk`` knob, so it would silently run single-best while the
caller believes it is ranked.  Construction is reserved to ``repro/plans/``
(the defining package), ``repro/core/`` and ``repro/baselines/`` (the
generators, which thread ``k=context.topk`` through).
"""

from __future__ import annotations

import ast
from typing import Iterable, Tuple

from repro.analysis.asthelpers import diagnostic_at
from repro.analysis.registry import Rule, register_rule

__all__ = ["ContextDiscipline"]

#: Guarded class name -> (path fragments where construction is legitimate,
#: remediation hint).
_GUARDED = {
    "StatisticsProvider": (
        ("repro/context/", "repro/cost/statistics.py"),
        "use OptimizationContext.for_query() or "
        "repro.context.statistics_for() instead",
    ),
    "PlanBuilder": (
        ("repro/context/", "repro/plans/builder.py"),
        "use OptimizationContext.for_query() or "
        "repro.context.statistics_for() instead",
    ),
    "MemoTable": (
        ("repro/plans/", "repro/core/", "repro/baselines/"),
        "let a plan generator build it with k=context.topk "
        "(a bare memo ignores the context's ranked depth)",
    ),
}


def _findings(
    tree: ast.Module, posix: str
) -> Iterable[Tuple[ast.AST, str]]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name not in _GUARDED:
            continue
        allowed, hint = _GUARDED[name]
        if any(fragment in posix for fragment in allowed):
            continue
        yield node, (
            f"direct {name}(...) construction outside "
            f"{', '.join(allowed)}; {hint}"
        )


@register_rule
class ContextDiscipline(Rule):
    id = "context-discipline"
    description = (
        "StatisticsProvider/PlanBuilder may only be constructed inside "
        "repro/context/, and MemoTable only inside repro/plans|core|"
        "baselines (everything else goes through OptimizationContext)"
    )

    def check_module(self, module):
        if module.is_test_file:
            return
        for node, message in _findings(module.tree, module.posix):
            yield diagnostic_at(module, node, self.id, message)
