"""``bitset-discipline`` — vertex-set bit-twiddling belongs in graph/bitset.py.

Vertex sets are plain ``int`` bitsets and ``repro/graph/bitset.py`` is, by
contract (docs/architecture.md), the only module that knows the encoding.
Raw ``1 << v``, ``s & -s``, ``.bit_length()``, ``bin(s).count("1")`` and
``s.bit_count()`` spellings anywhere else bypass that vocabulary; they should call
:func:`~repro.graph.bitset.singleton`, :func:`~repro.graph.bitset.lowest_bit`
and friends instead.  Hot loops that deliberately inline the tricks carry a
``# repro: disable=bitset-discipline`` pragma with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Tuple

from repro.analysis.asthelpers import diagnostic_at
from repro.analysis.registry import Rule, register_rule

__all__ = ["BitsetDiscipline"]

#: The one module allowed to spell out the encoding.
_ALLOWED_SUFFIX = "repro/graph/bitset.py"


def _findings(tree: ast.Module) -> Iterable[Tuple[ast.AST, str]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.BinOp):
            if (
                isinstance(node.op, ast.LShift)
                and isinstance(node.left, ast.Constant)
                and node.left.value == 1
            ):
                yield node, (
                    "raw `1 << v` bitset construction; use "
                    "bitset.singleton()/bitset.full_set() instead"
                )
            elif isinstance(node.op, ast.BitAnd) and (
                isinstance(node.left, ast.UnaryOp)
                and isinstance(node.left.op, ast.USub)
                or isinstance(node.right, ast.UnaryOp)
                and isinstance(node.right.op, ast.USub)
            ):
                yield node, (
                    "raw `s & -s` lowest-bit trick; use bitset.lowest_bit() "
                    "or bitset.iter_bits() instead"
                )
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "bit_length":
                yield node, (
                    "raw `.bit_length()` on a vertex set; use "
                    "bitset.highest_index()/bitset.highest_bit() instead"
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "count"
                and isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "bin"
            ):
                yield node, (
                    'raw `bin(s).count("1")` popcount; use '
                    "bitset.bit_count() instead"
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "bit_count"
                and not node.args
                and not node.keywords
            ):
                # `s.bit_count()` (no arguments) is the raw int method;
                # `bitset.bit_count(s)` / `bit_count(s)` are the module's
                # functions and carry the set argument, so they never
                # match this arity.
                yield node, (
                    "raw `.bit_count()` method popcount; use "
                    "bitset.bit_count() instead"
                )


@register_rule
class BitsetDiscipline(Rule):
    id = "bitset-discipline"
    description = (
        "raw bitset tricks (1 << v, s & -s, .bit_length(), bin().count, "
        ".bit_count()) are only allowed inside repro/graph/bitset.py"
    )

    def check_module(self, module):
        if module.posix.endswith(_ALLOWED_SUFFIX):
            return
        for node, message in _findings(module.tree):
            yield diagnostic_at(module, node, self.id, message)
