"""``metric-discipline`` — metrics flow through the telemetry registry.

The telemetry layer (:mod:`repro.telemetry`) is the single place the repo
counts things for operators.  Three patterns undermine it:

* **ad-hoc module-level counters** — an integer bound at module level and
  mutated through ``global``.  Invisible to the exposition endpoint,
  racy under the service's worker threads, and unresettable in tests.
  Counters belong on a :class:`~repro.telemetry.MetricRegistry`;
* **hand-constructed instruments** — ``Counter(...)`` / ``Gauge(...)`` /
  ``Histogram(...)`` built directly instead of via the registry's
  get-or-create accessors.  A free-floating instrument never appears in
  ``expose_text()`` and silently forks the metric namespace;
* **off-convention names** — registry calls with a literal metric name
  that is not ``repro_``-prefixed ``snake_case``, or a counter whose name
  does not end in ``_total`` (the Prometheus counter convention every
  dashboard query in ``docs/telemetry.md`` assumes).

Only string-literal names are checked — the adapters render some names
with f-strings, and those templates live inside ``repro/telemetry/``
where this rule (like the instrument-construction check) does not apply.
Tests are exempt throughout.
"""

from __future__ import annotations

import ast
import re
from typing import Set

from repro.analysis.asthelpers import diagnostic_at, dotted_name
from repro.analysis.registry import Rule, register_rule

__all__ = ["MetricDiscipline"]

#: Valid exposition metric name: repro_-prefixed snake_case.
_NAME_RE = re.compile(r"^repro_[a-z][a-z0-9_]*$")

#: Instrument classes that must be obtained from a registry.
_INSTRUMENTS = {"Counter", "Gauge", "Histogram"}

#: Registry get-or-create accessors whose first argument is a metric name.
_GETTERS = {"counter", "gauge", "histogram"}


def _instrument_imports(tree: ast.Module) -> Set[str]:
    """Local names the telemetry instrument classes are imported under."""
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and (
            node.module == "repro.telemetry"
            or node.module.startswith("repro.telemetry.")
        ):
            for alias in node.names:
                if alias.name in _INSTRUMENTS:
                    names.add(alias.asname or alias.name)
    return names


def _module_level_ints(tree: ast.Module) -> Set[str]:
    """Names bound at module level to a plain integer literal."""
    names = set()
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if not (
            isinstance(value, ast.Constant)
            and type(value.value) is int  # excludes bool
        ):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


@register_rule
class MetricDiscipline(Rule):
    id = "metric-discipline"
    description = (
        "metrics go through MetricRegistry with repro_-prefixed snake_case "
        "names (counters ending in _total); no ad-hoc global counters"
    )

    def check_module(self, module):
        if module.is_test_file or "telemetry" in module.path.parts:
            return
        instrument_names = _instrument_imports(module.tree)
        global_ints = _module_level_ints(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Global):
                for name in node.names:
                    if name in global_ints:
                        yield diagnostic_at(
                            module,
                            node,
                            self.id,
                            f"module-level counter {name!r} mutated via "
                            "`global` is invisible to telemetry; record it "
                            "on a MetricRegistry instead",
                        )
                continue
            if not isinstance(node, ast.Call):
                continue
            func_name = dotted_name(node.func)
            if func_name in instrument_names or (
                func_name is not None
                and func_name.startswith("repro.telemetry")
                and func_name.rsplit(".", 1)[-1] in _INSTRUMENTS
            ):
                yield diagnostic_at(
                    module,
                    node,
                    self.id,
                    f"direct {func_name.rsplit('.', 1)[-1]}(...) construction "
                    "bypasses the registry and never reaches expose_text(); "
                    "use MetricRegistry.counter()/gauge()/histogram()",
                )
                continue
            if not (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _GETTERS
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                continue
            metric = node.args[0].value
            if not _NAME_RE.match(metric):
                yield diagnostic_at(
                    module,
                    node,
                    self.id,
                    f"metric name {metric!r} breaks the naming scheme; use "
                    "repro_-prefixed snake_case (see docs/telemetry.md)",
                )
            elif node.func.attr == "counter" and not metric.endswith("_total"):
                yield diagnostic_at(
                    module,
                    node,
                    self.id,
                    f"counter {metric!r} must end in _total (Prometheus "
                    "counter convention)",
                )
