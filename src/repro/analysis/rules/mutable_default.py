"""``no-mutable-default`` — mutable default argument values are shared state.

A ``def f(xs=[])`` default is evaluated once and shared by every call; with
optimizers that memoize per-query state this is a classic source of
cross-query contamination.  Use ``None`` plus an in-body default (or
``dataclasses.field(default_factory=...)``).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.asthelpers import diagnostic_at
from repro.analysis.registry import Rule, register_rule

__all__ = ["NoMutableDefault"]

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque"}


def _mutable_kind(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        if name in _MUTABLE_CALLS:
            return name
    return None


def _defaults(function: ast.AST) -> Iterator[ast.expr]:
    args = function.args
    for default in [*args.defaults, *args.kw_defaults]:
        if default is not None:
            yield default


@register_rule
class NoMutableDefault(Rule):
    id = "no-mutable-default"
    description = "function arguments must not default to mutable objects"

    def check_module(self, module):
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            for default in _defaults(node):
                kind = _mutable_kind(default)
                if kind is not None:
                    yield diagnostic_at(
                        module,
                        default,
                        self.id,
                        f"mutable default ({kind}) is shared across calls; "
                        "default to None and build it in the body",
                    )
