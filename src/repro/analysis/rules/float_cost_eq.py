"""``no-float-cost-eq`` — costs are floats; never compare them with ``==``.

Accumulated plan costs are sums of floating-point operator costs, and two
mathematically equal sums routinely differ in the last ulp depending on
association order.  A ``==``/``!=`` against a cost expression silently
becomes a latent heisenbug (a plan validated on one machine fails on
another).  Use :func:`repro.cost.compare.costs_close` /
:func:`repro.cost.compare.cost_is_zero` or ``pytest.approx`` instead.

Heuristic: a comparison operand "is a cost" when any identifier in it
contains ``cost`` (``plan.cost``, ``reference_cost``, ``cost_model`` ...).
Comparisons where some operand is already a ``pytest.approx(...)`` /
``math.isclose(...)`` call are accepted.
"""

from __future__ import annotations

import ast

from repro.analysis.asthelpers import decorator_name, diagnostic_at, walk_identifiers
from repro.analysis.registry import Rule, register_rule

__all__ = ["NoFloatCostEq"]


def _mentions_cost(node: ast.expr) -> bool:
    return any("cost" in identifier.lower() for identifier in walk_identifiers(node))


def _is_approx_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    return decorator_name(node.func) in {"approx", "isclose"}


@register_rule
class NoFloatCostEq(Rule):
    id = "no-float-cost-eq"
    description = (
        "cost expressions must not be compared with == / !=; use "
        "repro.cost.compare.costs_close or pytest.approx"
    )

    def check_module(self, module):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(_is_approx_call(operand) for operand in operands):
                continue
            if any(_mentions_cost(operand) for operand in operands):
                yield diagnostic_at(
                    module,
                    node,
                    self.id,
                    "cost compared with == / !=; floats need an epsilon — "
                    "use costs_close()/cost_is_zero() or pytest.approx",
                )
