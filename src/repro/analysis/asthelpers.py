"""Small AST utilities shared by the rule implementations."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.diagnostics import Diagnostic

__all__ = [
    "diagnostic_at",
    "dotted_name",
    "decorator_name",
    "identifiers_in",
    "walk_identifiers",
]


def diagnostic_at(module, node: ast.AST, rule: str, message: str) -> Diagnostic:
    """Build a diagnostic pointing at ``node`` inside ``module``."""
    return Diagnostic(
        path=module.display_path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        rule=rule,
        message=message,
    )


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` for Name/Attribute chains, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        prefix = dotted_name(node.value)
        if prefix is None:
            return None
        return f"{prefix}.{node.attr}"
    return None


def decorator_name(node: ast.expr) -> Optional[str]:
    """Last identifier of a decorator (``abc.abstractmethod`` -> ``abstractmethod``)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def walk_identifiers(node: ast.AST) -> Iterator[str]:
    """Yield every Name id and Attribute attr appearing under ``node``."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
        elif isinstance(child, ast.Attribute):
            yield child.attr


def identifiers_in(node: ast.AST) -> Set[str]:
    """Set of every identifier appearing under ``node``."""
    return set(walk_identifiers(node))
