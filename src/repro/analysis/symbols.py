"""Project-wide symbol table: the first half of the whole-program tier.

A :class:`ProgramIndex` is built once per analysis run from the parsed
:class:`~repro.analysis.engine.Project` and gives passes what a single
module's AST cannot:

* a **module map** from dotted names (``repro.service.queue``) to parsed
  :class:`~repro.analysis.engine.ModuleContext` s, with suffix matching so
  fixture trees rooted in temporary directories resolve the same way the
  real ``src/`` tree does;
* per-module **import tables** (``from m import x as y`` -> ``y`` means
  ``m.x``), including relative imports;
* every **class** with its methods, resolved base classes, and the
  **hierarchy units** (connected components of the project-resolvable
  inheritance graph) the ``guarded-by`` pass analyzes as one lock domain;
* every module-level **function**.

Everything is ordered deterministically (sorted dotted names) so pass
output is stable across runs and platforms, like the rest of the linter.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Dict, List, Optional, Tuple

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ProgramIndex",
    "module_dotted_name",
    "class_level_assign_lines",
]

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def module_dotted_name(display_path: str) -> str:
    """Derive a dotted module name from a path.

    ``src/repro/service/queue.py`` -> ``repro.service.queue`` (the segment
    up to and including the last ``src`` is dropped); ``pkg/__init__.py``
    -> ``pkg``.  Absolute fixture paths keep every segment, which is fine —
    import resolution matches on dotted-name *suffixes*.
    """
    parts = [part for part in PurePosixPath(display_path).parts if part != "/"]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    return ".".join(part for part in parts if part)


class FunctionInfo:
    """One function or method definition, with enough context to report on."""

    __slots__ = ("name", "qualname", "module", "node", "cls", "is_property")

    def __init__(self, name, qualname, module, node, cls, is_property):
        self.name = name
        #: ``module::Class.method`` or ``module::function``.
        self.qualname = qualname
        self.module = module
        self.node = node
        self.cls: Optional["ClassInfo"] = cls
        self.is_property = is_property

    @property
    def is_public(self) -> bool:
        """Callable from outside the class: no leading underscore, or dunder."""
        return not self.name.startswith("_") or (
            self.name.startswith("__") and self.name.endswith("__")
        )

    def __repr__(self) -> str:
        return f"FunctionInfo({self.qualname})"


class ClassInfo:
    """One class definition plus its resolved project-internal bases."""

    __slots__ = ("name", "qualname", "module", "node", "base_names", "methods")

    def __init__(self, name, qualname, module, node):
        self.name = name
        self.qualname = qualname
        self.module = module
        self.node = node
        #: Base expressions as written (dotted strings), resolved lazily.
        self.base_names: List[str] = []
        self.methods: Dict[str, FunctionInfo] = {}

    def __repr__(self) -> str:
        return f"ClassInfo({self.qualname})"


def _decorator_names(node) -> List[str]:
    names = []
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, ast.Attribute):
            names.append(target.attr)
    return names


def _dotted(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        prefix = _dotted(node.value)
        return None if prefix is None else f"{prefix}.{node.attr}"
    return None


class ProgramIndex:
    """The whole-program view passes run against."""

    def __init__(self, project):
        self.project = project
        #: dotted module name -> ModuleContext (sorted insertion order).
        self.modules: Dict[str, object] = {}
        #: display_path -> dotted module name.
        self.module_names: Dict[str, str] = {}
        #: dotted module name -> {local name -> imported dotted target}.
        self.imports: Dict[str, Dict[str, str]] = {}
        #: class qualname -> ClassInfo.
        self.classes: Dict[str, ClassInfo] = {}
        #: dotted module name -> {class name -> ClassInfo}.
        self.module_classes: Dict[str, Dict[str, ClassInfo]] = {}
        #: function qualname -> FunctionInfo (module-level only).
        self.functions: Dict[str, FunctionInfo] = {}
        #: dotted module name -> {function name -> FunctionInfo}.
        self.module_functions: Dict[str, Dict[str, FunctionInfo]] = {}
        self._callgraph = None
        for module in sorted(project.modules, key=lambda m: m.display_path):
            self._index_module(module)

    # -- construction --------------------------------------------------

    def _index_module(self, module) -> None:
        dotted = module_dotted_name(module.display_path)
        if dotted in self.modules:  # duplicate basename collision: keep first
            dotted = module.display_path
        self.modules[dotted] = module
        self.module_names[module.display_path] = dotted
        self.imports[dotted] = self._collect_imports(module.tree, dotted)
        self.module_classes[dotted] = {}
        self.module_functions[dotted] = {}
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                self._index_class(module, dotted, node)
            elif isinstance(node, _FUNCTION_NODES):
                info = FunctionInfo(
                    node.name,
                    f"{dotted}::{node.name}",
                    module,
                    node,
                    None,
                    False,
                )
                self.functions[info.qualname] = info
                self.module_functions[dotted][node.name] = info

    def _index_class(self, module, dotted: str, node: ast.ClassDef) -> None:
        info = ClassInfo(node.name, f"{dotted}::{node.name}", module, node)
        for base in node.bases:
            base_name = _dotted(base)
            if base_name is not None:
                info.base_names.append(base_name)
        for child in node.body:
            if isinstance(child, _FUNCTION_NODES):
                decorators = _decorator_names(child)
                info.methods[child.name] = FunctionInfo(
                    child.name,
                    f"{info.qualname}.{child.name}",
                    module,
                    child,
                    info,
                    "property" in decorators or "cached_property" in decorators,
                )
        self.classes[info.qualname] = info
        self.module_classes[dotted][info.name] = info

    def _collect_imports(self, tree: ast.Module, dotted: str) -> Dict[str, str]:
        table: Dict[str, str] = {}
        package = dotted.split(".")
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        table[alias.asname] = alias.name
                    else:
                        # `import a.b` binds `a`; track the full target too.
                        table[alias.name.split(".")[0]] = alias.name.split(".")[0]
                        table[alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    anchor = package[: len(package) - node.level]
                    base = ".".join(anchor + ([base] if base else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    table[local] = f"{base}.{alias.name}" if base else alias.name
        return table

    # -- resolution ----------------------------------------------------

    def resolve_module(self, dotted: str):
        """Module context for ``dotted``, matching by exact name or suffix."""
        found = self.modules.get(dotted)
        if found is not None:
            return found
        suffix = "." + dotted
        for name in sorted(self.modules):
            if name.endswith(suffix):
                return self.modules[name]
        return None

    def _module_name_of(self, module) -> str:
        return self.module_names.get(
            module.display_path, module_dotted_name(module.display_path)
        )

    def resolve_class(self, from_module, name: str) -> Optional[ClassInfo]:
        """Resolve ``name`` (bare or dotted, as written in ``from_module``)."""
        dotted = self._module_name_of(from_module)
        local = self.module_classes.get(dotted, {})
        if name in local:
            return local[name]
        imports = self.imports.get(dotted, {})
        head, _, rest = name.partition(".")
        target = imports.get(name) or imports.get(head)
        if target is None:
            return None
        if name in imports:
            # `from m import Cls` — target is m.Cls.
            mod_name, _, cls_name = imports[name].rpartition(".")
            holder = self.resolve_module(mod_name)
            if holder is None:
                return None
            return self.module_classes.get(self._module_name_of(holder), {}).get(
                cls_name
            )
        if rest:
            # `m.Cls` via `import m` (possibly dotted further: `a.b.Cls`).
            mod_part, _, cls_name = name.rpartition(".")
            resolved_mod = imports.get(mod_part, mod_part)
            holder = self.resolve_module(resolved_mod)
            if holder is None:
                return None
            return self.module_classes.get(self._module_name_of(holder), {}).get(
                cls_name
            )
        return None

    def resolve_function(self, from_module, name: str) -> Optional[FunctionInfo]:
        """Resolve a called name to a module-level project function."""
        dotted = self._module_name_of(from_module)
        local = self.module_functions.get(dotted, {})
        if name in local:
            return local[name]
        imports = self.imports.get(dotted, {})
        if name in imports:
            mod_name, _, func_name = imports[name].rpartition(".")
            holder = self.resolve_module(mod_name)
            if holder is None:
                return None
            return self.module_functions.get(
                self._module_name_of(holder), {}
            ).get(func_name)
        if "." in name:
            mod_part, _, func_name = name.rpartition(".")
            resolved_mod = imports.get(mod_part, mod_part)
            holder = self.resolve_module(resolved_mod)
            if holder is None:
                return None
            return self.module_functions.get(
                self._module_name_of(holder), {}
            ).get(func_name)
        return None

    def base_classes(self, info: ClassInfo) -> List[ClassInfo]:
        """Project-resolvable direct bases of ``info`` (external bases drop)."""
        bases = []
        for base_name in info.base_names:
            resolved = self.resolve_class(info.module, base_name)
            if resolved is not None:
                bases.append(resolved)
        return bases

    def hierarchy_units(self) -> List[List[ClassInfo]]:
        """Connected components of the inheritance graph, each sorted.

        A unit is the set of classes the ``guarded-by`` pass treats as one
        lock domain: a base class and every project subclass share attribute
        inference, so a subclass in another module inherits (and must honor)
        the base's guard map.
        """
        parent: Dict[str, str] = {name: name for name in self.classes}

        def find(name: str) -> str:
            while parent[name] != name:
                parent[name] = parent[parent[name]]
                name = parent[name]
            return name

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[max(ra, rb)] = min(ra, rb)

        for qualname in sorted(self.classes):
            for base in self.base_classes(self.classes[qualname]):
                union(qualname, base.qualname)

        groups: Dict[str, List[ClassInfo]] = {}
        for qualname in sorted(self.classes):
            groups.setdefault(find(qualname), []).append(self.classes[qualname])
        return [groups[root] for root in sorted(groups)]

    def unit_methods(self, unit: List[ClassInfo]) -> List[FunctionInfo]:
        """Every method defined anywhere in a hierarchy unit, sorted."""
        methods = []
        for cls in sorted(unit, key=lambda c: c.qualname):
            for name in sorted(cls.methods):
                methods.append(cls.methods[name])
        return methods

    def resolve_methods(
        self, unit: List[ClassInfo], name: str
    ) -> List[FunctionInfo]:
        """Every method named ``name`` in a unit (all overrides).

        ``self.m()`` inside a hierarchy can land on any override depending
        on the dynamic type, so lock-context propagation applies the call
        context to each of them.
        """
        return [
            cls.methods[name]
            for cls in sorted(unit, key=lambda c: c.qualname)
            if name in cls.methods
        ]

    # -- call graph ----------------------------------------------------

    def callgraph(self):
        """The lazily-built project call graph (cached per index)."""
        if self._callgraph is None:
            from repro.analysis.callgraph import CallGraph

            self._callgraph = CallGraph(self)
        return self._callgraph

    def stats(self) -> Dict[str, int]:
        """Index size summary (used by ``--list-passes`` style debugging)."""
        return {
            "modules": len(self.modules),
            "classes": len(self.classes),
            "functions": len(self.functions),
        }

    def __repr__(self) -> str:
        sizes = self.stats()
        return (
            f"ProgramIndex({sizes['modules']} modules, "
            f"{sizes['classes']} classes, {sizes['functions']} functions)"
        )


def class_level_assign_lines(info: ClassInfo) -> Dict[str, int]:
    """Class-body attribute declarations: name -> line (for pragma lookup)."""
    lines: Dict[str, int] = {}
    for node in info.node.body:
        targets: Tuple[ast.expr, ...] = ()
        if isinstance(node, ast.Assign):
            targets = tuple(node.targets)
        elif isinstance(node, ast.AnnAssign):
            targets = (node.target,)
        for target in targets:
            if isinstance(target, ast.Name):
                lines[target.id] = node.lineno
    return lines
