"""SARIF 2.1.0 rendering for CI code-scanning upload.

One run, one driver (``repro-lint``); every rule/pass that *could* have
fired is listed in the driver's rule catalogue so ``ruleIndex`` is stable
across runs regardless of which rules actually produced results.
"""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Pseudo-rule for unparsable files; not in the registry but can appear in
#: results, so it must appear in the catalogue too.
_SYNTAX_ERROR_ID = "syntax-error"
_SYNTAX_ERROR_DESCRIPTION = "file does not parse"


def render_sarif(
    diagnostics: Sequence[Diagnostic],
    files_checked: int,
    rules: Sequence[Rule],
) -> str:
    """Serialize ``diagnostics`` as a SARIF 2.1.0 log (a JSON string)."""
    catalogue: List[dict] = []
    index_of = {}
    for rule in rules:
        index_of[rule.id] = len(catalogue)
        catalogue.append(
            {
                "id": rule.id,
                "shortDescription": {"text": rule.description},
            }
        )
    index_of[_SYNTAX_ERROR_ID] = len(catalogue)
    catalogue.append(
        {
            "id": _SYNTAX_ERROR_ID,
            "shortDescription": {"text": _SYNTAX_ERROR_DESCRIPTION},
        }
    )

    results = []
    for diagnostic in diagnostics:
        result = {
            "ruleId": diagnostic.rule,
            "level": "error",
            "message": {"text": diagnostic.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": diagnostic.path},
                        "region": {
                            "startLine": diagnostic.line,
                            "startColumn": diagnostic.col,
                        },
                    }
                }
            ],
        }
        if diagnostic.rule in index_of:
            result["ruleIndex"] = index_of[diagnostic.rule]
        results.append(result)

    log = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/"
                            "static_analysis.md"
                        ),
                        "rules": catalogue,
                    }
                },
                "properties": {"filesChecked": files_checked},
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
