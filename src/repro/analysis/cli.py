"""Command-line front end: ``python -m repro.analysis`` / ``repro-lint``.

Exit codes are stable so CI can gate on them:

* ``0`` — no diagnostics;
* ``1`` — at least one diagnostic (including ``syntax-error``);
* ``2`` — usage error (nonexistent path, unknown rule id).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.diagnostics import render_json, render_text
from repro.analysis.engine import run_analysis
from repro.analysis.registry import Rule, UnknownRuleError, all_rules, get_rule

__all__ = ["main", "build_parser"]

#: Default lint targets when the working directory is the repo root.
_DEFAULT_TARGETS = ("src", "benchmarks")

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant linter for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default="",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        default="",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _split_ids(raw: str) -> List[str]:
    return [part.strip() for part in raw.split(",") if part.strip()]


def _resolve_rules(select: str, ignore: str) -> List[Rule]:
    selected = _split_ids(select)
    ignored = set(_split_ids(ignore))
    for rule_id in ignored:
        get_rule(rule_id)  # typo check; raises UnknownRuleError
    rules = [get_rule(rule_id) for rule_id in selected] if selected else all_rules()
    return [rule for rule in rules if rule.id not in ignored]


def _default_paths() -> List[str]:
    present = [target for target in _DEFAULT_TARGETS if Path(target).exists()]
    return present or ["."]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in all_rules():
            print(f"{rule.id:20s} {rule.description}")
        return EXIT_CLEAN

    try:
        rules = _resolve_rules(options.select, options.ignore)
    except UnknownRuleError as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return EXIT_USAGE

    paths = options.paths or _default_paths()
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        print(
            f"repro-lint: no such file or directory: {', '.join(missing)}",
            file=sys.stderr,
        )
        return EXIT_USAGE

    result = run_analysis(paths, rules)
    renderer = render_json if options.format == "json" else render_text
    print(renderer(result.diagnostics, result.files_checked))
    return EXIT_CLEAN if result.ok else EXIT_VIOLATIONS


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
