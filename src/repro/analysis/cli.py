"""Command-line front end: ``python -m repro.analysis`` / ``repro-lint``.

Exit codes are stable so CI can gate on them:

* ``0`` — no diagnostics;
* ``1`` — at least one diagnostic (including ``syntax-error``);
* ``2`` — usage error (nonexistent path, unknown rule or pass id).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.diagnostics import render_json, render_text
from repro.analysis.engine import iter_python_files, run_analysis
from repro.analysis.gitchanged import DEFAULT_CHANGED_REF, changed_python_files
from repro.analysis.registry import (
    Pass,
    Rule,
    UnknownRuleError,
    all_passes,
    all_rules,
    get_pass,
    get_rule,
)
from repro.analysis.sarif import render_sarif

__all__ = ["main", "build_parser"]

#: Default lint targets when the working directory is the repo root.
_DEFAULT_TARGETS = ("src", "benchmarks")

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant linter for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default="",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        default="",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--passes",
        metavar="PASSES",
        default="",
        help=(
            "comma-separated whole-program pass ids to run in addition to "
            "the per-file rules, or 'all' (default: none)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--list-passes",
        action="store_true",
        help="print the whole-program pass catalogue and exit",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "lint only files changed relative to --changed-ref (falls back "
            "to a full run when git is unavailable)"
        ),
    )
    parser.add_argument(
        "--changed-ref",
        metavar="REF",
        default=DEFAULT_CHANGED_REF,
        help=f"base ref for --changed-only (default: {DEFAULT_CHANGED_REF})",
    )
    return parser


def _split_ids(raw: str) -> List[str]:
    return [part.strip() for part in raw.split(",") if part.strip()]


def _resolve_rules(select: str, ignore: str) -> List[Rule]:
    selected = _split_ids(select)
    ignored = set(_split_ids(ignore))
    for rule_id in sorted(ignored):
        get_rule(rule_id)  # typo check; raises UnknownRuleError
    rules = [get_rule(rule_id) for rule_id in selected] if selected else all_rules()
    return [rule for rule in rules if rule.id not in ignored]


def _resolve_passes(raw: str) -> List[Pass]:
    ids = _split_ids(raw)
    if ids == ["all"]:
        return all_passes()
    return [get_pass(pass_id) for pass_id in ids]


def _default_paths() -> List[str]:
    present = [target for target in _DEFAULT_TARGETS if Path(target).exists()]
    return present or ["."]


def _restrict_to_changed(paths: List[str], ref: str) -> Optional[List[str]]:
    """Changed files among ``paths``, or ``None`` to signal a full run."""
    changed = changed_python_files(ref)
    if changed is None:
        print(
            "repro-lint: --changed-only: git unavailable or ref "
            f"{ref!r} not found; linting everything",
            file=sys.stderr,
        )
        return None
    return [
        str(path)
        for path in iter_python_files([Path(p) for p in paths])
        if path.resolve() in changed
    ]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in all_rules():
            print(f"{rule.id:20s} {rule.description}")
        return EXIT_CLEAN

    if options.list_passes:
        for program_pass in all_passes():
            print(f"{program_pass.id:20s} {program_pass.description}")
        return EXIT_CLEAN

    try:
        rules = _resolve_rules(options.select, options.ignore)
        passes = _resolve_passes(options.passes)
    except UnknownRuleError as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return EXIT_USAGE

    paths = options.paths or _default_paths()
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        print(
            f"repro-lint: no such file or directory: {', '.join(missing)}",
            file=sys.stderr,
        )
        return EXIT_USAGE

    if options.changed_only:
        restricted = _restrict_to_changed(paths, options.changed_ref)
        if restricted is not None:
            paths = restricted

    result = run_analysis(paths, rules, passes=passes)
    if options.format == "sarif":
        print(render_sarif(result.diagnostics, result.files_checked, [*rules, *passes]))
    elif options.format == "json":
        print(render_json(result.diagnostics, result.files_checked))
    else:
        print(render_text(result.diagnostics, result.files_checked))
    return EXIT_CLEAN if result.ok else EXIT_VIOLATIONS


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
