"""Lint diagnostics and their text / JSON renderings.

A :class:`Diagnostic` pins one rule violation to a ``path:line:col``
location.  Diagnostics sort by location so output is stable across runs and
platforms — important because CI diffs lint output.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Sequence

__all__ = ["Diagnostic", "render_text", "render_json", "JSON_SCHEMA_VERSION"]

#: Bumped whenever the JSON payload shape changes (documented in
#: docs/static_analysis.md).
JSON_SCHEMA_VERSION = 1


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """GCC-style one-liner: ``path:line:col: rule-id message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def render_text(diagnostics: Sequence[Diagnostic], files_checked: int) -> str:
    """Human-readable report: one line per diagnostic plus a summary."""
    lines = [diagnostic.format() for diagnostic in sorted(diagnostics)]
    noun = "file" if files_checked == 1 else "files"
    if diagnostics:
        count = len(diagnostics)
        problems = "problem" if count == 1 else "problems"
        lines.append(f"{count} {problems} found in {files_checked} {noun}.")
    else:
        lines.append(f"{files_checked} {noun} checked, no problems found.")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic], files_checked: int) -> str:
    """Machine-readable report (schema in docs/static_analysis.md)."""
    counts: Dict[str, int] = {}
    for diagnostic in diagnostics:
        counts[diagnostic.rule] = counts.get(diagnostic.rule, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": files_checked,
        "diagnostics": [asdict(d) for d in sorted(diagnostics)],
        "counts": {rule: counts[rule] for rule in sorted(counts)},
    }
    return json.dumps(payload, indent=2, sort_keys=False)
