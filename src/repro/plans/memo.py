"""The memotable (§II-B), generalized to k-best ranked retention.

``BestTree[S]`` maps a vertex set (bitset) to the best join tree known for
it.  Top-down enumeration fills it on demand; DPccp fills it bottom-up.
The table also serves as the Table III *s* counter: the number of
non-singleton entries at the end of a run is the number of plan classes for
which a plan was successfully built — a count of *classes*, never of
retained plans, whatever ``k`` is.

Since the top-k refactor the table is a *k-bounded per-class store*
(Tziavelis et al., ranked enumeration): each plan class retains up to
``k`` distinct trees in a deterministic total order

    (cost, canonical plan fingerprint)

where the fingerprint (:func:`~repro.plans.join_tree.plan_fingerprint`)
breaks exact cost ties by structure, so the retained set — and therefore
every armed/disarmed or sharded replay — never depends on insertion
order.  ``k=1`` (the default) preserves the original single-best behavior
and memory layout exactly: the ranked side table is not even allocated,
and :meth:`best` / :meth:`best_cost` / :meth:`register` keep their
signatures and semantics.  Pruning code bounds candidates against
:meth:`kth_cost` — the cost a candidate must beat to enter the top-k —
which degenerates to :meth:`best_cost` at ``k=1``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.graph import bitset
from repro.plans.join_tree import JoinTree, plan_fingerprint

__all__ = ["MemoTable"]

_INFINITY = float("inf")


class MemoTable:
    """The k best known join trees per plan class (default ``k=1``)."""

    __slots__ = ("_table", "_ranked", "_k")

    def __init__(self, k: int = 1) -> None:
        if k < 1:
            raise ValueError(f"memotable k must be >= 1, got {k}")
        self._k = k
        self._table: Dict[int, JoinTree] = {}
        # (cost, fingerprint, tree) triples per class, sorted ascending;
        # allocated only when ranks beyond the first are retained.
        self._ranked: Optional[Dict[int, List[Tuple[float, str, JoinTree]]]] = (
            None if k == 1 else {}
        )

    @property
    def k(self) -> int:
        """How many ranked trees each plan class retains."""
        return self._k

    def best(self, vertex_set: int) -> Optional[JoinTree]:
        """``BestTree[S]``, or ``None`` when no tree is registered."""
        return self._table.get(vertex_set)

    def best_cost(self, vertex_set: int) -> float:
        """Cost of ``BestTree[S]``; infinity when no tree is registered."""
        tree = self._table.get(vertex_set)
        return tree.cost if tree is not None else _INFINITY

    def best_k(self, vertex_set: int) -> List[JoinTree]:
        """The retained trees for ``S``, cheapest first (possibly empty)."""
        if self._ranked is None:
            tree = self._table.get(vertex_set)
            return [] if tree is None else [tree]
        entries = self._ranked.get(vertex_set)
        if entries is None:
            return []
        return [tree for _, _, tree in entries]

    def kth_cost(self, vertex_set: int) -> float:
        """The cost a candidate must beat to enter the top-k for ``S``.

        With a full list this is the cost of the currently k-th best tree;
        while fewer than ``k`` trees are retained it is infinity (anything
        may still enter).  At ``k=1`` it equals :meth:`best_cost`, so the
        pruning code that bounds against it is bit-identical to the
        original single-best behavior.
        """
        if self._ranked is None:
            return self.best_cost(vertex_set)
        entries = self._ranked.get(vertex_set)
        if entries is None or len(entries) < self._k:
            return _INFINITY
        return entries[-1][0]

    def register(self, tree: JoinTree) -> bool:
        """Install ``tree`` if it enters the retained top-k for its class.

        Returns ``True`` when the table changed (first registration, an
        improvement of rank 1, or — at ``k>1`` — entry anywhere in the
        ranked list), ``False`` otherwise.  Ordering is the deterministic
        (cost, fingerprint) total order: on an exact cost tie the
        lexicographically smaller canonical fingerprint wins, and a tree
        structurally identical to a retained one never occupies a second
        slot.
        """
        if self._ranked is None:
            incumbent = self._table.get(tree.vertex_set)
            if incumbent is None or tree.cost < incumbent.cost:
                self._table[tree.vertex_set] = tree
                return True
            if tree.cost == incumbent.cost:  # repro: disable=no-float-cost-eq
                # Exact tie: the (cost, fingerprint) order decides, not
                # insertion order.  Fingerprints are only computed here —
                # ties are rare — so the hot path stays two comparisons.
                if plan_fingerprint(tree) < plan_fingerprint(incumbent):
                    self._table[tree.vertex_set] = tree
                    return True
            return False
        return self._register_ranked(tree)

    def _register_ranked(self, tree: JoinTree) -> bool:
        entries = self._ranked.setdefault(tree.vertex_set, [])
        if len(entries) == self._k and tree.cost > entries[-1][0]:
            return False  # cannot enter; skip the fingerprint entirely
        key = (tree.cost, plan_fingerprint(tree))
        position = len(entries)
        for index, (cost, fp, _) in enumerate(entries):
            if key == (cost, fp):  # repro: disable=no-float-cost-eq
                return False  # structurally identical plan already retained
            if key < (cost, fp):
                position = index
                break
        if position >= self._k:
            return False
        entries.insert(position, (key[0], key[1], tree))
        del entries[self._k:]
        self._table[tree.vertex_set] = entries[0][2]
        return True

    def __contains__(self, vertex_set: int) -> bool:
        return vertex_set in self._table

    def __len__(self) -> int:
        return len(self._table)

    def n_plan_classes(self) -> int:
        """Entries with at least two relations (Table III numerator).

        Counts plan *classes* — distinct vertex sets — so the value is
        invariant in ``k``: retaining more ranked trees per class never
        inflates the paper's *s* counter.
        """
        return sum(1 for key in self._table if key & (key - 1))

    def entries(self) -> Iterator[Tuple[int, JoinTree]]:
        """All (vertex set, best tree) pairs, unordered."""
        return iter(self._table.items())

    def __repr__(self) -> str:
        return f"MemoTable(entries={len(self._table)}, k={self._k})"
