"""The memotable (§II-B).

``BestTree[S]`` maps a vertex set (bitset) to the best join tree known for
it.  Top-down enumeration fills it on demand; DPccp fills it bottom-up.
The table also serves as the Table III *s* counter: the number of
non-singleton entries at the end of a run is the number of plan classes for
which a plan was successfully built.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.graph import bitset
from repro.plans.join_tree import JoinTree

__all__ = ["MemoTable"]


class MemoTable:
    """Best-known join tree per plan class."""

    __slots__ = ("_table",)

    def __init__(self) -> None:
        self._table: Dict[int, JoinTree] = {}

    def best(self, vertex_set: int) -> Optional[JoinTree]:
        """``BestTree[S]``, or ``None`` when no tree is registered."""
        return self._table.get(vertex_set)

    def best_cost(self, vertex_set: int) -> float:
        """Cost of ``BestTree[S]``; infinity when no tree is registered."""
        tree = self._table.get(vertex_set)
        return tree.cost if tree is not None else float("inf")

    def register(self, tree: JoinTree) -> bool:
        """Install ``tree`` if it beats the registered one.

        Returns ``True`` when the table changed (first registration or an
        improvement), ``False`` otherwise.
        """
        incumbent = self._table.get(tree.vertex_set)
        if incumbent is None or tree.cost < incumbent.cost:
            self._table[tree.vertex_set] = tree
            return True
        return False

    def __contains__(self, vertex_set: int) -> bool:
        return vertex_set in self._table

    def __len__(self) -> int:
        return len(self._table)

    def n_plan_classes(self) -> int:
        """Entries with at least two relations (Table III numerator)."""
        return sum(1 for key in self._table if key & (key - 1))

    def entries(self) -> Iterator[Tuple[int, JoinTree]]:
        """All (vertex set, best tree) pairs, unordered."""
        return iter(self._table.items())

    def __repr__(self) -> str:
        return f"MemoTable(entries={len(self._table)})"
