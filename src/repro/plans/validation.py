"""Structural and cost validation of join trees.

Used by tests and available to applications as a safety net: given a plan
and its query, :func:`validate_plan` checks every invariant an optimal
bushy cross-product-free join tree must satisfy and recomputes the
accumulated costs from scratch with the given cost model.  Violations
raise :class:`PlanValidationError` with a precise description.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.cost.compare import COST_ABS_TOLERANCE, cost_is_zero, costs_close
from repro.cost.model import CostModel
from repro.cost.statistics import StatisticsProvider
from repro.errors import ReproError
from repro.graph import bitset
from repro.plans.join_tree import JoinNode, JoinTree, LeafNode
from repro.query import Query

__all__ = ["PlanValidationError", "validate_plan", "check_finite", "recompute_cost"]

#: Relative tolerance for cost recomputation (costs are sums of
#: integer-valued page counts, so this is generous).
_COST_TOLERANCE = 1e-9


class PlanValidationError(ReproError):
    """Raised when a join tree violates a structural or cost invariant."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise PlanValidationError(message)


def validate_plan(
    plan: JoinTree,
    query: Query,
    cost_model: Optional[CostModel] = None,
) -> None:
    """Validate ``plan`` against ``query``; raises on the first violation.

    Checks:

    * the plan covers exactly the query's relations, each once;
    * every join node's vertex set is the disjoint union of its inputs;
    * both inputs of every join induce connected subgraphs and are linked
      by at least one join edge (no cross products, §II-A);
    * cardinalities match the statistics provider's estimates;
    * when a ``cost_model`` is given, every node's accumulated cost equals
      a from-scratch recomputation.
    """
    _check(
        plan.vertex_set == query.graph.all_vertices,
        "plan does not cover exactly the query's relations: "
        f"{bitset.format_set(plan.vertex_set)} != "
        f"{bitset.format_set(query.graph.all_vertices)}",
    )
    seen = set()
    for leaf in plan.leaves():
        _check(
            leaf.relation not in seen,
            f"relation R{leaf.relation} appears more than once in the plan",
        )
        seen.add(leaf.relation)
    # Imported lazily: repro.context builds on repro.plans, so a module-level
    # import here would close a package cycle during interpreter start-up.
    from repro.context.context import statistics_for

    provider = statistics_for(query)
    _validate_node(plan, query, provider)
    if cost_model is not None:
        recomputed = recompute_cost(plan, provider, cost_model)
        _check(
            costs_close(plan.cost, recomputed, rel=_COST_TOLERANCE),
            f"plan cost {plan.cost!r} does not match recomputation "
            f"{recomputed!r}",
        )


def check_finite(plan: JoinTree) -> None:
    """Reject plans carrying non-finite or negative numbers.

    A cost model that fails open (``NaN``/``Inf`` returns, e.g. under fault
    injection or a broken statistics pipeline) produces trees whose shape
    is fine but whose numbers are garbage; executing or benchmarking such a
    plan silently corrupts every downstream total.  This walk raises
    :class:`PlanValidationError` on the first node whose cost or
    cardinality is not a finite non-negative float (negativity judged with
    the shared epsilon of :mod:`repro.cost.compare`).
    """
    stack = [plan]
    while stack:
        node = stack.pop()
        _check(
            math.isfinite(node.cost),
            f"non-finite cost {node.cost!r} at "
            f"{bitset.format_set(node.vertex_set)}",
        )
        _check(
            node.cost >= -COST_ABS_TOLERANCE,
            f"negative cost {node.cost!r} at "
            f"{bitset.format_set(node.vertex_set)}",
        )
        _check(
            math.isfinite(node.cardinality),
            f"non-finite cardinality {node.cardinality!r} at "
            f"{bitset.format_set(node.vertex_set)}",
        )
        _check(
            node.cardinality >= 0,
            f"negative cardinality {node.cardinality!r} at "
            f"{bitset.format_set(node.vertex_set)}",
        )
        if isinstance(node, JoinNode):
            stack.append(node.left)
            stack.append(node.right)


def _validate_node(
    node: JoinTree, query: Query, provider: StatisticsProvider
) -> None:
    graph = query.graph
    if isinstance(node, LeafNode):
        _check(
            node.cardinality == query.catalog.cardinality(node.relation),
            f"leaf R{node.relation} carries cardinality {node.cardinality}, "
            f"catalog says {query.catalog.cardinality(node.relation)}",
        )
        _check(cost_is_zero(node.cost), "leaf nodes must have zero cost")
        return
    assert isinstance(node, JoinNode)
    left, right = node.left, node.right
    _check(
        left.vertex_set & right.vertex_set == 0,
        f"join inputs overlap at {bitset.format_set(node.vertex_set)}",
    )
    _check(
        left.vertex_set | right.vertex_set == node.vertex_set,
        f"join vertex set is not the union of its inputs at "
        f"{bitset.format_set(node.vertex_set)}",
    )
    _check(
        graph.is_connected(left.vertex_set),
        f"left input {bitset.format_set(left.vertex_set)} is disconnected",
    )
    _check(
        graph.is_connected(right.vertex_set),
        f"right input {bitset.format_set(right.vertex_set)} is disconnected",
    )
    _check(
        graph.are_connected(left.vertex_set, right.vertex_set),
        f"cross product at {bitset.format_set(node.vertex_set)}: no join "
        "edge between the inputs",
    )
    expected_cardinality = provider.cardinality(node.vertex_set)
    _check(
        abs(node.cardinality - expected_cardinality)
        <= 1e-9 * max(1.0, expected_cardinality),
        f"cardinality mismatch at {bitset.format_set(node.vertex_set)}: "
        f"plan says {node.cardinality}, estimator says {expected_cardinality}",
    )
    _validate_node(left, query, provider)
    _validate_node(right, query, provider)


def recompute_cost(
    node: JoinTree, provider: StatisticsProvider, cost_model: CostModel
) -> float:
    """Re-price a tree bottom-up, ignoring the costs stored on its nodes."""
    if isinstance(node, LeafNode):
        return 0.0
    assert isinstance(node, JoinNode)
    left_cost = recompute_cost(node.left, provider, cost_model)
    right_cost = recompute_cost(node.right, provider, cost_model)
    operator = cost_model.join_cost(
        provider.stats(node.left.vertex_set),
        provider.stats(node.right.vertex_set),
    )
    return left_cost + right_cost + operator
