"""CREATETREE / BUILDTREE (Appendix A) plus leaf construction.

BUILDTREE prices both orders of a ccp — ``(T1, T2)`` and ``(T2, T1)`` — and
registers the cheaper one with the memotable, provided it is within the
budget ``b``.  Pricing both orders in one call (instead of relying on the
symmetric pair being enumerated separately) is what lets the enumerators
emit each symmetric pair only once.
"""

from __future__ import annotations

from typing import Optional

from repro.cost.model import CostModel
from repro.cost.statistics import StatisticsProvider
from repro.plans.join_tree import JoinNode, JoinTree, LeafNode
from repro.plans.memo import MemoTable
from repro.query import Query
from repro.stats.counters import OptimizationStats

__all__ = ["PlanBuilder"]

INFINITY = float("inf")


class PlanBuilder:
    """Constructs and registers join trees for one query.

    The builder owns the per-run counters so every tree construction is
    accounted for, whichever plan generator drives it.
    """

    __slots__ = ("_provider", "_cost_model", "stats")

    def __init__(
        self,
        provider: StatisticsProvider,
        cost_model: CostModel,
        stats: Optional[OptimizationStats] = None,
    ):
        self._provider = provider
        self._cost_model = cost_model
        self.stats = stats if stats is not None else OptimizationStats()

    @property
    def provider(self) -> StatisticsProvider:
        return self._provider

    @property
    def cost_model(self) -> CostModel:
        return self._cost_model

    # ------------------------------------------------------------------

    def leaf(self, query: Query, relation: int) -> LeafNode:
        """Build the leaf node for one base relation."""
        stats = query.catalog.relation(relation)
        return LeafNode(relation, stats.cardinality, stats.name)

    def create_tree(self, outer: JoinTree, inner: JoinTree) -> JoinNode:
        """CREATETREE: join ``outer`` with ``inner`` in this fixed order.

        The operator cost is the cheapest join algorithm for this order;
        the resulting cardinality depends only on the union set.
        """
        self.stats.trees_created += 1
        outer_stats = self._provider.stats(outer.vertex_set)
        inner_stats = self._provider.stats(inner.vertex_set)
        operator_cost = self._cost_model.join_cost(outer_stats, inner_stats)
        cardinality = self._provider.cardinality(
            outer.vertex_set | inner.vertex_set
        )
        return JoinNode(outer, inner, cardinality, operator_cost)

    def build_tree(
        self,
        memo: MemoTable,
        tree_1: JoinTree,
        tree_2: JoinTree,
        budget: float = INFINITY,
    ) -> Optional[JoinTree]:
        """BUILDTREE (Fig. 16): try both orders, keep the cheapest in budget.

        Returns the tree that ended up registered for this ccp (the cheaper
        of the two orders) when it improved the memotable, else ``None``.
        """
        registered: Optional[JoinTree] = None
        for outer, inner in ((tree_1, tree_2), (tree_2, tree_1)):
            candidate = self.create_tree(outer, inner)
            if candidate.cost <= budget and memo.register(candidate):
                if registered is not None:
                    # Second order beat the first: count it as an
                    # improvement of an existing entry, not a new class.
                    self.stats.plan_improvements += 1
                registered = candidate
        return registered

    def build_ccp(
        self,
        memo: MemoTable,
        tree_1: JoinTree,
        tree_2: JoinTree,
        budget: float = INFINITY,
    ) -> Optional[JoinTree]:
        """BUILDTREE over the ccp's *ranked* sub-plan combinations.

        At ``k=1`` this is exactly :meth:`build_tree` on the two trees the
        caller recursed into.  At ``k>1`` the i-th best plan of a class
        may join the j-th best plan of the complement (Tziavelis et al.,
        ranked enumeration), so every retained combination of the two
        classes is priced — in both orders — and offered to the
        memotable, which keeps the k cheapest under its deterministic
        total order.  Returns the last tree that improved the memotable
        (``None`` when nothing registered), mirroring
        :meth:`build_tree`'s contract.
        """
        if memo.k == 1:
            return self.build_tree(memo, tree_1, tree_2, budget)
        lefts = memo.best_k(tree_1.vertex_set) or [tree_1]
        rights = memo.best_k(tree_2.vertex_set) or [tree_2]
        registered: Optional[JoinTree] = None
        for left in lefts:
            for right in rights:
                result = self.build_tree(memo, left, right, budget)
                if result is not None:
                    registered = result
        return registered

    def operator_cost(self, left_set: int, right_set: int) -> float:
        """``c_join``: the minimal operator cost for joining the two sets.

        Known before any subtree exists — used by the budget arithmetic of
        TDPG_ACB (line 3) and TDPG_APCBI (line 17).
        """
        return self._cost_model.min_join_cost(
            self._provider.stats(left_set), self._provider.stats(right_set)
        )
