"""Plan infrastructure: join trees, the memotable, BUILDTREE/CREATETREE."""

from repro.plans.builder import PlanBuilder
from repro.plans.join_tree import JoinNode, JoinTree, LeafNode, plan_fingerprint
from repro.plans.memo import MemoTable
from repro.plans.validation import (
    PlanValidationError,
    check_finite,
    recompute_cost,
    validate_plan,
)

__all__ = [
    "JoinTree",
    "LeafNode",
    "JoinNode",
    "plan_fingerprint",
    "MemoTable",
    "PlanBuilder",
    "validate_plan",
    "check_finite",
    "recompute_cost",
    "PlanValidationError",
]
