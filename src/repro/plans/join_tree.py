"""Join trees (§II-A).

A join tree is a binary tree whose leaves are base relations and whose
inner nodes are two-way joins.  Trees are immutable; the accumulated cost
(sum of all operator costs below and including a node) is stored on every
node so plan comparison is O(1).

Leaves carry cost zero: the Haas et al. operator formulas charge reading
both inputs to the join itself, so a scan has no separate cost.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from repro.graph import bitset

__all__ = ["JoinTree", "LeafNode", "JoinNode", "plan_fingerprint"]


def plan_fingerprint(tree: "JoinTree") -> str:
    """Canonical structural identity of a join tree.

    Built from relation indices and parenthesis structure only —
    ``"(0.(1.2))"`` — so it is independent of relation names, costs,
    cardinalities and any floating-point state, and identical across
    processes for structurally identical plans.  The memotable uses it as
    the second component of its (cost, fingerprint) total order, making
    exact-cost tie-breaks deterministic regardless of insertion order.

    Trees are immutable, so the fingerprint is computed once per node and
    cached; a join's fingerprint composes its children's cached strings,
    which makes repeated tie-breaks over shared subtrees O(1) amortized
    instead of O(tree size) per comparison (cost models with many exact
    ties — ``C_out`` on symmetric graphs — hit this hard).
    """
    cached = tree._fingerprint
    if cached is not None:
        return cached
    if isinstance(tree, LeafNode):
        fingerprint = str(tree.relation)
    else:
        fingerprint = (
            "("
            + plan_fingerprint(tree.left)
            + "."
            + plan_fingerprint(tree.right)
            + ")"
        )
    tree._fingerprint = fingerprint
    return fingerprint


class JoinTree:
    """Common interface of leaf and join nodes."""

    __slots__ = ("vertex_set", "cost", "cardinality", "_fingerprint")

    def __init__(self, vertex_set: int, cost: float, cardinality: float):
        self.vertex_set = vertex_set
        self.cost = cost
        self.cardinality = cardinality
        # Lazily filled by plan_fingerprint(); structural identity never
        # changes after construction.
        self._fingerprint: "str | None" = None

    # -- structure ------------------------------------------------------

    def leaves(self) -> Iterator["LeafNode"]:
        """Yield leaf nodes left-to-right."""
        raise NotImplementedError

    def n_joins(self) -> int:
        """Number of join operators in the tree."""
        raise NotImplementedError

    def depth(self) -> int:
        """Height of the tree (a leaf has depth 0)."""
        raise NotImplementedError

    def relation_indices(self) -> List[int]:
        """Relation indices in left-to-right leaf order."""
        return [leaf.relation for leaf in self.leaves()]

    def relabel(self, mapping: Sequence[int]) -> "JoinTree":
        """Rename every leaf's relation index through ``mapping``."""
        raise NotImplementedError

    # -- rendering -------------------------------------------------------

    def explain(self, indent: int = 0) -> str:
        """Multi-line operator-tree rendering (EXPLAIN-style)."""
        raise NotImplementedError

    def sexpr(self) -> str:
        """Compact one-line rendering, e.g. ``((R0 x R1) x R2)``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(set={bitset.format_set(self.vertex_set)}, "
            f"cost={self.cost:.4g}, card={self.cardinality:.4g})"
        )


class LeafNode(JoinTree):
    """A base-relation scan."""

    __slots__ = ("relation", "name")

    def __init__(self, relation: int, cardinality: float, name: str = ""):
        super().__init__(bitset.singleton(relation), 0.0, cardinality)
        self.relation = relation
        self.name = name or f"R{relation}"

    def leaves(self) -> Iterator["LeafNode"]:
        yield self

    def n_joins(self) -> int:
        return 0

    def depth(self) -> int:
        return 0

    def relabel(self, mapping: Sequence[int]) -> "LeafNode":
        return LeafNode(mapping[self.relation], self.cardinality, self.name)

    def explain(self, indent: int = 0) -> str:
        return f"{'  ' * indent}Scan {self.name}  (card={self.cardinality:.6g})"

    def sexpr(self) -> str:
        return self.name


class JoinNode(JoinTree):
    """A two-way join of two disjoint subtrees; left is the outer input."""

    __slots__ = ("left", "right", "operator_cost")

    def __init__(
        self,
        left: JoinTree,
        right: JoinTree,
        cardinality: float,
        operator_cost: float,
    ):
        if left.vertex_set & right.vertex_set:
            raise ValueError("join inputs must be disjoint vertex sets")
        super().__init__(
            left.vertex_set | right.vertex_set,
            left.cost + right.cost + operator_cost,
            cardinality,
        )
        self.left = left
        self.right = right
        self.operator_cost = operator_cost

    def leaves(self) -> Iterator[LeafNode]:
        yield from self.left.leaves()
        yield from self.right.leaves()

    def n_joins(self) -> int:
        return 1 + self.left.n_joins() + self.right.n_joins()

    def depth(self) -> int:
        return 1 + max(self.left.depth(), self.right.depth())

    def relabel(self, mapping: Sequence[int]) -> "JoinNode":
        return JoinNode(
            self.left.relabel(mapping),
            self.right.relabel(mapping),
            self.cardinality,
            self.operator_cost,
        )

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [
            f"{pad}Join {bitset.format_set(self.vertex_set)}  "
            f"(card={self.cardinality:.6g}, op_cost={self.operator_cost:.6g}, "
            f"total={self.cost:.6g})"
        ]
        lines.append(self.left.explain(indent + 1))
        lines.append(self.right.explain(indent + 1))
        return "\n".join(lines)

    def sexpr(self) -> str:
        return f"({self.left.sexpr()} x {self.right.sexpr()})"
