"""Combined accumulated + predicted cost bounding — TDPG_APCB (§IV-C).

The DeHaan & Tompa combination: TDPG_ACB with the LBE test of TDPG_PCB
inserted at the top of the ccp loop (line 3.1) —

    if LBE(S1, S2) <= MIN(b, cost(BestTree[S])): ... proceed ...

This is the baseline the paper improves on; APCBI adds the six §IV-D
advancements on top (see :mod:`repro.core.apcbi`).
"""

from __future__ import annotations

from typing import Optional

from repro.core.bounds import BoundsTable
from repro.core.plangen import INFINITY, PlanGeneratorBase
from repro.cost.lower_bound import LowerBoundEstimator
from repro.plans.join_tree import JoinTree

__all__ = ["ApcbPlanGenerator"]


class ApcbPlanGenerator(PlanGeneratorBase):
    """TDPG_APCB: accumulated + predicted cost bounding."""

    pruning_name = "apcb"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._bounds = BoundsTable()
        self._lbe = LowerBoundEstimator(self._provider, self._cost_model)

    @property
    def bounds(self) -> BoundsTable:
        return self._bounds

    def _run(self) -> JoinTree:
        self._tdpg(self._graph.all_vertices, INFINITY)
        return self._finish()

    def _tdpg(self, vertex_set: int, budget: float) -> Optional[JoinTree]:
        self._charge_budget()
        best = self._memo.best(vertex_set)
        if best is not None:
            self.stats.memo_hits += 1
            return best
        if self._bounds.lower(vertex_set) > budget:
            self.stats.bound_rejections += 1
            return None

        for left, right in self._partitions(vertex_set):
            # Line 3.1: predicted-cost gate against the tighter of budget
            # and incumbent cost.
            self.stats.lbe_evaluations += 1
            bound = min(budget, self._memo.kth_cost(vertex_set))
            if self._lbe.estimate(left, right) > bound:
                self.stats.pcb_prunes += 1
                continue
            self.stats.ccps_considered += 1
            operator_cost = self._builder.operator_cost(left, right)
            remaining = bound - operator_cost
            left_tree = self._tdpg(left, remaining)
            if left_tree is None:
                continue
            remaining -= left_tree.cost
            right_tree = self._tdpg(right, remaining)
            if right_tree is None:
                continue
            self._builder.build_ccp(self._memo, left_tree, right_tree, budget)

        if self._memo.best(vertex_set) is None:
            self._bounds.raise_lower(vertex_set, budget)
            self.stats.failed_builds += 1
        return self._memo.best(vertex_set)
