"""Bound bookkeeping for branch-and-bound pruning (§IV).

Three tables parallel the memotable:

* ``lB[S]`` — a proven *lower* bound on the optimal cost for ``S``: every
  enumeration pass that fails within budget ``b`` proves no plan cheaper
  than ``b`` (or, with advancement 3, than ``max(b, nlB)``) exists.
  Unset entries read as 0 (§IV-D: "if the lower bound for S is not set,
  lB[S] returns 0").
* ``uB[S]`` — an *upper* bound on the optimal cost for ``S``, populated
  from the GOO heuristic's subtrees (advancement 2) or from an oracle
  DPccp pre-pass (APCBI_Opt).  Unset entries are explicitly "unknown"
  (``None``), never infinity — see DESIGN.md §4.
* ``attempts[S]`` — how many enumeration passes have been started for
  ``S``; drives the rising budget (advancement 4).
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

__all__ = ["BoundsTable"]


class BoundsTable:
    """Lower/upper bounds and request-attempt counts per plan class.

    Both update paths reject non-finite values: ``lB[S] = inf`` would claim
    no plan exists at all (pruning everything), ``uB[S] = NaN`` would poison
    every later budget comparison into silent falsehood, and ``lB[S] = NaN``
    previously slipped through only because ``NaN > current`` happens to be
    false.  A cost model failing open (fault injection, broken statistics)
    therefore cannot corrupt the pruning state — the bogus bound is simply
    not recorded, which is always sound (unset bounds are the weakest
    valid claim).
    """

    __slots__ = ("_lower", "_upper", "_attempts")

    def __init__(self, upper_bounds: Optional[Mapping[int, float]] = None):
        self._lower: Dict[int, float] = {}
        self._upper: Dict[int, float] = {}
        self._attempts: Dict[int, int] = {}
        for vertex_set, bound in (upper_bounds or {}).items():
            self.lower_upper(vertex_set, bound)

    # -- lower bounds ----------------------------------------------------

    def lower(self, vertex_set: int) -> float:
        """``lB[S]``; 0 when no bound has been proven yet."""
        return self._lower.get(vertex_set, 0.0)

    def raise_lower(self, vertex_set: int, bound: float) -> None:
        """Record a proven lower bound (kept monotone, finite only)."""
        if not math.isfinite(bound):
            return
        current = self._lower.get(vertex_set, 0.0)
        if bound > current:
            self._lower[vertex_set] = bound

    # -- upper bounds ----------------------------------------------------

    def upper(self, vertex_set: int) -> Optional[float]:
        """``uB[S]`` or ``None`` when unknown."""
        return self._upper.get(vertex_set)

    def lower_upper(self, vertex_set: int, bound: float) -> None:
        """Record an upper bound (kept monotone downward, finite only)."""
        if not math.isfinite(bound):
            return
        current = self._upper.get(vertex_set)
        if current is None or bound < current:
            self._upper[vertex_set] = bound

    # -- attempts ----------------------------------------------------------

    def attempts(self, vertex_set: int) -> int:
        return self._attempts.get(vertex_set, 0)

    def count_attempt(self, vertex_set: int) -> None:
        self._attempts[vertex_set] = self._attempts.get(vertex_set, 0) + 1

    # -- diagnostics -------------------------------------------------------

    def n_lower(self) -> int:
        return len(self._lower)

    def n_upper(self) -> int:
        return len(self._upper)
