"""Predicted-cost bounding — TDPG_PCB (§IV-B, Fig. 4).

Before requesting the two subtrees of a ccp, a lower bound estimate
``LBE(S1, S2)`` on the total cost of any tree that joins ``S1`` with ``S2``
is compared against the cost of the best tree already built for ``S``
(infinity when none exists).  A ccp whose bound exceeds the incumbent can
be skipped entirely — both recursive descents are spared.
"""

from __future__ import annotations

from repro.core.plangen import INFINITY, PlanGeneratorBase
from repro.cost.lower_bound import LowerBoundEstimator
from repro.plans.join_tree import JoinTree

__all__ = ["PcbPlanGenerator"]


class PcbPlanGenerator(PlanGeneratorBase):
    """TDPG_PCB: top-down enumeration with predicted-cost bounding."""

    pruning_name = "pcb"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._lbe = LowerBoundEstimator(self._provider, self._cost_model)

    def _run(self) -> JoinTree:
        self._tdpg(self._graph.all_vertices)
        return self._finish()

    def _tdpg(self, vertex_set: int) -> JoinTree:
        self._charge_budget()
        tree = self._memo.best(vertex_set)
        if tree is not None:
            if vertex_set & (vertex_set - 1):
                self.stats.memo_hits += 1
            return tree
        for left, right in self._partitions(vertex_set):
            # Line 3: skip the ccp when even an optimistic tree through it
            # cannot beat the incumbent.
            self.stats.lbe_evaluations += 1
            if self._lbe.estimate(left, right) > self._memo.kth_cost(vertex_set):
                self.stats.pcb_prunes += 1
                continue
            self.stats.ccps_considered += 1
            self._builder.build_ccp(
                self._memo, self._tdpg(left), self._tdpg(right), INFINITY
            )
        return self._memo.best(vertex_set)
