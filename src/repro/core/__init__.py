"""The paper's core: top-down plan generation and branch-and-bound pruning."""

from repro.core.acb import AcbPlanGenerator
from repro.core.advancements import ADVANCEMENT_NAMES, AdvancementConfig
from repro.core.apcb import ApcbPlanGenerator
from repro.core.apcbi import ApcbiPlanGenerator
from repro.core.bounds import BoundsTable
from repro.cost.compare import cost_is_zero, costs_close
from repro.core.goo import GooResult, run_goo
from repro.core.optimizer import (
    OptimizationResult,
    Optimizer,
    algorithm_label,
    optimize,
    optimize_topk,
    run_dpccp,
)
from repro.core.pcb import PcbPlanGenerator
from repro.core.plangen import PlanGeneratorBase, TopDownPlanGenerator

__all__ = [
    "TopDownPlanGenerator",
    "PlanGeneratorBase",
    "AcbPlanGenerator",
    "PcbPlanGenerator",
    "ApcbPlanGenerator",
    "ApcbiPlanGenerator",
    "AdvancementConfig",
    "ADVANCEMENT_NAMES",
    "BoundsTable",
    "run_goo",
    "GooResult",
    "Optimizer",
    "OptimizationResult",
    "optimize",
    "optimize_topk",
    "run_dpccp",
    "algorithm_label",
    "costs_close",
    "cost_is_zero",
]
