"""Generic top-down join enumeration (TDPLANGEN, §II-B, Fig. 1).

:class:`PlanGeneratorBase` owns everything the pruning variants share — the
memotable, the plan builder, the statistics provider, the partitioning
strategy and the counters — and :class:`TopDownPlanGenerator` is the
unpruned instantiation: a straight memoization recursion over
``P_ccp_sym(S)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

from repro.context.context import OptimizationContext
from repro.cost.model import CostModel
from repro.errors import OptimizationError
from repro.graph import bitset
from repro.partitioning.base import PartitioningStrategy
from repro.plans.builder import PlanBuilder
from repro.plans.join_tree import JoinTree
from repro.plans.memo import MemoTable
from repro.query import Query
from repro.stats.counters import OptimizationStats

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a package cycle
    from repro.resilience.budget import Budget

__all__ = ["PlanGeneratorBase", "TopDownPlanGenerator", "INFINITY"]

INFINITY = float("inf")


class PlanGeneratorBase:
    """Shared infrastructure of all top-down plan generators (§V-A).

    Subclasses implement :meth:`run`.  A generator runs on one
    :class:`~repro.context.OptimizationContext` — the statistics provider,
    bound cost model, plan builder, counters and budget all come from it —
    plus its own memotable.  Instances are single-use (state accumulates in
    the memotable and counters).

    Construction accepts either an explicit ``context=`` (the
    :class:`~repro.core.optimizer.Optimizer` facade builds one per query
    and threads it through every layer) or the legacy positional
    ``(query, partitioning, cost_model, stats, budget)`` shape, which
    builds a private context.
    """

    #: Registry name of the pruning strategy ("none", "acb", ...).
    pruning_name = "abstract"

    def __init__(
        self,
        query: Optional[Query] = None,
        partitioning: Optional[PartitioningStrategy] = None,
        cost_model: Optional[CostModel] = None,
        stats: Optional[OptimizationStats] = None,
        budget: Optional["Budget"] = None,
        *,
        context: Optional[OptimizationContext] = None,
    ):
        if context is None:
            if query is None:
                raise TypeError(
                    "PlanGeneratorBase needs a query (or a ready context=)"
                )
            context = OptimizationContext.for_query(
                query, cost_model=cost_model, stats=stats, budget=budget
            )
        elif query is not None and query is not context.query:
            raise ValueError(
                "query and context disagree; pass one or the other"
            )
        if partitioning is None:
            raise TypeError("PlanGeneratorBase needs a partitioning strategy")
        self._context = context
        self._query = context.query
        self._graph = context.query.graph
        self._partitioning = partitioning
        self._provider = context.provider
        self._cost_model = context.cost_model
        self._builder = context.builder
        self._memo = MemoTable(k=context.topk)
        self._budget = budget if budget is not None else context.budget
        self._telemetry = context.telemetry
        for index in range(self._query.n_relations):
            self._memo.register(self._builder.leaf(self._query, index))

    # -- accessors shared with tests and the harness ------------------------

    @property
    def memo(self) -> MemoTable:
        return self._memo

    @property
    def stats(self) -> OptimizationStats:
        return self._builder.stats

    @property
    def builder(self) -> PlanBuilder:
        return self._builder

    @property
    def query(self) -> Query:
        return self._query

    @property
    def partitioning(self) -> PartitioningStrategy:
        return self._partitioning

    @property
    def budget(self) -> Optional["Budget"]:
        return self._budget

    # -- helpers -------------------------------------------------------------

    def _charge_budget(self) -> None:
        """Cooperative budget check; every ``_tdpg`` entry calls this.

        Raises :class:`~repro.errors.BudgetExceeded` when the run's wall
        clock, expansion count or memotable size exceeds its allowance.
        A ``None`` budget makes this a cheap no-op, so unbudgeted runs pay
        only one attribute load and comparison per expansion.
        """
        if self._budget is not None:
            self._budget.check(len(self._memo))

    def _partitions(self, vertex_set: int) -> Iterator[Tuple[int, int]]:
        """Enumerate ``P_ccp_sym(S)``, with accounting and budget checks.

        Checking per emitted ccp (not just per expansion) keeps a single
        pathological plan class — an 18-relation clique root has ~3^18
        ccps — from outliving the deadline by an unbounded margin.

        When telemetry is armed with ``detailed_spans``, each pass gets a
        ``partitioner_pass`` span (high volume — one span per plan-class
        expansion — hence the explicit opt-in; default tracing records one
        ``enumerate`` span per run instead, see :meth:`run`).
        """
        telemetry = self._telemetry
        if telemetry is None or not telemetry.detailed_spans:
            return self._emit_partitions(vertex_set)
        return self._emit_partitions_traced(vertex_set, telemetry)

    def _emit_partitions(self, vertex_set: int) -> Iterator[Tuple[int, int]]:
        budget = self._budget
        for pair in self._partitioning.partitions(self._graph, vertex_set):
            if budget is not None:
                budget.check(len(self._memo))
            self.stats.ccps_enumerated += 1
            yield pair

    def _emit_partitions_traced(
        self, vertex_set: int, telemetry
    ) -> Iterator[Tuple[int, int]]:
        ccps = 0
        with telemetry.span(
            "partitioner_pass", vertex_set=vertex_set
        ) as span:
            for pair in self._emit_partitions(vertex_set):
                ccps += 1
                yield pair
            span.set(ccps=ccps)

    def _finish(self) -> JoinTree:
        """Fetch the final plan and fold terminal counters."""
        plan = self._memo.best(self._graph.all_vertices)
        if plan is None:
            raise OptimizationError(
                "plan generation ended without a plan for the full query; "
                "this indicates a bug in the pruning logic"
            )
        self.stats.plan_classes_built = self._memo.n_plan_classes()
        return plan

    def ranked_plans(self) -> List[JoinTree]:
        """The retained root plans, cheapest first (valid after a run).

        ``[best]`` at ``k=1``; up to ``k`` distinct trees in the
        memotable's deterministic (cost, fingerprint) order otherwise.
        """
        return self._memo.best_k(self._graph.all_vertices)

    def run(self) -> JoinTree:
        """Produce an optimal join tree for the whole query.

        When telemetry is armed the whole run is wrapped in one
        ``enumerate`` span (enumerator, pruning, relation count; final ccp
        and plan-class counters on exit) — a single span per run, so
        production tracing costs one context-manager entry regardless of
        query size.  Subclasses implement :meth:`_run`.
        """
        telemetry = self._telemetry
        if telemetry is None:
            return self._run()
        with telemetry.span(
            "enumerate",
            enumerator=self._partitioning.name,
            pruning=self.pruning_name,
            relations=self._query.n_relations,
        ) as span:
            plan = self._run()
            span.set(
                ccps_enumerated=self.stats.ccps_enumerated,
                plan_classes_built=self._memo.n_plan_classes(),
            )
        return plan

    def _run(self) -> JoinTree:
        """Subclass hook: the actual enumeration, without instrumentation."""
        raise NotImplementedError


class TopDownPlanGenerator(PlanGeneratorBase):
    """TDPLANGEN (Fig. 1): memoization without pruning."""

    pruning_name = "none"

    def _run(self) -> JoinTree:
        self._tdpgsub(self._graph.all_vertices)
        return self._finish()

    def _tdpgsub(self, vertex_set: int) -> JoinTree:
        """TDPGSUB: optimal join tree for a connected ``vertex_set``."""
        self._charge_budget()
        tree = self._memo.best(vertex_set)
        if tree is not None:
            if vertex_set & (vertex_set - 1):
                self.stats.memo_hits += 1
            return tree
        for left, right in self._partitions(vertex_set):
            self.stats.ccps_considered += 1
            self._builder.build_ccp(
                self._memo,
                self._tdpgsub(left),
                self._tdpgsub(right),
                INFINITY,
            )
        tree = self._memo.best(vertex_set)
        if tree is None:  # pragma: no cover - guarded by graph connectivity
            raise OptimizationError(
                f"no ccp produced a plan for {bitset.format_set(vertex_set)}"
            )
        return tree
