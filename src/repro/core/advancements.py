"""The six pruning advancements of §IV-D as a toggle set.

APCBI is APCB plus six techniques.  The Fig. 15 ablation measures each
advancement individually on top of APCB, so every technique is an
independent flag here:

1. ``improved_lbe`` — LBE additionally charges known subtree costs or
   proven lower bounds of the two inputs.
2. ``heuristic_upper_bounds`` — run GOO once up front and seed ``uB`` with
   the cost of the heuristic tree *and all its subtrees*.
3. ``improved_lower_bounds`` — on failure record ``max(b, nlB)`` instead of
   plain ``b``, where ``nlB`` is the minimum over the pass of every lower
   bound observed for a ccp.
4. ``rising_budget`` — repeated requests for the same ``S`` get a budget of
   at least ``lB[S] * 2^attempts[S]`` (or jump straight to ``uB[S]``),
   killing the cascading re-enumeration worst case of plain ACB.
5. ``tighter_left_budget`` — the left subtree request's budget additionally
   subtracts the right side's known cost or ``lB``.
6. ``renumber_graph`` — renumber the query graph by a BFS over the
   heuristic join tree so that the LSB-first neighbor order of the
   partitioner plans the heuristic's trees first.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Tuple

__all__ = ["AdvancementConfig", "ADVANCEMENT_NAMES"]

#: Flag names in the paper's numbering order (1..6).
ADVANCEMENT_NAMES: Tuple[str, ...] = (
    "improved_lbe",
    "heuristic_upper_bounds",
    "improved_lower_bounds",
    "rising_budget",
    "tighter_left_budget",
    "renumber_graph",
)


@dataclass(frozen=True)
class AdvancementConfig:
    """Which of the six §IV-D techniques are active."""

    improved_lbe: bool = True
    heuristic_upper_bounds: bool = True
    improved_lower_bounds: bool = True
    rising_budget: bool = True
    tighter_left_budget: bool = True
    renumber_graph: bool = True

    # -- canned configurations --------------------------------------------

    @classmethod
    def all_on(cls) -> "AdvancementConfig":
        """Full APCBI."""
        return cls()

    @classmethod
    def all_off(cls) -> "AdvancementConfig":
        """Plain APCB expressed in the APCBI skeleton."""
        return cls(**{name: False for name in ADVANCEMENT_NAMES})

    @classmethod
    def only(cls, name: str) -> "AdvancementConfig":
        """APCB plus exactly one advancement (one Fig. 15 bar).

        Advancement 6 depends on the heuristic (the paper measures "Goo +
        remapping" as a unit), so ``only("renumber_graph")`` also enables
        the heuristic upper bounds.
        """
        if name not in ADVANCEMENT_NAMES:
            raise ValueError(
                f"unknown advancement {name!r}; choose from {ADVANCEMENT_NAMES}"
            )
        config = replace(cls.all_off(), **{name: True})
        if name == "renumber_graph":
            config = replace(config, heuristic_upper_bounds=True)
        return config

    @classmethod
    def all_but(cls, name: str) -> "AdvancementConfig":
        """APCBI minus one advancement (e.g. the paper's "all but remap")."""
        if name not in ADVANCEMENT_NAMES:
            raise ValueError(
                f"unknown advancement {name!r}; choose from {ADVANCEMENT_NAMES}"
            )
        return replace(cls.all_on(), **{name: False})

    # -- introspection -----------------------------------------------------

    def enabled(self) -> Tuple[str, ...]:
        """Names of the active advancements, in paper order."""
        return tuple(
            name for name in ADVANCEMENT_NAMES if getattr(self, name)
        )

    @property
    def needs_heuristic(self) -> bool:
        """True when GOO must run before enumeration starts."""
        return self.heuristic_upper_bounds or self.renumber_graph
