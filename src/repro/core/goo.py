"""GOO — Greedy Operator Ordering (Fegaras, DEXA 1998; advancement 2).

GOO builds one bushy join tree greedily: starting from the base relations,
it repeatedly joins the pair of current subtrees whose join result has the
smallest cardinality, restricted to pairs connected by at least one join
edge (no cross products, matching the search space of the enumerators).
With ``n`` relations and a pairwise scan per step this is O(n^3), as the
paper notes.

Besides the final tree, :func:`run_goo` returns the cost of *every* subtree
keyed by vertex set — the paper's advancement 2 seeds the upper-bound table
``uB`` with "the cost of its produced subtrees", not just the root.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.plans.builder import PlanBuilder
from repro.plans.join_tree import JoinTree
from repro.query import Query

__all__ = ["run_goo", "GooResult"]


class GooResult:
    """Outcome of one GOO run: the tree plus per-subtree upper bounds."""

    __slots__ = ("tree", "subtree_costs")

    def __init__(self, tree: JoinTree, subtree_costs: Dict[int, float]):
        self.tree = tree
        self.subtree_costs = subtree_costs

    @property
    def cost(self) -> float:
        return self.tree.cost

    def __repr__(self) -> str:
        return (
            f"GooResult(cost={self.tree.cost:.6g}, "
            f"subtrees={len(self.subtree_costs)})"
        )


def run_goo(query: Query, builder: PlanBuilder) -> GooResult:
    """Run greedy operator ordering for ``query`` using ``builder``.

    The builder's cost model prices both orders of every greedy join and
    keeps the cheaper; the builder's counters therefore also account for
    the heuristic's work, which is part of APCBI's measured runtime.
    """
    graph = query.graph
    provider = builder.provider
    forest: List[JoinTree] = [
        builder.leaf(query, index) for index in range(query.n_relations)
    ]
    subtree_costs: Dict[int, float] = {}

    while len(forest) > 1:
        best_pair: Tuple[int, int] = (-1, -1)
        best_cardinality = float("inf")
        for i in range(len(forest)):
            set_i = forest[i].vertex_set
            for j in range(i + 1, len(forest)):
                set_j = forest[j].vertex_set
                if not graph.are_connected(set_i, set_j):
                    continue
                cardinality = provider.cardinality(set_i | set_j)
                if cardinality < best_cardinality:
                    best_cardinality = cardinality
                    best_pair = (i, j)
        i, j = best_pair
        if i < 0:
            # Cannot happen for a connected query graph: some cross-forest
            # edge always exists.  Guard anyway for defensive clarity.
            raise RuntimeError("GOO found no joinable pair on a connected graph")
        left, right = forest[i], forest[j]
        first = builder.create_tree(left, right)
        second = builder.create_tree(right, left)
        joined = first if first.cost <= second.cost else second
        # Replace the two inputs with the join; pop the higher index first
        # so the lower one stays valid.
        forest.pop(j)
        forest.pop(i)
        forest.append(joined)
        subtree_costs[joined.vertex_set] = joined.cost

    return GooResult(forest[0], subtree_costs)
