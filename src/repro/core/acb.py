"""Accumulated-cost bounding — TDPG_ACB (§IV-A, Fig. 3).

A cost budget flows down the recursion: each instance subtracts costs as
they become known (the operator cost before the left child, the left
child's cost before the right child) and a child that cannot produce a tree
within its budget returns ``NULL``.  Failed passes record their budget as a
proven lower bound ``lB[S]`` so cheaper re-requests return immediately.
"""

from __future__ import annotations

from typing import Optional

from repro.core.bounds import BoundsTable
from repro.core.plangen import INFINITY, PlanGeneratorBase
from repro.plans.join_tree import JoinTree

__all__ = ["AcbPlanGenerator"]


class AcbPlanGenerator(PlanGeneratorBase):
    """TDPG_ACB: top-down enumeration with accumulated-cost bounding."""

    pruning_name = "acb"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._bounds = BoundsTable()

    @property
    def bounds(self) -> BoundsTable:
        return self._bounds

    def _run(self) -> JoinTree:
        self._tdpg(self._graph.all_vertices, INFINITY)
        return self._finish()

    def _tdpg(self, vertex_set: int, budget: float) -> Optional[JoinTree]:
        """Fig. 3; returns the best tree or ``None`` if none fits ``budget``."""
        self._charge_budget()
        best = self._memo.best(vertex_set)
        if best is not None:
            self.stats.memo_hits += 1
            return best
        # Line 1: skip enumeration when a previous failed pass proved that
        # no tree cheaper than lB[S] exists and the budget is below it.
        if self._bounds.lower(vertex_set) > budget:
            self.stats.bound_rejections += 1
            return None

        for left, right in self._partitions(vertex_set):
            self.stats.ccps_considered += 1
            # Lines 3-4: subtract the operator cost (computable from the
            # two input sets alone) from the tightest known bound.
            operator_cost = self._builder.operator_cost(left, right)
            # Bounding against the k-th retained cost (== best cost at
            # k=1) keeps every tree that could still enter the top-k.
            remaining = (
                min(budget, self._memo.kth_cost(vertex_set)) - operator_cost
            )
            left_tree = self._tdpg(left, remaining)
            if left_tree is None:
                continue
            # Lines 7-8: tighten further by the left tree's actual cost.
            remaining -= left_tree.cost
            right_tree = self._tdpg(right, remaining)
            if right_tree is None:
                continue
            # Line 10: register the cheaper order if within the budget.
            self._builder.build_ccp(self._memo, left_tree, right_tree, budget)

        # Lines 11-12: a completed pass without a tree proves lB[S] = b.
        if self._memo.best(vertex_set) is None:
            self._bounds.raise_lower(vertex_set, budget)
            self.stats.failed_builds += 1
        return self._memo.best(vertex_set)
