"""TDPG_APCBI — the paper's improved pruning (§IV-D, Fig. 5).

APCB plus the six advancements, each individually toggleable through
:class:`~repro.core.advancements.AdvancementConfig` (the Fig. 15 ablation
instantiates one flag at a time).  Two pseudocode corrections are applied,
documented in DESIGN.md §4:

* the guard of Fig. 5 lines 3-4 is ``b < lB[S]`` (reject a budget below the
  proven lower bound), not ``lB[S] <= b``;
* ``uB[S]`` has an explicit *unknown* state rather than defaulting to
  infinity, otherwise the rising-budget exception (lines 6-7) would hand
  every repeated request an infinite budget.

One deliberate micro-deviation: when ``BestTree[S]`` exists but costs more
than the budget, we return ``NULL`` immediately instead of re-running the
enumeration.  A registered tree is provably optimal (a completed pass
enumerates every ccp and branch-and-bound never discards an improving
candidate), so a re-enumeration below its cost can never register anything;
the paper's Fig. 5 would walk the ccps once more for nothing.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.advancements import AdvancementConfig
from repro.core.bounds import BoundsTable
from repro.core.goo import run_goo
from repro.core.plangen import INFINITY, PlanGeneratorBase
from repro.cost.lower_bound import ImprovedLowerBoundEstimator, LowerBoundEstimator
from repro.plans.join_tree import JoinTree

__all__ = ["ApcbiPlanGenerator", "budget_slack"]

#: Relative slack applied whenever a budget is *set from an upper bound*
#: (heuristic or oracle).  Such budgets equal a real plan's cost exactly, and
#: the chained float subtractions of the budget arithmetic
#: (``b - c_join - cost(lT)``) can drift a few ulps below a child's true
#: optimum, making an otherwise-feasible pass fail irrecoverably.  The slack
#: only ever admits more candidates, so optimality is unaffected.
_BUDGET_EPSILON = 1e-9


def budget_slack(value: float) -> float:
    """Widen an upper-bound-derived budget by a relative epsilon."""
    return value + _BUDGET_EPSILON * abs(value) + _BUDGET_EPSILON


class ApcbiPlanGenerator(PlanGeneratorBase):
    """TDPG_APCBI: APCB + the six §IV-D advancements.

    Parameters
    ----------
    config:
        Which advancements are active; defaults to all six (full APCBI).
        The ``renumber_graph`` flag is acted upon by the
        :class:`~repro.core.optimizer.Optimizer` facade (it requires
        relabeling the query before this generator is constructed) and is
        ignored here.
    upper_bounds:
        Optional pre-seeded ``uB`` table (vertex set -> cost).  Passing the
        optimal subtree costs from a DPccp pre-pass yields APCBI_Opt; when
        omitted and ``config.heuristic_upper_bounds`` is set, the join
        heuristic runs once and seeds the table with its subtree costs.
    heuristic:
        The join heuristic used for advancement 2; defaults to GOO (the
        paper's choice).  Any :class:`repro.heuristics.JoinHeuristic`
        works — upper bounds from a heuristic plan are sound regardless of
        how the plan was found.
    """

    pruning_name = "apcbi"

    def __init__(
        self,
        *args,
        config: Optional[AdvancementConfig] = None,
        upper_bounds: Optional[Mapping[int, float]] = None,
        heuristic=None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self._config = config if config is not None else AdvancementConfig.all_on()
        self._bounds = BoundsTable(upper_bounds)
        self.heuristic_tree: Optional[JoinTree] = None
        if upper_bounds is None and self._config.heuristic_upper_bounds:
            if heuristic is None:
                result = run_goo(self._query, self._builder)
            else:
                result = heuristic.build(self._query, self._builder)
            self.heuristic_tree = result.tree
            for vertex_set, cost in result.subtree_costs.items():
                self._bounds.lower_upper(vertex_set, cost)
        if self._config.improved_lbe:
            self._lbe = ImprovedLowerBoundEstimator(
                self._provider, self._cost_model, self._memo, self._bounds
            )
        else:
            self._lbe = LowerBoundEstimator(self._provider, self._cost_model)

    @property
    def bounds(self) -> BoundsTable:
        return self._bounds

    @property
    def config(self) -> AdvancementConfig:
        return self._config

    # ------------------------------------------------------------------

    def _run(self) -> JoinTree:
        self._tdpg(self._graph.all_vertices, INFINITY)
        return self._finish()

    def _tdpg(self, vertex_set: int, budget: float) -> Optional[JoinTree]:
        self._charge_budget()
        memo = self._memo
        bounds = self._bounds
        stats = self.stats
        config = self._config

        # Lines 1-2 (+ registered-implies-optimal shortcut, module docstring).
        best = memo.best(vertex_set)
        if best is not None:
            stats.memo_hits += 1
            return best if best.cost <= budget else None
        # Lines 3-4 (corrected guard).
        if budget < bounds.lower(vertex_set):
            stats.bound_rejections += 1
            return None

        # Lines 5-8: rising budget (advancement 4).
        if config.rising_budget and bounds.attempts(vertex_set) > 0:
            upper = bounds.upper(vertex_set)
            if upper is not None and budget < upper:
                budget = budget_slack(upper)
                stats.budget_raises += 1
            else:
                raised = max(
                    budget,
                    bounds.lower(vertex_set) * (2 ** bounds.attempts(vertex_set)),
                )
                if raised > budget:
                    stats.budget_raises += 1
                budget = raised
        # Line 9.
        bounds.count_attempt(vertex_set)
        # Lines 10-11: cap the budget at a known upper bound (advancement 2
        # seeded by GOO, or the oracle table for APCBI_Opt).
        upper = bounds.upper(vertex_set)
        if upper is not None and upper < budget:
            budget = budget_slack(upper)

        # Line 12.
        new_lower_bound = INFINITY

        # Lines 13-33: the ccp loop.
        for left, right in self._partitions(vertex_set):
            stats.lbe_evaluations += 1
            estimate = self._lbe.estimate(left, right)
            bound = min(budget, memo.kth_cost(vertex_set))
            if estimate > bound:
                # Lines 14-16: PCB rejection; remember the estimate for the
                # improved lower bound.
                new_lower_bound = min(new_lower_bound, estimate)
                stats.pcb_prunes += 1
                continue
            stats.ccps_considered += 1
            # Lines 17-22.
            operator_cost = self._builder.operator_cost(left, right)
            remaining = min(budget, memo.kth_cost(vertex_set)) - operator_cost
            if config.tighter_left_budget:
                # Lines 19-21: charge the right side's known or proven cost
                # against the left request's budget (advancement 5).
                right_tree = memo.best(right)
                right_charge = (
                    right_tree.cost if right_tree is not None
                    else bounds.lower(right)
                )
            else:
                right_charge = 0.0
            # Line 23.
            left_tree = self._tdpg(left, remaining - right_charge)
            if left_tree is None:
                # Line 33: both sides unknown; their proven bounds still
                # lower-bound any tree through this ccp.
                new_lower_bound = min(
                    new_lower_bound,
                    bounds.lower(left) + bounds.lower(right) + operator_cost,
                )
                continue
            # Lines 25-27.
            remaining -= left_tree.cost
            right_tree = self._tdpg(right, remaining)
            if right_tree is None:
                # Line 32.
                new_lower_bound = min(
                    new_lower_bound,
                    left_tree.cost + bounds.lower(right) + operator_cost,
                )
                continue
            # Lines 29-31.
            self._builder.build_ccp(memo, left_tree, right_tree, budget)
            new_lower_bound = min(
                new_lower_bound,
                left_tree.cost + right_tree.cost + operator_cost,
            )

        # Lines 34-35: improved lower bounds (advancement 3) take the max of
        # the failed budget and the cheapest bound seen during the pass.
        if memo.best(vertex_set) is None:
            if config.improved_lower_bounds:
                bounds.raise_lower(vertex_set, max(budget, new_lower_bound))
            else:
                bounds.raise_lower(vertex_set, budget)
            stats.failed_builds += 1
            return None
        # Line 36 (with the cost <= budget contract of lines 1-2).
        tree = memo.best(vertex_set)
        return tree if tree.cost <= budget else None
