"""The optimizer facade — the library's main entry point.

``optimize(query, enumerator=..., pruning=...)`` wires together a
partitioning strategy, a pruning policy, a cost model and the shared plan
infrastructure (one :class:`~repro.context.OptimizationContext` per
query), runs plan generation, and returns an :class:`OptimizationResult`
carrying the plan, its cost, the run counters and the measured wall time.

An :class:`Optimizer` may additionally be given a
:class:`~repro.context.PlanCache`; ``optimize`` then fingerprints each
query (:func:`repro.context.fingerprint`) and serves structurally
identical repeats from the cache — replaying the stored canonical tree
through the requesting query's context — instead of enumerating again.

Timing semantics follow §V-C: the measured interval covers everything the
optimizer does at query time — including the GOO heuristic and the graph
renumbering of APCBI — but *excludes* the DPccp pre-pass that supplies
APCBI_Opt's oracle upper bounds ("we do not include the pre-computation
time", §V-C).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple, Type

from repro.baselines.dpccp import DPccp
from repro.baselines.dpconv import DPconv, eligible as dpconv_eligible
from repro.context.context import OptimizationContext
from repro.context.fingerprint import fingerprint
from repro.context.plancache import CachedPlan, PlanCache, replay_plan
from repro.core.acb import AcbPlanGenerator
from repro.core.advancements import ADVANCEMENT_NAMES, AdvancementConfig
from repro.core.apcb import ApcbPlanGenerator
from repro.core.apcbi import ApcbiPlanGenerator
from repro.core.goo import run_goo
from repro.core.pcb import PcbPlanGenerator
from repro.core.plangen import PlanGeneratorBase, TopDownPlanGenerator
from repro.cost.cout import CoutCostModel
from repro.cost.haas import HaasCostModel
from repro.cost.model import CostModel
from repro.errors import BudgetExceeded, UnknownAlgorithmError
from repro.graph.renumber import invert_mapping, remap_bitset, renumber_mapping
from repro.heuristics.registry import get_heuristic
from repro.partitioning.registry import get_partitioning
from repro.plans.join_tree import JoinTree
from repro.plans.validation import (
    PlanValidationError,
    check_finite,
    validate_plan,
)
from repro.query import Query
from repro.stats.counters import OptimizationStats

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a package cycle
    from repro.resilience.budget import Budget
    from repro.telemetry import Telemetry

__all__ = [
    "OptimizationResult",
    "Optimizer",
    "optimize",
    "optimize_topk",
    "run_dpccp",
    "run_dpconv",
    "DPCONV_AUTO_MIN_RELATIONS",
    "PRUNING_STRATEGIES",
    "PRUNING_SUFFIXES",
    "algorithm_label",
]

#: The automatic DPconv fast path engages from this many relations up.
#: Below it, per-query enumeration is cheap enough that the requested
#: top-down algorithm's richer counters/anytime behavior win; from here on
#: the O(3^n) constant factor dominates per-query latency.
DPCONV_AUTO_MIN_RELATIONS = 12

#: Pruning name -> plan generator class for the simple (non-APCBI) variants.
PRUNING_STRATEGIES: Dict[str, Type[PlanGeneratorBase]] = {
    "none": TopDownPlanGenerator,
    "acb": AcbPlanGenerator,
    "pcb": PcbPlanGenerator,
    "apcb": ApcbPlanGenerator,
}

#: Table I display suffixes.
PRUNING_SUFFIXES: Dict[str, str] = {
    "none": "",
    "acb": "_ACB",
    "pcb": "_PCB",
    "apcb": "_APCB",
    "apcbi": "_APCBI",
    "apcbi_opt": "_APCBI_Opt",
}


def algorithm_label(enumerator: str, pruning: str) -> str:
    """Paper-style display name, e.g. ``TDMcC_APCBI`` (Table I)."""
    if pruning == "dpconv":
        # A bottom-up baseline: no partitioning strategy, no suffix.
        return "DPconv"
    partitioning = get_partitioning(enumerator)
    try:
        suffix = PRUNING_SUFFIXES[pruning]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown pruning strategy {pruning!r}; "
            f"available: {sorted(PRUNING_SUFFIXES)}"
        ) from None
    return partitioning.label + suffix


@dataclass(frozen=True)
class OptimizationResult:
    """Everything one optimizer run produced."""

    plan: JoinTree
    cost: float
    stats: OptimizationStats
    elapsed: float
    enumerator: str
    pruning: str
    memo_entries: int
    query: Query
    #: Retained root plans in nondecreasing (cost, fingerprint) order when
    #: the run kept ranks beyond the first (``topk > 1``); empty otherwise.
    ranked_plans: Tuple[JoinTree, ...] = ()

    @property
    def ranked(self) -> Tuple[JoinTree, ...]:
        """The ranked plan stream; ``(plan,)`` for single-best runs."""
        return self.ranked_plans if self.ranked_plans else (self.plan,)

    @property
    def label(self) -> str:
        """Paper-style algorithm name (Table I)."""
        if self.pruning == "dpccp":
            return "DPccp"
        if self.pruning == "dpconv":
            return "DPconv"
        return algorithm_label(self.enumerator, self.pruning)

    def explain(self) -> str:
        """EXPLAIN-style rendering of the chosen plan."""
        return self.plan.explain()


class Optimizer:
    """A reusable (enumerator, pruning, cost model) configuration.

    Parameters
    ----------
    enumerator:
        Partitioning strategy name (``"naive"``, ``"mincut_lazy"``,
        ``"mincut_branch"``, ``"mincut_conservative"``).
    pruning:
        ``"none"``, ``"acb"``, ``"pcb"``, ``"apcb"``, ``"apcbi"``,
        ``"apcbi_opt"`` or ``"dpconv"`` (the bottom-up subset-convolution
        fast path; falls back to DPccp when the bound cost model is not
        ``C_out``-shaped or ``topk > 1`` — the fallback is honest, the
        result reports ``pruning == "dpccp"``).
    cost_model_factory:
        Zero-argument callable producing a fresh cost model per query
        (models may bind per-query state, e.g. :class:`CoutCostModel`).
    config:
        Advancement toggles for APCBI; ignored by other prunings.
    heuristic:
        Join-heuristic name for APCBI's advancement 2 (``"goo"``,
        ``"quickpick"``, ``"min_selectivity"``); ignored by other prunings.
    plan_cache:
        Optional cross-query :class:`~repro.context.PlanCache`.  When set,
        ``optimize`` consults it before enumerating and stores every fresh
        result; one cache instance may be shared by many optimizers (the
        algorithm configuration is part of the key).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` bundle.  When set it
        is threaded into every per-query context, so the plan generators
        record ``enumerate`` spans and the cache path emits
        ``plan_cache_hit`` events.  Telemetry never influences plan
        choice.
    dpconv_auto:
        When True (the default), unbudgeted single-best runs on
        :data:`DPCONV_AUTO_MIN_RELATIONS`-or-larger queries whose bound
        cost model is ``C_out``-shaped are served by the DPconv
        subset-convolution fast path instead of the requested top-down
        algorithm.  Every algorithm involved is exact, so the optimal
        *cost* is unchanged; only wall-clock (and, on exact-cost ties,
        plan shape) can differ.  The result reports
        ``pruning == "dpconv"`` whenever the fast path actually ran.
    """

    def __init__(
        self,
        enumerator: str = "mincut_conservative",
        pruning: str = "apcbi",
        cost_model_factory: Callable[[], CostModel] = HaasCostModel,
        config: Optional[AdvancementConfig] = None,
        heuristic: str = "goo",
        plan_cache: Optional[PlanCache] = None,
        telemetry: Optional["Telemetry"] = None,
        topk: int = 1,
        dpconv_auto: bool = True,
    ):
        if topk < 1:
            raise ValueError(f"topk must be >= 1, got {topk}")
        self.enumerator = enumerator
        self.pruning = pruning
        self._cost_model_factory = cost_model_factory
        self.config = config if config is not None else AdvancementConfig.all_on()
        self.heuristic = heuristic
        self.plan_cache = plan_cache
        self.telemetry = telemetry
        self.topk = topk
        self.dpconv_auto = dpconv_auto
        self._signature: Optional[str] = None
        # Fail fast on typos.
        get_partitioning(enumerator)
        get_heuristic(heuristic)
        if pruning not in PRUNING_SUFFIXES and pruning != "dpconv":
            raise UnknownAlgorithmError(
                f"unknown pruning strategy {pruning!r}; "
                f"available: {sorted(PRUNING_SUFFIXES) + ['dpconv']}"
            )

    # ------------------------------------------------------------------

    def _context_for(
        self, query: Query, budget: Optional["Budget"]
    ) -> OptimizationContext:
        """One fresh context per query: provider, bound model, builder."""
        return OptimizationContext.for_query(
            query,
            cost_model=self._cost_model_factory,
            budget=budget,
            telemetry=self.telemetry,
            topk=self.topk,
        )

    def _config_signature(self) -> str:
        """Cache-key fragment identifying this optimizer configuration.

        Two optimizers with the same signature produce the same plan for
        the same fingerprint, so they may share cache entries; anything
        that can change the winning plan (enumerator, pruning, cost model,
        heuristic, advancement toggles) is included.
        """
        if self._signature is None:
            flags = "".join(
                "1" if getattr(self.config, name) else "0"
                for name in ADVANCEMENT_NAMES
            )
            self._signature = "|".join(
                (
                    self.enumerator,
                    self.pruning,
                    self._cost_model_factory().name,
                    self.heuristic,
                    flags,
                )
            )
        return self._signature

    def _cache_key(self, fp_key: str, topk: int) -> str:
        """Cache key for one (configuration, fingerprint, k) combination.

        ``k=1`` keys keep the pre-top-k format, so existing persisted or
        shared entries stay addressable; ranked runs get their own keys
        because their entries carry the whole top-k list.
        """
        if topk > 1:
            return f"{self._config_signature()}|k{topk}|{fp_key}"
        return f"{self._config_signature()}|{fp_key}"

    def optimize(
        self,
        query: Query,
        budget: Optional["Budget"] = None,
        context: Optional[OptimizationContext] = None,
    ) -> OptimizationResult:
        """Find an optimal join tree for ``query``.

        ``budget`` (a :class:`repro.resilience.Budget`) makes the run
        *anytime*: enumeration checks it cooperatively and raises
        :class:`~repro.errors.BudgetExceeded` when it runs out.  Before
        propagating, the exception is enriched with the best complete plan
        registered so far (``partial_plan``, relabeled into the caller's
        relation numbering when advancement 6 renumbered the graph), so
        callers such as :class:`repro.resilience.ResilientOptimizer` can
        degrade gracefully instead of losing all work.

        ``context`` lets a caller that already built an
        :class:`~repro.context.OptimizationContext` for this query (the
        resilience ladder shares one across every rung) hand it in; by
        default a fresh context is created per call.
        """
        if context is not None:
            if context.query is not query:
                raise ValueError(
                    "context was built for a different query object"
                )
            if budget is None:
                budget = context.budget
        if budget is not None:
            budget.start()
        if self.plan_cache is not None:
            return self._optimize_cached(query, budget, context)
        return self._dispatch(query, budget, context)

    def optimize_topk(
        self,
        query: Query,
        k: Optional[int] = None,
        budget: Optional["Budget"] = None,
    ) -> OptimizationResult:
        """Ranked optimization: retain the ``k`` cheapest plans per class.

        Returns an :class:`OptimizationResult` whose ``ranked`` stream
        holds up to ``k`` distinct complete plans in nondecreasing
        (cost, fingerprint) order, rank 1 first.  Rank 1 is bit-for-bit
        the plan :meth:`optimize` returns — the k-bounded memo degenerates
        to the single-best store at ``k=1`` and only *loosens* pruning
        bounds beyond it (prefix property).  Every returned plan is
        validated (finite numbers, structural soundness) before the result
        is handed back.
        """
        if k is None:
            k = self.topk
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        run_context = OptimizationContext.for_query(
            query,
            cost_model=self._cost_model_factory,
            budget=budget,
            telemetry=self.telemetry,
            topk=k,
        )
        result = self.optimize(query, budget=budget, context=run_context)
        previous = None
        for rank, plan in enumerate(result.ranked, start=1):
            check_finite(plan)
            validate_plan(plan, query)
            if previous is not None and plan.cost < previous:
                raise PlanValidationError(
                    f"ranked stream out of order at rank {rank}: "
                    f"{plan.cost!r} < {previous!r}"
                )
            previous = plan.cost
        return result

    def _dispatch(
        self,
        query: Query,
        budget: Optional["Budget"],
        context: Optional[OptimizationContext],
    ) -> OptimizationResult:
        if self.pruning == "dpconv" or self._auto_fastpath_candidate(
            query, budget, context
        ):
            # Deciding eligibility needs the *bound* cost model, so the
            # per-query context is built here (outside the measured
            # interval, like APCBI's pre-pass machinery).
            if context is None:
                context = self._context_for(query, budget)
            if dpconv_eligible(context):
                return self._optimize_dpconv(query, budget, context)
            if self.pruning == "dpconv":
                return self._fallback_dpccp(query, budget, context)
            # Auto candidate that turned out ineligible: run what was
            # asked for, on the context already built.
        if self.pruning in PRUNING_STRATEGIES:
            return self._optimize_simple(query, budget, context)
        return self._optimize_apcbi(query, budget, context)

    def _auto_fastpath_candidate(
        self,
        query: Query,
        budget: Optional["Budget"],
        context: Optional[OptimizationContext],
    ) -> bool:
        """Cheap pre-context screen for the automatic DPconv fast path.

        Auto-selection is reserved for unbudgeted single-best large-n
        runs: a budgeted run wants the top-down generators' anytime
        best-so-far salvage, and ranked retention needs per-class
        candidate lists DPconv does not keep.  The C_out-shape half of the
        test needs the bound model and happens in :func:`dpconv_eligible`.
        """
        if not self.dpconv_auto or budget is not None:
            return False
        if (context.topk if context is not None else self.topk) != 1:
            return False
        return query.n_relations >= DPCONV_AUTO_MIN_RELATIONS

    def _optimize_dpconv(
        self,
        query: Query,
        budget: Optional["Budget"],
        context: OptimizationContext,
    ) -> OptimizationResult:
        """The subset-convolution fast path (see repro/baselines/dpconv.py)."""
        started = time.perf_counter()
        algorithm = DPconv(context=context, budget=budget)
        try:
            if self.telemetry is not None:
                with self.telemetry.span(
                    "enumerate",
                    enumerator="dpconv",
                    pruning="dpconv",
                    relations=query.n_relations,
                ) as span:
                    plan = algorithm.run()
                    span.set(ccps_enumerated=context.stats.ccps_enumerated)
            else:
                plan = algorithm.run()
        except BudgetExceeded as error:
            error.partial_plan = algorithm.memo.best(query.graph.all_vertices)
            error.partial_ranked = tuple(
                algorithm.memo.best_k(query.graph.all_vertices)
            )
            error.memo_entries = len(algorithm.memo)
            raise
        elapsed = time.perf_counter() - started
        return OptimizationResult(
            plan=plan,
            cost=plan.cost,
            stats=context.stats,
            elapsed=elapsed,
            enumerator="dpconv",
            pruning="dpconv",
            memo_entries=len(algorithm.memo),
            query=query,
        )

    def _fallback_dpccp(
        self,
        query: Query,
        budget: Optional["Budget"],
        context: OptimizationContext,
    ) -> OptimizationResult:
        """Honest fallback when ``pruning="dpconv"`` is not eligible.

        Runs DPccp — same plan space, any cost model, ranked retention —
        and labels the result ``dpccp`` so callers can see what actually
        served them; a ``dpconv_fallback`` telemetry event records why.
        """
        started = time.perf_counter()
        algorithm = DPccp(context=context, budget=budget)
        try:
            if self.telemetry is not None:
                with self.telemetry.span(
                    "enumerate",
                    enumerator="dpccp",
                    pruning="dpccp",
                    relations=query.n_relations,
                ) as span:
                    span.event(
                        "dpconv_fallback",
                        cost_model=context.cost_model.name,
                        topk=context.topk,
                        relations=query.n_relations,
                    )
                    plan = algorithm.run()
            else:
                plan = algorithm.run()
        except BudgetExceeded as error:
            error.partial_plan = algorithm.memo.best(query.graph.all_vertices)
            error.partial_ranked = tuple(
                algorithm.memo.best_k(query.graph.all_vertices)
            )
            error.memo_entries = len(algorithm.memo)
            raise
        elapsed = time.perf_counter() - started
        ranked: Tuple[JoinTree, ...] = ()
        if context.topk > 1:
            ranked = tuple(algorithm.ranked_plans())
        return OptimizationResult(
            plan=plan,
            cost=plan.cost,
            stats=context.stats,
            elapsed=elapsed,
            enumerator="dpccp",
            pruning="dpccp",
            memo_entries=len(algorithm.memo),
            query=query,
            ranked_plans=ranked,
        )

    # -- plan cache --------------------------------------------------------

    def _optimize_cached(
        self,
        query: Query,
        budget: Optional["Budget"],
        context: Optional[OptimizationContext],
    ) -> OptimizationResult:
        """Serve from / populate the cross-query plan cache.

        The key combines the query's canonical fingerprint with the
        optimizer's configuration signature, so isomorphic queries (up to
        estimate quantization) served by equivalent configurations share
        one entry.  A hit replays the stored canonical tree through the
        requesting query's context — cardinalities and costs on the
        returned plan are always native to the requesting query.
        """
        cache = self.plan_cache
        fp = fingerprint(query)
        topk = context.topk if context is not None else self.topk
        key = self._cache_key(fp.key, topk)
        entry = cache.get(key)
        if entry is not None:
            started = time.perf_counter()
            if context is None:
                context = self._context_for(query, budget)
            plan = replay_plan(entry.canonical_plan, fp.mapping, context)
            ranked: Tuple[JoinTree, ...] = ()
            if topk > 1 and entry.canonical_ranked:
                ranked = tuple(
                    replay_plan(canonical, fp.mapping, context)
                    for canonical in entry.canonical_ranked
                )
            context.stats.plan_cache_hits += 1
            if self.telemetry is not None:
                self.telemetry.event("plan_cache_hit", key=key)
            elapsed = time.perf_counter() - started
            return OptimizationResult(
                plan=plan,
                cost=plan.cost,
                stats=context.stats,
                elapsed=elapsed,
                enumerator=self.enumerator,
                pruning=self.pruning,
                memo_entries=0,
                query=query,
                ranked_plans=ranked,
            )
        result = self._dispatch(query, budget, context)
        result.stats.plan_cache_misses += 1
        # Never cache a plan whose numbers are not finite: a faulting cost
        # model (e.g. under fault injection) could otherwise poison the
        # cache and serve its garbage tree shape to healthy queries later.
        try:
            check_finite(result.plan)
            for ranked_plan in result.ranked_plans:
                check_finite(ranked_plan)
        except PlanValidationError:
            return result
        canonical = result.plan.relabel(fp.mapping)
        canonical_ranked = tuple(
            ranked_plan.relabel(fp.mapping) for ranked_plan in result.ranked_plans
        )
        # The taint on `result` is its wall-clock `elapsed` field; the
        # relabeled plan trees (deterministic) are what gets served, and
        # the timing rides along only as admission provenance for the
        # durable tier — it never influences any plan decision.
        cache.put(  # repro: disable=determinism
            key,
            CachedPlan(
                canonical,
                fp.payload,
                canonical_ranked,
                cold_seconds=result.elapsed,
                expansions=result.stats.ccps_enumerated,
            ),
        )
        return result

    # -- simple strategies (none / acb / pcb / apcb) -----------------------

    def _optimize_simple(
        self,
        query: Query,
        budget: Optional["Budget"] = None,
        context: Optional[OptimizationContext] = None,
    ) -> OptimizationResult:
        partitioning = get_partitioning(self.enumerator)
        generator_cls = PRUNING_STRATEGIES[self.pruning]
        started = time.perf_counter()
        if context is None:
            context = self._context_for(query, budget)
        generator = generator_cls(
            partitioning=partitioning, context=context, budget=budget
        )
        try:
            plan = generator.run()
        except BudgetExceeded as error:
            error.partial_plan = generator.memo.best(query.graph.all_vertices)
            error.partial_ranked = tuple(
                generator.memo.best_k(query.graph.all_vertices)
            )
            error.memo_entries = len(generator.memo)
            raise
        elapsed = time.perf_counter() - started
        ranked: Tuple[JoinTree, ...] = ()
        if context.topk > 1:
            ranked = tuple(generator.memo.best_k(query.graph.all_vertices))
        return OptimizationResult(
            plan=plan,
            cost=plan.cost,
            stats=context.stats,
            elapsed=elapsed,
            enumerator=self.enumerator,
            pruning=self.pruning,
            memo_entries=len(generator.memo),
            query=query,
            ranked_plans=ranked,
        )

    # -- APCBI / APCBI_Opt -------------------------------------------------

    def _optimize_apcbi(
        self,
        query: Query,
        budget: Optional["Budget"] = None,
        context: Optional[OptimizationContext] = None,
    ) -> OptimizationResult:
        partitioning = get_partitioning(self.enumerator)
        config = self.config
        if context is None:
            context = self._context_for(query, budget)
        stats = context.stats

        # APCBI_Opt: oracle upper bounds from an *untimed* DPccp pre-pass.
        # The pre-pass shares the run's budget: it is excluded from the
        # *measured* time (§V-C) but not from the caller's wall-clock
        # allowance — an anytime contract that ignored the most expensive
        # phase would be useless.  It runs on a fork of the query's context
        # — same provider (its memoized statistics carry over into
        # enumeration), fresh counters (its work stays untimed/uncounted).
        oracle_plan: Optional[JoinTree] = None
        oracle_bounds: Optional[Dict[int, float]] = None
        if self.pruning == "apcbi_opt":
            oracle = DPccp(context=context.fork(), budget=budget)
            oracle_plan = oracle.run()
            oracle_bounds = oracle.optimal_class_costs()

        started = time.perf_counter()
        run_context = context
        mapping = None
        upper_bounds = oracle_bounds
        # A complete heuristic tree in the *original* numbering; doubles as
        # the anytime fallback when the budget expires before enumeration
        # registers a root plan.
        heuristic_tree: Optional[JoinTree] = None
        if config.renumber_graph and query.n_relations > 2:
            # Advancement 6 needs a heuristic join tree before enumeration.
            # For APCBI_Opt the oracle's optimal tree doubles as the
            # heuristic; otherwise GOO runs here (its time is measured and
            # its tree also seeds the uB table, advancement 2).
            if oracle_plan is not None:
                heuristic_tree = oracle_plan
            else:
                heuristic_result = get_heuristic(self.heuristic).build(
                    query, context.builder
                )
                heuristic_tree = heuristic_result.tree
                if config.heuristic_upper_bounds:
                    upper_bounds = dict(heuristic_result.subtree_costs)
                else:
                    upper_bounds = {}
            mapping = renumber_mapping(heuristic_tree, query.n_relations)
            # The renumbered query runs on a relabeled context: own provider
            # and bound model, shared counters and budget.
            run_context = context.relabeled(mapping)
            if upper_bounds:
                upper_bounds = {
                    remap_bitset(vertex_set, mapping): cost
                    for vertex_set, cost in upper_bounds.items()
                }
        run_query = run_context.query

        generator = ApcbiPlanGenerator(
            partitioning=partitioning,
            context=run_context,
            config=config,
            upper_bounds=upper_bounds,
            heuristic=get_heuristic(self.heuristic),
            budget=budget,
        )
        try:
            plan = generator.run()
        except BudgetExceeded as error:
            partial = generator.memo.best(run_query.graph.all_vertices)
            partial_ranked = tuple(
                generator.memo.best_k(run_query.graph.all_vertices)
            )
            if mapping is not None:
                inverse = invert_mapping(mapping)
                if partial is not None:
                    partial = partial.relabel(inverse)
                partial_ranked = tuple(
                    tree.relabel(inverse) for tree in partial_ranked
                )
            if partial is None:
                # Advancement 2/6 built a complete heuristic tree before
                # enumeration started — the legitimate best-so-far plan.
                partial = heuristic_tree or generator.heuristic_tree
                if partial is not None:
                    partial_ranked = (partial,)
            error.partial_plan = partial
            error.partial_ranked = partial_ranked
            error.memo_entries = len(generator.memo)
            raise
        ranked: Tuple[JoinTree, ...] = ()
        if run_context.topk > 1:
            ranked = tuple(generator.memo.best_k(run_query.graph.all_vertices))
        if mapping is not None:
            inverse = invert_mapping(mapping)
            plan = plan.relabel(inverse)
            ranked = tuple(tree.relabel(inverse) for tree in ranked)
        elapsed = time.perf_counter() - started
        return OptimizationResult(
            plan=plan,
            cost=plan.cost,
            stats=stats,
            elapsed=elapsed,
            enumerator=self.enumerator,
            pruning=self.pruning,
            memo_entries=len(generator.memo),
            query=query,
            ranked_plans=ranked,
        )


def optimize(
    query: Query,
    enumerator: str = "mincut_conservative",
    pruning: str = "apcbi",
    cost_model_factory: Callable[[], CostModel] = HaasCostModel,
    config: Optional[AdvancementConfig] = None,
    heuristic: str = "goo",
    budget: Optional["Budget"] = None,
    plan_cache: Optional[PlanCache] = None,
    telemetry: Optional["Telemetry"] = None,
) -> OptimizationResult:
    """One-shot convenience wrapper around :class:`Optimizer`."""
    return Optimizer(
        enumerator=enumerator,
        pruning=pruning,
        cost_model_factory=cost_model_factory,
        config=config,
        heuristic=heuristic,
        plan_cache=plan_cache,
        telemetry=telemetry,
    ).optimize(query, budget=budget)


def optimize_topk(
    query: Query,
    k: int,
    enumerator: str = "mincut_conservative",
    pruning: str = "apcbi",
    cost_model_factory: Callable[[], CostModel] = HaasCostModel,
    config: Optional[AdvancementConfig] = None,
    heuristic: str = "goo",
    budget: Optional["Budget"] = None,
    plan_cache: Optional[PlanCache] = None,
    telemetry: Optional["Telemetry"] = None,
) -> OptimizationResult:
    """One-shot ranked optimization: the ``k`` cheapest plans, rank 1 first.

    ``result.ranked`` holds up to ``k`` distinct validated plans in
    nondecreasing (cost, fingerprint) order; ``result.plan`` is rank 1 and
    identical to what :func:`optimize` returns for the same configuration.
    """
    return Optimizer(
        enumerator=enumerator,
        pruning=pruning,
        cost_model_factory=cost_model_factory,
        config=config,
        heuristic=heuristic,
        plan_cache=plan_cache,
        telemetry=telemetry,
        topk=k,
    ).optimize_topk(query, k=k, budget=budget)


def run_dpconv(
    query: Query,
    cost_model_factory: Callable[[], CostModel] = CoutCostModel,
    budget: Optional["Budget"] = None,
    telemetry: Optional["Telemetry"] = None,
) -> OptimizationResult:
    """Run the DPconv baseline with the same result envelope as DPccp.

    Unlike ``Optimizer(pruning="dpconv")`` this does **not** fall back:
    an ineligible configuration (non-``C_out``-shaped model) raises
    :class:`~repro.errors.OptimizationError`, which is what a benchmark
    harness comparing the two baselines wants.  The default cost model is
    therefore :class:`~repro.cost.cout.CoutCostModel`, the one shipped
    model inside DPconv's envelope.
    """
    started = time.perf_counter()
    if budget is not None:
        budget.start()
    context = OptimizationContext.for_query(
        query,
        cost_model=cost_model_factory,
        budget=budget,
        telemetry=telemetry,
    )
    algorithm = DPconv(context=context, budget=budget)
    if telemetry is not None:
        with telemetry.span(
            "enumerate",
            enumerator="dpconv",
            pruning="dpconv",
            relations=query.n_relations,
        ) as span:
            plan = algorithm.run()
            span.set(ccps_enumerated=context.stats.ccps_enumerated)
    else:
        plan = algorithm.run()
    elapsed = time.perf_counter() - started
    return OptimizationResult(
        plan=plan,
        cost=plan.cost,
        stats=context.stats,
        elapsed=elapsed,
        enumerator="dpconv",
        pruning="dpconv",
        memo_entries=len(algorithm.memo),
        query=query,
    )


def run_dpccp(
    query: Query,
    cost_model_factory: Callable[[], CostModel] = HaasCostModel,
    budget: Optional["Budget"] = None,
    telemetry: Optional["Telemetry"] = None,
    topk: int = 1,
) -> OptimizationResult:
    """Run the bottom-up baseline with the same result envelope."""
    started = time.perf_counter()
    if budget is not None:
        budget.start()
    context = OptimizationContext.for_query(
        query,
        cost_model=cost_model_factory,
        budget=budget,
        telemetry=telemetry,
        topk=topk,
    )
    algorithm = DPccp(context=context, budget=budget)
    if telemetry is not None:
        with telemetry.span(
            "enumerate",
            enumerator="dpccp",
            pruning="dpccp",
            relations=query.n_relations,
        ) as span:
            plan = algorithm.run()
            span.set(ccps_enumerated=context.stats.ccps_enumerated)
    else:
        plan = algorithm.run()
    elapsed = time.perf_counter() - started
    ranked: Tuple[JoinTree, ...] = ()
    if topk > 1:
        ranked = tuple(algorithm.ranked_plans())
    return OptimizationResult(
        plan=plan,
        cost=plan.cost,
        stats=context.stats,
        elapsed=elapsed,
        enumerator="dpccp",
        pruning="dpccp",
        memo_entries=len(algorithm.memo),
        query=query,
        ranked_plans=ranked,
    )
