"""The optimizer facade — the library's main entry point.

``optimize(query, enumerator=..., pruning=...)`` wires together a
partitioning strategy, a pruning policy, a cost model and the shared plan
infrastructure (one :class:`~repro.context.OptimizationContext` per
query), runs plan generation, and returns an :class:`OptimizationResult`
carrying the plan, its cost, the run counters and the measured wall time.

An :class:`Optimizer` may additionally be given a
:class:`~repro.context.PlanCache`; ``optimize`` then fingerprints each
query (:func:`repro.context.fingerprint`) and serves structurally
identical repeats from the cache — replaying the stored canonical tree
through the requesting query's context — instead of enumerating again.

Timing semantics follow §V-C: the measured interval covers everything the
optimizer does at query time — including the GOO heuristic and the graph
renumbering of APCBI — but *excludes* the DPccp pre-pass that supplies
APCBI_Opt's oracle upper bounds ("we do not include the pre-computation
time", §V-C).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional, Type

from repro.baselines.dpccp import DPccp
from repro.context.context import OptimizationContext
from repro.context.fingerprint import fingerprint
from repro.context.plancache import CachedPlan, PlanCache, replay_plan
from repro.core.acb import AcbPlanGenerator
from repro.core.advancements import ADVANCEMENT_NAMES, AdvancementConfig
from repro.core.apcb import ApcbPlanGenerator
from repro.core.apcbi import ApcbiPlanGenerator
from repro.core.goo import run_goo
from repro.core.pcb import PcbPlanGenerator
from repro.core.plangen import PlanGeneratorBase, TopDownPlanGenerator
from repro.cost.haas import HaasCostModel
from repro.cost.model import CostModel
from repro.errors import BudgetExceeded, UnknownAlgorithmError
from repro.graph.renumber import invert_mapping, remap_bitset, renumber_mapping
from repro.heuristics.registry import get_heuristic
from repro.partitioning.registry import get_partitioning
from repro.plans.join_tree import JoinTree
from repro.plans.validation import PlanValidationError, check_finite
from repro.query import Query
from repro.stats.counters import OptimizationStats

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a package cycle
    from repro.resilience.budget import Budget
    from repro.telemetry import Telemetry

__all__ = [
    "OptimizationResult",
    "Optimizer",
    "optimize",
    "run_dpccp",
    "PRUNING_STRATEGIES",
    "PRUNING_SUFFIXES",
    "algorithm_label",
]

#: Pruning name -> plan generator class for the simple (non-APCBI) variants.
PRUNING_STRATEGIES: Dict[str, Type[PlanGeneratorBase]] = {
    "none": TopDownPlanGenerator,
    "acb": AcbPlanGenerator,
    "pcb": PcbPlanGenerator,
    "apcb": ApcbPlanGenerator,
}

#: Table I display suffixes.
PRUNING_SUFFIXES: Dict[str, str] = {
    "none": "",
    "acb": "_ACB",
    "pcb": "_PCB",
    "apcb": "_APCB",
    "apcbi": "_APCBI",
    "apcbi_opt": "_APCBI_Opt",
}


def algorithm_label(enumerator: str, pruning: str) -> str:
    """Paper-style display name, e.g. ``TDMcC_APCBI`` (Table I)."""
    partitioning = get_partitioning(enumerator)
    try:
        suffix = PRUNING_SUFFIXES[pruning]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown pruning strategy {pruning!r}; "
            f"available: {sorted(PRUNING_SUFFIXES)}"
        ) from None
    return partitioning.label + suffix


@dataclass(frozen=True)
class OptimizationResult:
    """Everything one optimizer run produced."""

    plan: JoinTree
    cost: float
    stats: OptimizationStats
    elapsed: float
    enumerator: str
    pruning: str
    memo_entries: int
    query: Query

    @property
    def label(self) -> str:
        """Paper-style algorithm name (Table I)."""
        if self.pruning == "dpccp":
            return "DPccp"
        return algorithm_label(self.enumerator, self.pruning)

    def explain(self) -> str:
        """EXPLAIN-style rendering of the chosen plan."""
        return self.plan.explain()


class Optimizer:
    """A reusable (enumerator, pruning, cost model) configuration.

    Parameters
    ----------
    enumerator:
        Partitioning strategy name (``"naive"``, ``"mincut_lazy"``,
        ``"mincut_branch"``, ``"mincut_conservative"``).
    pruning:
        ``"none"``, ``"acb"``, ``"pcb"``, ``"apcb"``, ``"apcbi"`` or
        ``"apcbi_opt"``.
    cost_model_factory:
        Zero-argument callable producing a fresh cost model per query
        (models may bind per-query state, e.g. :class:`CoutCostModel`).
    config:
        Advancement toggles for APCBI; ignored by other prunings.
    heuristic:
        Join-heuristic name for APCBI's advancement 2 (``"goo"``,
        ``"quickpick"``, ``"min_selectivity"``); ignored by other prunings.
    plan_cache:
        Optional cross-query :class:`~repro.context.PlanCache`.  When set,
        ``optimize`` consults it before enumerating and stores every fresh
        result; one cache instance may be shared by many optimizers (the
        algorithm configuration is part of the key).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` bundle.  When set it
        is threaded into every per-query context, so the plan generators
        record ``enumerate`` spans and the cache path emits
        ``plan_cache_hit`` events.  Telemetry never influences plan
        choice.
    """

    def __init__(
        self,
        enumerator: str = "mincut_conservative",
        pruning: str = "apcbi",
        cost_model_factory: Callable[[], CostModel] = HaasCostModel,
        config: Optional[AdvancementConfig] = None,
        heuristic: str = "goo",
        plan_cache: Optional[PlanCache] = None,
        telemetry: Optional["Telemetry"] = None,
    ):
        self.enumerator = enumerator
        self.pruning = pruning
        self._cost_model_factory = cost_model_factory
        self.config = config if config is not None else AdvancementConfig.all_on()
        self.heuristic = heuristic
        self.plan_cache = plan_cache
        self.telemetry = telemetry
        self._signature: Optional[str] = None
        # Fail fast on typos.
        get_partitioning(enumerator)
        get_heuristic(heuristic)
        if pruning not in PRUNING_SUFFIXES:
            raise UnknownAlgorithmError(
                f"unknown pruning strategy {pruning!r}; "
                f"available: {sorted(PRUNING_SUFFIXES)}"
            )

    # ------------------------------------------------------------------

    def _context_for(
        self, query: Query, budget: Optional["Budget"]
    ) -> OptimizationContext:
        """One fresh context per query: provider, bound model, builder."""
        return OptimizationContext.for_query(
            query,
            cost_model=self._cost_model_factory,
            budget=budget,
            telemetry=self.telemetry,
        )

    def _config_signature(self) -> str:
        """Cache-key fragment identifying this optimizer configuration.

        Two optimizers with the same signature produce the same plan for
        the same fingerprint, so they may share cache entries; anything
        that can change the winning plan (enumerator, pruning, cost model,
        heuristic, advancement toggles) is included.
        """
        if self._signature is None:
            flags = "".join(
                "1" if getattr(self.config, name) else "0"
                for name in ADVANCEMENT_NAMES
            )
            self._signature = "|".join(
                (
                    self.enumerator,
                    self.pruning,
                    self._cost_model_factory().name,
                    self.heuristic,
                    flags,
                )
            )
        return self._signature

    def optimize(
        self,
        query: Query,
        budget: Optional["Budget"] = None,
        context: Optional[OptimizationContext] = None,
    ) -> OptimizationResult:
        """Find an optimal join tree for ``query``.

        ``budget`` (a :class:`repro.resilience.Budget`) makes the run
        *anytime*: enumeration checks it cooperatively and raises
        :class:`~repro.errors.BudgetExceeded` when it runs out.  Before
        propagating, the exception is enriched with the best complete plan
        registered so far (``partial_plan``, relabeled into the caller's
        relation numbering when advancement 6 renumbered the graph), so
        callers such as :class:`repro.resilience.ResilientOptimizer` can
        degrade gracefully instead of losing all work.

        ``context`` lets a caller that already built an
        :class:`~repro.context.OptimizationContext` for this query (the
        resilience ladder shares one across every rung) hand it in; by
        default a fresh context is created per call.
        """
        if context is not None:
            if context.query is not query:
                raise ValueError(
                    "context was built for a different query object"
                )
            if budget is None:
                budget = context.budget
        if budget is not None:
            budget.start()
        if self.plan_cache is not None:
            return self._optimize_cached(query, budget, context)
        return self._dispatch(query, budget, context)

    def _dispatch(
        self,
        query: Query,
        budget: Optional["Budget"],
        context: Optional[OptimizationContext],
    ) -> OptimizationResult:
        if self.pruning in PRUNING_STRATEGIES:
            return self._optimize_simple(query, budget, context)
        return self._optimize_apcbi(query, budget, context)

    # -- plan cache --------------------------------------------------------

    def _optimize_cached(
        self,
        query: Query,
        budget: Optional["Budget"],
        context: Optional[OptimizationContext],
    ) -> OptimizationResult:
        """Serve from / populate the cross-query plan cache.

        The key combines the query's canonical fingerprint with the
        optimizer's configuration signature, so isomorphic queries (up to
        estimate quantization) served by equivalent configurations share
        one entry.  A hit replays the stored canonical tree through the
        requesting query's context — cardinalities and costs on the
        returned plan are always native to the requesting query.
        """
        cache = self.plan_cache
        fp = fingerprint(query)
        key = f"{self._config_signature()}|{fp.key}"
        entry = cache.get(key)
        if entry is not None:
            started = time.perf_counter()
            if context is None:
                context = self._context_for(query, budget)
            plan = replay_plan(entry.canonical_plan, fp.mapping, context)
            context.stats.plan_cache_hits += 1
            if self.telemetry is not None:
                self.telemetry.event("plan_cache_hit", key=key)
            elapsed = time.perf_counter() - started
            return OptimizationResult(
                plan=plan,
                cost=plan.cost,
                stats=context.stats,
                elapsed=elapsed,
                enumerator=self.enumerator,
                pruning=self.pruning,
                memo_entries=0,
                query=query,
            )
        result = self._dispatch(query, budget, context)
        result.stats.plan_cache_misses += 1
        # Never cache a plan whose numbers are not finite: a faulting cost
        # model (e.g. under fault injection) could otherwise poison the
        # cache and serve its garbage tree shape to healthy queries later.
        try:
            check_finite(result.plan)
        except PlanValidationError:
            return result
        canonical = result.plan.relabel(fp.mapping)
        # The taint on `result` is its wall-clock `elapsed` field; only the
        # relabeled plan tree (deterministic) is cached, never the timing.
        cache.put(key, CachedPlan(canonical, fp.payload))  # repro: disable=determinism
        return result

    # -- simple strategies (none / acb / pcb / apcb) -----------------------

    def _optimize_simple(
        self,
        query: Query,
        budget: Optional["Budget"] = None,
        context: Optional[OptimizationContext] = None,
    ) -> OptimizationResult:
        partitioning = get_partitioning(self.enumerator)
        generator_cls = PRUNING_STRATEGIES[self.pruning]
        started = time.perf_counter()
        if context is None:
            context = self._context_for(query, budget)
        generator = generator_cls(
            partitioning=partitioning, context=context, budget=budget
        )
        try:
            plan = generator.run()
        except BudgetExceeded as error:
            error.partial_plan = generator.memo.best(query.graph.all_vertices)
            error.memo_entries = len(generator.memo)
            raise
        elapsed = time.perf_counter() - started
        return OptimizationResult(
            plan=plan,
            cost=plan.cost,
            stats=context.stats,
            elapsed=elapsed,
            enumerator=self.enumerator,
            pruning=self.pruning,
            memo_entries=len(generator.memo),
            query=query,
        )

    # -- APCBI / APCBI_Opt -------------------------------------------------

    def _optimize_apcbi(
        self,
        query: Query,
        budget: Optional["Budget"] = None,
        context: Optional[OptimizationContext] = None,
    ) -> OptimizationResult:
        partitioning = get_partitioning(self.enumerator)
        config = self.config
        if context is None:
            context = self._context_for(query, budget)
        stats = context.stats

        # APCBI_Opt: oracle upper bounds from an *untimed* DPccp pre-pass.
        # The pre-pass shares the run's budget: it is excluded from the
        # *measured* time (§V-C) but not from the caller's wall-clock
        # allowance — an anytime contract that ignored the most expensive
        # phase would be useless.  It runs on a fork of the query's context
        # — same provider (its memoized statistics carry over into
        # enumeration), fresh counters (its work stays untimed/uncounted).
        oracle_plan: Optional[JoinTree] = None
        oracle_bounds: Optional[Dict[int, float]] = None
        if self.pruning == "apcbi_opt":
            oracle = DPccp(context=context.fork(), budget=budget)
            oracle_plan = oracle.run()
            oracle_bounds = oracle.optimal_class_costs()

        started = time.perf_counter()
        run_context = context
        mapping = None
        upper_bounds = oracle_bounds
        # A complete heuristic tree in the *original* numbering; doubles as
        # the anytime fallback when the budget expires before enumeration
        # registers a root plan.
        heuristic_tree: Optional[JoinTree] = None
        if config.renumber_graph and query.n_relations > 2:
            # Advancement 6 needs a heuristic join tree before enumeration.
            # For APCBI_Opt the oracle's optimal tree doubles as the
            # heuristic; otherwise GOO runs here (its time is measured and
            # its tree also seeds the uB table, advancement 2).
            if oracle_plan is not None:
                heuristic_tree = oracle_plan
            else:
                heuristic_result = get_heuristic(self.heuristic).build(
                    query, context.builder
                )
                heuristic_tree = heuristic_result.tree
                if config.heuristic_upper_bounds:
                    upper_bounds = dict(heuristic_result.subtree_costs)
                else:
                    upper_bounds = {}
            mapping = renumber_mapping(heuristic_tree, query.n_relations)
            # The renumbered query runs on a relabeled context: own provider
            # and bound model, shared counters and budget.
            run_context = context.relabeled(mapping)
            if upper_bounds:
                upper_bounds = {
                    remap_bitset(vertex_set, mapping): cost
                    for vertex_set, cost in upper_bounds.items()
                }
        run_query = run_context.query

        generator = ApcbiPlanGenerator(
            partitioning=partitioning,
            context=run_context,
            config=config,
            upper_bounds=upper_bounds,
            heuristic=get_heuristic(self.heuristic),
            budget=budget,
        )
        try:
            plan = generator.run()
        except BudgetExceeded as error:
            partial = generator.memo.best(run_query.graph.all_vertices)
            if partial is not None and mapping is not None:
                partial = partial.relabel(invert_mapping(mapping))
            if partial is None:
                # Advancement 2/6 built a complete heuristic tree before
                # enumeration started — the legitimate best-so-far plan.
                partial = heuristic_tree or generator.heuristic_tree
            error.partial_plan = partial
            error.memo_entries = len(generator.memo)
            raise
        if mapping is not None:
            plan = plan.relabel(invert_mapping(mapping))
        elapsed = time.perf_counter() - started
        return OptimizationResult(
            plan=plan,
            cost=plan.cost,
            stats=stats,
            elapsed=elapsed,
            enumerator=self.enumerator,
            pruning=self.pruning,
            memo_entries=len(generator.memo),
            query=query,
        )


def optimize(
    query: Query,
    enumerator: str = "mincut_conservative",
    pruning: str = "apcbi",
    cost_model_factory: Callable[[], CostModel] = HaasCostModel,
    config: Optional[AdvancementConfig] = None,
    heuristic: str = "goo",
    budget: Optional["Budget"] = None,
    plan_cache: Optional[PlanCache] = None,
    telemetry: Optional["Telemetry"] = None,
) -> OptimizationResult:
    """One-shot convenience wrapper around :class:`Optimizer`."""
    return Optimizer(
        enumerator=enumerator,
        pruning=pruning,
        cost_model_factory=cost_model_factory,
        config=config,
        heuristic=heuristic,
        plan_cache=plan_cache,
        telemetry=telemetry,
    ).optimize(query, budget=budget)


def run_dpccp(
    query: Query,
    cost_model_factory: Callable[[], CostModel] = HaasCostModel,
    budget: Optional["Budget"] = None,
    telemetry: Optional["Telemetry"] = None,
) -> OptimizationResult:
    """Run the bottom-up baseline with the same result envelope."""
    started = time.perf_counter()
    if budget is not None:
        budget.start()
    context = OptimizationContext.for_query(
        query,
        cost_model=cost_model_factory,
        budget=budget,
        telemetry=telemetry,
    )
    algorithm = DPccp(context=context, budget=budget)
    if telemetry is not None:
        with telemetry.span(
            "enumerate",
            enumerator="dpccp",
            pruning="dpccp",
            relations=query.n_relations,
        ) as span:
            plan = algorithm.run()
            span.set(ccps_enumerated=context.stats.ccps_enumerated)
    else:
        plan = algorithm.run()
    elapsed = time.perf_counter() - started
    return OptimizationResult(
        plan=plan,
        cost=plan.cost,
        stats=context.stats,
        elapsed=elapsed,
        enumerator="dpccp",
        pruning="dpccp",
        memo_entries=len(algorithm.memo),
        query=query,
    )
