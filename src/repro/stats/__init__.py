"""Run statistics: counters for Table III and diagnostics."""

from repro.stats.counters import OptimizationStats

__all__ = ["OptimizationStats"]
