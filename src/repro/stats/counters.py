"""Counters collected during one optimization run.

Table III of the paper reports, per query, the number of plan classes for
which a join tree was successfully built (subscript *s*) and the number of
times a join tree was requested but *not* built within its budget
(subscript *f*), both normalized by the number of plan classes DPccp
builds.  :class:`OptimizationStats` collects those plus a handful of
secondary counters that the ablation analysis and the tests use.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict

__all__ = ["OptimizationStats"]


@dataclass
class OptimizationStats:
    """Mutable counters for one optimizer run.

    Attributes
    ----------
    ccps_enumerated:
        ccps produced by the partitioning strategy (symmetric pairs once).
    ccps_considered:
        ccps that survived predicted-cost bounding and were priced.
    trees_created:
        Join trees constructed by CREATETREE (both orders counted).
    plan_classes_built:
        Distinct vertex sets (|S| >= 2) for which a best tree was
        registered — the *s* numerator of Table III.
    failed_builds:
        Enumeration passes over some ``P_ccp(S)`` that ended without a tree
        within the budget — the *f* numerator of Table III.
    memo_hits:
        Requests answered directly from the memotable.
    bound_rejections:
        Requests rejected immediately because the budget was below the
        proven lower bound ``lB[S]``.
    pcb_prunes:
        ccps skipped by predicted-cost bounding (LBE above the bound).
    plan_improvements:
        Times a newly created tree replaced a registered (worse) tree.
    budget_raises:
        Times the rising-budget advancement lifted a request's budget.
    lbe_evaluations:
        Lower-bound estimator invocations (the expensive part of PCB).
    plan_cache_hits:
        Queries answered from the cross-query
        :class:`~repro.context.PlanCache` without enumeration.
    plan_cache_misses:
        Queries that consulted the plan cache and had to enumerate.
    """

    ccps_enumerated: int = 0
    ccps_considered: int = 0
    trees_created: int = 0
    plan_classes_built: int = 0
    failed_builds: int = 0
    memo_hits: int = 0
    bound_rejections: int = 0
    pcb_prunes: int = 0
    plan_improvements: int = 0
    budget_raises: int = 0
    lbe_evaluations: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for JSON reports.

        Driven off ``dataclasses.fields`` so a newly added counter can
        never be silently dropped from reports (or from :meth:`merge`).
        """
        return {
            spec.name: getattr(self, spec.name) for spec in fields(self)
        }

    def merge(self, other: "OptimizationStats") -> "OptimizationStats":
        """Element-wise sum (used when aggregating workload runs)."""
        merged = OptimizationStats()
        for spec in fields(self):
            setattr(
                merged,
                spec.name,
                getattr(self, spec.name) + getattr(other, spec.name),
            )
        return merged
