"""QuickPick — randomized join-tree sampling (extension).

After Waas & Pellenkoft: draw join trees by repeatedly picking a *random*
join edge between two current components and merging them; keep the
cheapest of ``n_trials`` sampled trees.  A classic randomized alternative
to greedy heuristics (cf. Steinbrunn et al. [13]), useful here to study
how sensitive APCBI's advancement 2 is to upper-bound quality: QuickPick
bounds are noisier than GOO's but still sound.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.heuristics.base import (
    HeuristicResult,
    JoinHeuristic,
    collect_subtree_costs,
)
from repro.plans.builder import PlanBuilder
from repro.plans.join_tree import JoinTree
from repro.query import Query

__all__ = ["QuickPick"]


class QuickPick(JoinHeuristic):
    """Best of ``n_trials`` random edge-driven join trees.

    Parameters
    ----------
    n_trials:
        Number of random trees to sample; the cheapest wins.
    seed:
        Seed for the internal RNG, so runs are reproducible.
    """

    name = "quickpick"

    def __init__(self, n_trials: int = 16, seed: Optional[int] = 20120401):
        if n_trials < 1:
            raise ValueError(f"need >= 1 trial, got {n_trials}")
        self._n_trials = n_trials
        self._seed = seed

    def build(self, query: Query, builder: PlanBuilder) -> HeuristicResult:
        rng = random.Random(self._seed)
        best: Optional[JoinTree] = None
        for _ in range(self._n_trials):
            candidate = self._sample_tree(query, builder, rng)
            if best is None or candidate.cost < best.cost:
                best = candidate
        assert best is not None
        return HeuristicResult(best, collect_subtree_costs(best))

    def _sample_tree(
        self, query: Query, builder: PlanBuilder, rng: random.Random
    ) -> JoinTree:
        graph = query.graph
        forest: List[JoinTree] = [
            builder.leaf(query, index) for index in range(query.n_relations)
        ]
        while len(forest) > 1:
            # Pick a random pair of edge-connected components.
            pairs = [
                (i, j)
                for i in range(len(forest))
                for j in range(i + 1, len(forest))
                if graph.are_connected(forest[i].vertex_set, forest[j].vertex_set)
            ]
            i, j = rng.choice(pairs)
            left, right = forest[i], forest[j]
            first = builder.create_tree(left, right)
            second = builder.create_tree(right, left)
            joined = first if first.cost <= second.cost else second
            forest.pop(j)
            forest.pop(i)
            forest.append(joined)
        return forest[0]
