"""Name -> join heuristic registry."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import UnknownAlgorithmError
from repro.heuristics.base import JoinHeuristic
from repro.heuristics.goo import GreedyOperatorOrdering
from repro.heuristics.ikkbz import IKKBZ
from repro.heuristics.min_selectivity import MinSelectivity
from repro.heuristics.quickpick import QuickPick

__all__ = ["get_heuristic", "available_heuristics", "HEURISTICS"]

#: Factories rather than singletons: QuickPick carries RNG state knobs.
HEURISTICS: Dict[str, Callable[[], JoinHeuristic]] = {
    "goo": GreedyOperatorOrdering,
    "quickpick": QuickPick,
    "min_selectivity": MinSelectivity,
    "ikkbz": IKKBZ,
}


def get_heuristic(name: str) -> JoinHeuristic:
    """Instantiate a join heuristic by registry name."""
    try:
        return HEURISTICS[name]()
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown join heuristic {name!r}; available: {sorted(HEURISTICS)}"
        ) from None


def available_heuristics() -> List[str]:
    """Registry names of all join heuristics."""
    return sorted(HEURISTICS)
