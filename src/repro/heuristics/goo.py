"""GOO as a :class:`JoinHeuristic` (the paper's choice for advancement 2)."""

from __future__ import annotations

from repro.core.goo import run_goo
from repro.heuristics.base import HeuristicResult, JoinHeuristic
from repro.plans.builder import PlanBuilder
from repro.query import Query

__all__ = ["GreedyOperatorOrdering"]


class GreedyOperatorOrdering(JoinHeuristic):
    """Fegaras' GOO: greedily join the pair with the smallest result."""

    name = "goo"

    def build(self, query: Query, builder: PlanBuilder) -> HeuristicResult:
        return run_goo(query, builder)
