"""Minimum-selectivity greedy heuristic (extension).

A second deterministic greedy criterion (cf. Steinbrunn et al. [13]):
instead of GOO's "smallest result cardinality", join the component pair
connected by the *most selective* predicate set first.  On workloads where
selectivities and cardinalities disagree this produces different trees
than GOO, which makes it useful for studying the robustness of APCBI's
heuristic-seeded bounds.
"""

from __future__ import annotations

from typing import List

from repro.heuristics.base import (
    HeuristicResult,
    JoinHeuristic,
    collect_subtree_costs,
)
from repro.plans.builder import PlanBuilder
from repro.plans.join_tree import JoinTree
from repro.query import Query

__all__ = ["MinSelectivity"]


class MinSelectivity(JoinHeuristic):
    """Greedily join the pair with the smallest combined selectivity."""

    name = "min_selectivity"

    def build(self, query: Query, builder: PlanBuilder) -> HeuristicResult:
        graph = query.graph
        catalog = query.catalog
        forest: List[JoinTree] = [
            builder.leaf(query, index) for index in range(query.n_relations)
        ]
        while len(forest) > 1:
            best_pair = None
            best_selectivity = float("inf")
            for i in range(len(forest)):
                set_i = forest[i].vertex_set
                for j in range(i + 1, len(forest)):
                    set_j = forest[j].vertex_set
                    selectivity = 1.0
                    crossing = False
                    for u, v in graph.edges_between(set_i, set_j):
                        crossing = True
                        selectivity *= catalog.selectivity(u, v)
                    if crossing and selectivity < best_selectivity:
                        best_selectivity = selectivity
                        best_pair = (i, j)
            if best_pair is None:  # pragma: no cover - connected graphs
                raise RuntimeError(
                    "MinSelectivity found no joinable pair on a connected graph"
                )
            i, j = best_pair
            left, right = forest[i], forest[j]
            first = builder.create_tree(left, right)
            second = builder.create_tree(right, left)
            joined = first if first.cost <= second.cost else second
            forest.pop(j)
            forest.pop(i)
            forest.append(joined)
        return HeuristicResult(forest[0], collect_subtree_costs(forest[0]))
