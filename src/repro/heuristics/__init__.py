"""Join heuristics: GOO (the paper's choice) plus pluggable alternatives."""

from repro.heuristics.base import (
    HeuristicResult,
    JoinHeuristic,
    collect_subtree_costs,
)
from repro.heuristics.goo import GreedyOperatorOrdering
from repro.heuristics.ikkbz import IKKBZ
from repro.heuristics.min_selectivity import MinSelectivity
from repro.heuristics.quickpick import QuickPick
from repro.heuristics.registry import (
    HEURISTICS,
    available_heuristics,
    get_heuristic,
)

__all__ = [
    "JoinHeuristic",
    "HeuristicResult",
    "collect_subtree_costs",
    "GreedyOperatorOrdering",
    "QuickPick",
    "MinSelectivity",
    "IKKBZ",
    "get_heuristic",
    "available_heuristics",
    "HEURISTICS",
]
