"""IKKBZ — the Ibaraki/Kameda + Krishnamurthy/Boral/Zaniolo heuristic.

A classic polynomial-time join-ordering algorithm (extension; the paper
only requires *some* heuristic for advancement 2 and picked GOO).  IKKBZ
produces the optimal **left-deep** plan for tree-shaped query graphs under
an ASI (adjacent sequence interchange) cost function; we use the standard
``C_out``-style ASI form where every relation contributes
``T(R) = |R| * product(selectivities to its predecessor set)``.

Implementation outline (Kleinberg-free, textbook version):

* pick each relation once as the root of the precedence tree (the query
  graph must be a tree; for cyclic graphs we first fall back to a minimum
  spanning tree under selectivity, the usual generalization);
* normalize the precedence tree bottom-up: repeatedly merge a child chain
  into its parent when ranks are out of order, where
  ``rank(seq) = (T(seq) - 1) / C(seq)``;
* read off the relation sequence, keep the cheapest root.

The resulting sequence is turned into a left-deep join tree priced with
the *library's* cost model (so the returned upper bounds are sound for
APCBI even though the internal ranking used the ASI surrogate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import GraphError
from repro.graph.query_graph import QueryGraph
from repro.heuristics.base import (
    HeuristicResult,
    JoinHeuristic,
    collect_subtree_costs,
)
from repro.plans.builder import PlanBuilder
from repro.plans.join_tree import JoinTree
from repro.query import Query

__all__ = ["IKKBZ"]


@dataclass
class _Module:
    """A merged sequence of relations with aggregated ASI statistics.

    ``t`` is the product of the members' ``T`` values, ``c`` the
    accumulated ASI cost of the sequence; ``rank = (t - 1) / c``.
    """

    relations: List[int]
    t: float
    c: float

    @property
    def rank(self) -> float:
        if self.c == 0:
            return float("-inf")
        return (self.t - 1.0) / self.c

    def merge(self, other: "_Module") -> "_Module":
        return _Module(
            relations=self.relations + other.relations,
            t=self.t * other.t,
            c=self.c + self.t * other.c,
        )


class IKKBZ(JoinHeuristic):
    """Optimal left-deep ordering for tree queries under an ASI cost."""

    name = "ikkbz"

    def build(self, query: Query, builder: PlanBuilder) -> HeuristicResult:
        if query.n_relations == 1:
            tree = builder.leaf(query, 0)
            return HeuristicResult(tree, {})
        spanning = self._spanning_tree(query)
        best_tree: Optional[JoinTree] = None
        for root in range(query.n_relations):
            sequence = self._sequence_for_root(query, spanning, root)
            tree = self._left_deep_tree(query, builder, sequence)
            if best_tree is None or tree.cost < best_tree.cost:
                best_tree = tree
        assert best_tree is not None
        return HeuristicResult(best_tree, collect_subtree_costs(best_tree))

    # ------------------------------------------------------------------
    # Precedence-graph machinery
    # ------------------------------------------------------------------

    def _spanning_tree(self, query: Query) -> Dict[int, List[int]]:
        """Adjacency of the (selectivity-minimal) spanning tree.

        For acyclic query graphs this is the graph itself; for cyclic
        graphs we run Kruskal over edges sorted by ascending selectivity —
        the standard way to apply IKKBZ beyond trees.
        """
        graph = query.graph
        n = graph.n_vertices
        edges = sorted(
            graph.edges, key=lambda e: query.catalog.selectivity(*e)
        )
        parent = list(range(n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        adjacency: Dict[int, List[int]] = {v: [] for v in range(n)}
        for u, v in edges:
            root_u, root_v = find(u), find(v)
            if root_u != root_v:
                parent[root_u] = root_v
                adjacency[u].append(v)
                adjacency[v].append(u)
        if sum(len(neighbors) for neighbors in adjacency.values()) != 2 * (n - 1):
            raise GraphError("query graph is not connected")  # pragma: no cover
        return adjacency

    def _selectivity_to_parent(
        self, query: Query, parent_of: Dict[int, int], vertex: int
    ) -> float:
        return query.catalog.selectivity(vertex, parent_of[vertex])

    def _sequence_for_root(
        self, query: Query, adjacency: Dict[int, List[int]], root: int
    ) -> List[int]:
        """IKKBZ normalization for one precedence-tree root."""
        # Build parent pointers and children lists by BFS from the root.
        parent_of: Dict[int, int] = {}
        children: Dict[int, List[int]] = {v: [] for v in adjacency}
        order = [root]
        seen = {root}
        for vertex in order:
            for neighbor in adjacency[vertex]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    parent_of[neighbor] = vertex
                    children[vertex].append(neighbor)
                    order.append(neighbor)

        # Each non-root relation contributes T = |R| * sel(R, parent(R)).
        def base_module(vertex: int) -> _Module:
            t = query.catalog.cardinality(vertex) * self._selectivity_to_parent(
                query, parent_of, vertex
            )
            return _Module(relations=[vertex], t=t, c=t)

        # chains[v]: normalized sequence of modules below v (v excluded).
        chains: Dict[int, List[_Module]] = {}
        for vertex in reversed(order):
            if not children[vertex]:
                chains[vertex] = []
                continue
            # Merge the children's chains by ascending rank; each child
            # contributes itself (as a module) followed by its own chain.
            branches = []
            for child in children[vertex]:
                branch = [base_module(child)] + chains[child]
                branches.append(self._normalize(branch))
            merged = self._merge_by_rank(branches)
            chains[vertex] = self._normalize(merged)

        sequence = [root]
        for module in chains[root]:
            sequence.extend(module.relations)
        return sequence

    def _normalize(self, chain: List[_Module]) -> List[_Module]:
        """Fold out-of-rank-order adjacent modules (the ASI contraction)."""
        result: List[_Module] = []
        for module in chain:
            result.append(module)
            while len(result) >= 2 and result[-2].rank > result[-1].rank:
                low = result.pop()
                high = result.pop()
                result.append(high.merge(low))
        return result

    def _merge_by_rank(self, branches: List[List[_Module]]) -> List[_Module]:
        """Merge normalized chains into one rank-ascending sequence."""
        merged: List[_Module] = []
        cursors = [0] * len(branches)
        while True:
            best_index = -1
            best_rank = float("inf")
            for index, branch in enumerate(branches):
                if cursors[index] < len(branch):
                    rank = branch[cursors[index]].rank
                    if rank < best_rank:
                        best_rank = rank
                        best_index = index
            if best_index < 0:
                return merged
            merged.append(branches[best_index][cursors[best_index]])
            cursors[best_index] += 1

    # ------------------------------------------------------------------

    def _left_deep_tree(
        self, query: Query, builder: PlanBuilder, sequence: List[int]
    ) -> JoinTree:
        """Price the sequence as a left-deep tree with the real cost model."""
        tree: JoinTree = builder.leaf(query, sequence[0])
        for vertex in sequence[1:]:
            leaf = builder.leaf(query, vertex)
            first = builder.create_tree(tree, leaf)
            second = builder.create_tree(leaf, tree)
            tree = first if first.cost <= second.cost else second
        return tree
