"""Join-heuristic interface (extension around §IV-D advancement 2).

The paper uses GOO to seed APCBI's upper-bound table and to drive the
graph renumbering, noting only that *a* join heuristic is needed ("For our
implementation we have used Goo").  This package makes the heuristic a
first-class, pluggable component: every heuristic produces a complete
join tree plus the cost of each of its subtrees, exactly the payload
advancement 2 consumes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict

from repro.core.goo import GooResult
from repro.plans.builder import PlanBuilder
from repro.query import Query

__all__ = ["JoinHeuristic", "HeuristicResult", "collect_subtree_costs"]

#: Heuristics reuse the GOO result envelope: a tree + per-subtree costs.
HeuristicResult = GooResult


def collect_subtree_costs(tree) -> Dict[int, float]:
    """Walk a join tree and map every join node's vertex set to its cost."""
    from repro.plans.join_tree import JoinNode

    costs: Dict[int, float] = {}
    stack = [tree]
    while stack:
        node = stack.pop()
        if isinstance(node, JoinNode):
            costs[node.vertex_set] = node.cost
            stack.extend((node.left, node.right))
    return costs


class JoinHeuristic(ABC):
    """Builds one complete (possibly sub-optimal) join tree quickly."""

    #: Registry name (``"goo"``, ``"quickpick"``, ``"min_selectivity"``).
    name = "abstract"

    @abstractmethod
    def build(self, query: Query, builder: PlanBuilder) -> HeuristicResult:
        """Produce a cross-product-free join tree covering all relations.

        The ``builder``'s cost model prices the tree; its counters account
        the heuristic's work (which is part of the optimizer's measured
        runtime, §V-C).
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
