"""Hypergraph substrate and optimizer for complex join predicates."""

from repro.hyper.hypergraph import Hyperedge, Hypergraph, from_query_graph
from repro.hyper.hyperdp import HyperDP, HyperPlan

__all__ = [
    "Hyperedge",
    "Hypergraph",
    "from_query_graph",
    "HyperDP",
    "HyperPlan",
]
