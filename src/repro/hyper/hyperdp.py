"""Optimal bushy join ordering over hypergraphs (extension).

A DPsub-style bottom-up optimizer for hypergraph queries: iterate
connected subsets in ascending numeric order (so every proper subset is
solved first) and combine each subset's csg-cmp pairs.  Correct for any
hypergraph; exponential like DPsub, which is the honest trade-off until a
DPhyp-grade neighborhood enumeration is added (see DESIGN.md).

The optimizer is deliberately decoupled from the catalog machinery: it
takes the join cost as a callable over vertex-set pairs, so it composes
with the library's cost models (via ``PlanBuilder.operator_cost``) as well
as with hand-written costs for hyperedge predicates, whose cardinality
estimation is application-specific.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union

from repro.errors import OptimizationError
from repro.graph import bitset
from repro.hyper.hypergraph import Hypergraph

__all__ = ["HyperPlan", "HyperDP"]

#: Nested plan shape: a vertex index (leaf) or a (left, right) pair.
PlanShape = Union[int, Tuple["PlanShape", "PlanShape"]]


@dataclass(frozen=True)
class HyperPlan:
    """Best plan found for one connected hypernode."""

    vertex_set: int
    cost: float
    shape: PlanShape

    def sexpr(self) -> str:
        def render(shape: PlanShape) -> str:
            if isinstance(shape, int):
                return f"R{shape}"
            left, right = shape
            return f"({render(left)} x {render(right)})"

        return render(self.shape)


class HyperDP:
    """Bottom-up optimal join ordering for hypergraph queries.

    Parameters
    ----------
    hypergraph:
        The (connected) query hypergraph.
    join_cost:
        ``join_cost(left_set, right_set) -> float``: the operator cost of
        joining the two intermediates; must be symmetric (price both
        orders and take the minimum, as
        :meth:`repro.plans.PlanBuilder.operator_cost` does).
    """

    def __init__(
        self,
        hypergraph: Hypergraph,
        join_cost: Callable[[int, int], float],
    ):
        self._hypergraph = hypergraph
        self._join_cost = join_cost
        self._best: Dict[int, HyperPlan] = {}

    @property
    def memo(self) -> Dict[int, HyperPlan]:
        return self._best

    def run(self) -> HyperPlan:
        """Return the optimal plan for the full vertex set."""
        hypergraph = self._hypergraph
        full = hypergraph.all_vertices
        if not hypergraph.is_connected(full):
            raise OptimizationError(
                "the query hypergraph is disconnected; HyperDP would need "
                "cross products, which are outside this library's scope"
            )
        for index in range(hypergraph.n_vertices):
            leaf = bitset.singleton(index)
            self._best[leaf] = HyperPlan(leaf, 0.0, index)

        for subset in hypergraph.connected_subsets():
            if subset & (subset - 1) == 0:
                continue  # singleton
            best: Optional[HyperPlan] = None
            for left, right in hypergraph.csg_cmp_pairs(subset):
                left_plan = self._best.get(left)
                right_plan = self._best.get(right)
                if left_plan is None or right_plan is None:
                    # A connected component whose own subsets cannot all be
                    # planned (possible with exotic hyperedges where a
                    # connected set has no ccp at all) — skip this split.
                    continue
                cost = (
                    left_plan.cost
                    + right_plan.cost
                    + self._join_cost(left, right)
                )
                if best is None or cost < best.cost:
                    best = HyperPlan(
                        subset, cost, (left_plan.shape, right_plan.shape)
                    )
            if best is not None:
                self._best[subset] = best

        plan = self._best.get(full)
        if plan is None:
            raise OptimizationError(
                "no cross-product-free plan exists for this hypergraph "
                "(some hyperedge shapes admit no binary decomposition)"
            )
        return plan

    def n_plan_classes(self) -> int:
        """Plan classes with at least two relations (diagnostics)."""
        return sum(1 for key in self._best if key & (key - 1))
