"""Hypergraphs for complex join predicates (extension).

The paper's algorithms operate on simple query graphs; the natural next
step in this research lineage (Moerkotte & Neumann, SIGMOD 2008) handles
*hyperedges*: predicates that reference more than two relations, such as
``R1.a + R2.b = R3.c``.  This module provides the substrate — hypernodes
as bitsets, hyperedges as pairs of disjoint hypernodes, connectivity and
csg-cmp-pair semantics — plus a brute-force pair enumerator that serves
as the oracle for the optimizer in :mod:`repro.hyper.hyperdp`.

Connectivity follows the standard definition: a hyperedge is *usable*
inside a set ``S`` only when both of its endpoints lie entirely within
``S``, and a usable edge connects all its vertices at once.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, List, Tuple

from repro.errors import GraphError
from repro.graph import bitset
from repro.graph.query_graph import QueryGraph

__all__ = ["Hyperedge", "Hypergraph", "from_query_graph"]


class Hyperedge:
    """An undirected hyperedge between two disjoint vertex sets."""

    __slots__ = ("left", "right")

    def __init__(self, left: int, right: int):
        if not left or not right:
            raise GraphError("hyperedge endpoints must be non-empty")
        if left & right:
            raise GraphError("hyperedge endpoints must be disjoint")
        # Normalize orientation for equality/hashing.
        if left > right:
            left, right = right, left
        self.left = left
        self.right = right

    @property
    def vertices(self) -> int:
        return self.left | self.right

    @property
    def is_simple(self) -> bool:
        """True when both endpoints are single vertices."""
        return (
            self.left & (self.left - 1) == 0
            and self.right & (self.right - 1) == 0
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hyperedge):
            return NotImplemented
        return self.left == other.left and self.right == other.right

    def __hash__(self) -> int:
        return hash((self.left, self.right))

    def __repr__(self) -> str:
        return (
            f"Hyperedge({bitset.format_set(self.left)}, "
            f"{bitset.format_set(self.right)})"
        )


class Hypergraph:
    """An immutable hypergraph over vertices ``0 .. n-1``."""

    __slots__ = ("_n", "_edges", "_all")

    def __init__(self, n_vertices: int, edges: Iterable[Hyperedge]):
        if n_vertices < 1:
            raise GraphError(f"need >= 1 vertex, got {n_vertices}")
        self._n = n_vertices
        self._all = bitset.full_set(n_vertices)
        normalized = []
        seen = set()
        for edge in edges:
            if edge.vertices & ~self._all:
                raise GraphError(f"{edge!r} references unknown vertices")
            if edge not in seen:
                seen.add(edge)
                normalized.append(edge)
        self._edges = tuple(normalized)

    @property
    def n_vertices(self) -> int:
        return self._n

    @property
    def all_vertices(self) -> int:
        return self._all

    @property
    def edges(self) -> Tuple[Hyperedge, ...]:
        return self._edges

    # ------------------------------------------------------------------

    def usable_edges(self, subset: int) -> Iterator[Hyperedge]:
        """Hyperedges whose both endpoints lie entirely inside ``subset``."""
        for edge in self._edges:
            if edge.vertices & ~subset == 0:
                yield edge

    def is_connected(self, subset: int) -> bool:
        """Connectivity under the usable-edge semantics (see module doc)."""
        if not subset:
            return False
        if subset & (subset - 1) == 0:
            return True
        # Union-find over the members of `subset`.
        parents = {index: index for index in bitset.iter_bits(subset)}

        def find(x: int) -> int:
            while parents[x] != x:
                parents[x] = parents[parents[x]]
                x = parents[x]
            return x

        for edge in self.usable_edges(subset):
            members = list(bitset.iter_bits(edge.vertices))
            head = members[0]
            for other in members[1:]:
                parents[find(other)] = find(head)
        roots = {find(index) for index in parents}
        return len(roots) == 1

    def crosses(self, left: int, right: int) -> bool:
        """True when a hyperedge joins ``left`` with ``right``."""
        for edge in self._edges:
            if (edge.left & ~left == 0 and edge.right & ~right == 0) or (
                edge.left & ~right == 0 and edge.right & ~left == 0
            ):
                return True
        return False

    # ------------------------------------------------------------------

    def csg_cmp_pairs(self, subset: int) -> Iterator[Tuple[int, int]]:
        """All ccps of ``subset``, each symmetric pair once (oracle-grade).

        Brute-force by design: every split with the lowest vertex anchored
        in the first component.  Exponential in ``|subset|`` — fine as the
        oracle and for the DPsub-style optimizer at the sizes pure Python
        handles; the clever neighborhood-guided enumeration of DPhyp is
        future work (DESIGN.md).
        """
        if subset & (subset - 1) == 0:
            return
        anchor = bitset.lowest_bit(subset)
        for other in bitset.iter_subsets(subset & ~anchor):
            anchor_side = subset & ~other
            if not self.is_connected(anchor_side):
                continue
            if not self.is_connected(other):
                continue
            if not self.crosses(anchor_side, other):
                continue
            yield (anchor_side, other)

    def connected_subsets(self) -> List[int]:
        """Every connected subset, ascending (subsets before supersets)."""
        return [
            subset
            for subset in range(1, self._all + 1)
            if self.is_connected(subset)
        ]

    def __repr__(self) -> str:
        return f"Hypergraph(n_vertices={self._n}, n_edges={len(self._edges)})"


def from_query_graph(graph: QueryGraph) -> Hypergraph:
    """Lift a simple query graph into the hypergraph representation."""
    return Hypergraph(
        graph.n_vertices,
        (
            Hyperedge(bitset.singleton(u), bitset.singleton(v))
            for u, v in sorted(graph.edges)
        ),
    )
